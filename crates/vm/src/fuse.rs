//! Fused execution engine: the third VM tier.
//!
//! [`FusedCode`] is a further lowering of [`DecodedCode`]: a linear,
//! index-preserving pass recognizes the short instruction sequences the
//! profiler attributes most dispatch cost to — compare-and-branch,
//! constant-compare-and-branch, assign-then-jump, the call/return
//! epilogue (`ld32 ra; addi sp; jr ra+i`), the two-load stack cut, the
//! frame-push store, and the argument-shuffle call — and collapses each
//! into a single pre-resolved superinstruction ([`FInst`]). The flat
//! dispatch loop then retires a whole window per match arm, with branch
//! targets and register slots read straight out of the fused word.
//!
//! Two invariants keep the tier honest:
//!
//! * **Index preservation.** `insts[pc]` still corresponds to
//!   `code[pc]`; a fused head carries its window length `n`, and every
//!   *interior* slot of a window keeps its plain decoded opcode. A
//!   transfer that lands mid-window (possible only when the fusion pass
//!   missed an entry point — see below) therefore executes the plain
//!   tail of the window one instruction at a time, bit-identically to
//!   the decoded engine.
//! * **Entry-point suppression.** A window is only formed when none of
//!   its interior pcs can be entered directly: branch targets, call
//!   return addresses (`pc+1` of every call/yield), branch-table rows
//!   (`site..=site+alternates`), unwind continuation pcs, procedure
//!   entries, image code addresses, and continuation entries all
//!   suppress fusion across them. Heads may be entry points.
//!
//! Execution inside a window is strictly sequential over the original
//! operand registers, so operand aliasing (e.g. a `li` feeding the
//! compare it fuses with, or a cut loading over its own base register)
//! behaves exactly as in the decoded engine. Costs are charged per
//! *original* instruction (a window of length `n` charges `n`
//! instructions plus the same load/store/branch/call breakdown), trace
//! events fire with the same payloads at the same cost-clock stamps, and
//! the resource governor is consulted at the same transitions
//! (mapped-byte check after the store of a fused frame push, stack-floor
//! check at the call of a fused argument shuffle). If the remaining fuel
//! cannot cover a whole window the engine delegates the rest of the
//! slice to [`VmMachine::run_decoded`] over the retained plain stream,
//! so fuel-boundary behaviour (N−1/N/N+1) is inherited rather than
//! re-implemented.

use crate::codegen::VmProgram;
use crate::decode::{DInst, DOp, DecodedCode};
use crate::isa::{regs, Inst};
use crate::machine::{name_at, Cost, VmMachine, VmStatus};
use cmm_ir::expr::sign_extend;
use cmm_ir::Width;
use cmm_obs::{Event, TraceSink};
use std::sync::Arc;

/// A fused opcode: every plain [`DOp`] has a 1:1 counterpart (so plain
/// slots dispatch in the same flat match), plus one variant per fused
/// pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum FOp {
    /// Plain [`DOp::Halt`].
    Halt,
    /// Plain [`DOp::Li`].
    Li,
    /// Plain [`DOp::Addi`].
    Addi,
    /// Plain [`DOp::Mov`].
    Mov,
    /// Plain [`DOp::Add32`].
    Add32,
    /// Plain [`DOp::Sub32`].
    Sub32,
    /// Plain [`DOp::Mul32`].
    Mul32,
    /// Plain [`DOp::And32`].
    And32,
    /// Plain [`DOp::Or32`].
    Or32,
    /// Plain [`DOp::Xor32`].
    Xor32,
    /// Plain [`DOp::Eq32`].
    Eq32,
    /// Plain [`DOp::Ne32`].
    Ne32,
    /// Plain [`DOp::LtU32`].
    LtU32,
    /// Plain [`DOp::LeU32`].
    LeU32,
    /// Plain [`DOp::GtU32`].
    GtU32,
    /// Plain [`DOp::GeU32`].
    GeU32,
    /// Plain [`DOp::LtS32`].
    LtS32,
    /// Plain [`DOp::LeS32`].
    LeS32,
    /// Plain [`DOp::GtS32`].
    GtS32,
    /// Plain [`DOp::GeS32`].
    GeS32,
    /// Plain [`DOp::BinSlow`].
    BinSlow,
    /// Plain [`DOp::UnSlow`].
    UnSlow,
    /// Plain [`DOp::Load8`].
    Load8,
    /// Plain [`DOp::Load16`].
    Load16,
    /// Plain [`DOp::Load32`].
    Load32,
    /// Plain [`DOp::Load64`].
    Load64,
    /// Plain [`DOp::Store8`].
    Store8,
    /// Plain [`DOp::Store16`].
    Store16,
    /// Plain [`DOp::Store32`].
    Store32,
    /// Plain [`DOp::Store64`].
    Store64,
    /// Plain [`DOp::Bnz`].
    Bnz,
    /// Plain [`DOp::Bz`].
    Bz,
    /// Plain [`DOp::Jmp`].
    Jmp,
    /// Plain [`DOp::Jr`].
    Jr,
    /// Plain [`DOp::Call`].
    Call,
    /// Plain [`DOp::CallR`].
    CallR,
    /// Plain [`DOp::SysYield`].
    SysYield,
    /// Fused 32-bit compare (`sel`) + `bz`: `a ← cmp(b, c); if a == 0
    /// goto imm2`. Window length 2.
    CmpBz,
    /// Fused 32-bit compare (`sel`) + `bnz`. Window length 2.
    CmpBnz,
    /// Fused `li c, imm` + 32-bit compare (`sel`, right operand `c`) +
    /// `bz a, imm2`. Window length 3.
    LiCmpBz,
    /// As [`FOp::LiCmpBz`] with a `bnz` tail. Window length 3.
    LiCmpBnz,
    /// Fused ALU op (`sel` ∈ li/addi/mov/fast-bin32) + `jmp imm2`.
    /// Window length 2.
    AluJmp,
    /// Fused `addi a, b, imm` + `st32 c, imm2(d)` (most often the frame
    /// push `addi sp, sp, -frame; st32 ra, off(sp)`, where `d = a`; the
    /// store base may be any register). Window length 2.
    AddiStore32,
    /// Fused `mov a, b` + `call imm2` (argument shuffle feeding a
    /// direct call). Window length 2.
    MovCall,
    /// Fused return epilogue: `ld32 a, imm(b); addi b, b, imm2;
    /// jr a+d` (in the generated code `b` = sp, `a` = ra, `d` the
    /// branch-table row). Window length 3.
    RetJr,
    /// Fused stack cut: `ld32 a, 0(b); ld32 sp, 4(b); jr a+0` — the
    /// §5.4 "restores 2 pointers" sequence. Window length 3.
    CutJr,
    // --- generic straight-line pairs ---
    //
    // Two adjacent independent ALU / 32-bit memory operations packed
    // into one dispatch. Slots execute strictly in order over the
    // original registers, so operand aliasing between the two halves
    // behaves exactly as in the decoded engine. All are window
    // length 2.
    /// `mov a, b; mov c, d`.
    MovMov,
    /// `mov a, b; li c, imm2`.
    MovLi,
    /// `mov a, b; ld32 c, imm2(d)`.
    MovLoad32,
    /// `mov a, b; st32 c, imm2(d)`.
    MovStore32,
    /// `li a, imm; mov c, d`.
    LiMov,
    /// `li a, imm; st32 c, imm2(d)`.
    LiStore32,
    /// `li a, imm; bin32 d, b, c` (`sel` names the 32-bit binary op).
    LiBin32,
    /// `ld32 a, imm(b); mov c, d`.
    Load32Mov,
    /// `ld32 a, imm(b); li c, imm2`.
    Load32Li,
    /// `ld32 a, imm(b); ld32 c, imm2(d)`.
    Load32Load32,
    /// `ld32 a, imm(b); addi c, d, imm2`.
    Load32Addi,
    /// `ld32 a, imm(b); st32 c, imm2(d)`.
    Load32Store32,
    /// `st32 a, imm(b); mov c, d`.
    Store32Mov,
    /// `st32 a, imm(b); li c, imm2`.
    Store32Li,
    /// `st32 a, imm(b); st32 c, imm2(d)`.
    Store32Store32,
    /// `bin32 a, b, c (sel); st32 a, imm2(d)` — compute then store the
    /// result (store value must be the ALU destination).
    Bin32Store32,
    /// `bin32 a, b, c (sel); ld32 d, imm2(a)` — compute an address then
    /// load through it (load base must be the ALU destination).
    Bin32Load32,
    /// `bin32 a, b, c (sel); mov d, a` — compute then copy the result
    /// (move source must be the ALU destination).
    Bin32Mov,
    /// `mov a, b; addi c, d, imm2`.
    MovAddi,
    /// `st32 a, imm(b); ld32 c, imm2(d)`.
    Store32Load32,
    /// `addi a, b, imm; jr c + d` — frame pop feeding an indirect jump
    /// (the jump offset must fit `d`'s byte).
    AddiJr,
    // Wider windows (length 3 and 4). Extra register operands beyond
    // `a`–`d` are packed into the immediate words, one byte per
    // register, little-endian.
    /// `mov a, b; mov c, d; mov imm[0], imm[1]` — a run of three moves.
    Mov3,
    /// `mov a, b; mov c, d; mov imm[0], imm[1]; mov imm2[0], imm2[1]` —
    /// a run of four moves.
    Mov4,
    /// `ld32 a, imm(b); li c, imm2; bin32 d, a, c` (`sel` names the
    /// 32-bit binary op; its operands must be the two just-defined
    /// registers, in order).
    Load32LiBin32,
    /// `mov a, b; mov c, d; call imm2` — argument shuffle feeding a
    /// call.
    MovMovCall,
    /// `ld32 a, imm(b); mov c, d; call imm2` — reload plus argument
    /// shuffle feeding a call.
    Load32MovCall,
    /// The whole `x op= k` stack-slot body plus the trailing shuffle:
    /// `ld32 a, lo16(imm)(b); li c, imm2[0..16]; bin32 d, a, c;
    /// st32 d, hi16(imm)(b); mov imm2[2], imm2[3]`. Both offsets and
    /// the literal must fit sixteen bits, and the store must write the
    /// ALU result back through the load's base register. Window
    /// length 5.
    Load32LiBin32Store32Mov,
    /// A run of `n` moves (`5 ≤ n ≤ 255`), register pairs held in the
    /// [`FusedCode::mov_runs`] side table starting at index `imm`
    /// (destination in the low byte, source in the high byte). The long
    /// continuation argument shuffles CPS lowering produces.
    MovRun,
    /// The record write-out step: `st32 a, lo16(imm)(b); mov a, c;
    /// ld32 imm2[1], hi16(imm)(d); li imm2[2], imm2[0];
    /// bin32 imm2[3], imm2[1], imm2[2]` — store a field, stage the next
    /// value into the store register, recompute the field pointer. The
    /// move must overwrite the store's value register, both offsets
    /// must fit sixteen bits, and the literal must fit one byte.
    /// Window length 5.
    Store32MovLoad32LiBin32,
    /// The record read-in step: `li a, imm; bin32 d, b, c;
    /// ld32 imm2[2], lo16(imm2)(d); mov imm2[3], imm2[2]` — materialise
    /// a field offset, compute the field pointer, load through it, move
    /// the value home. The load must go through the ALU destination and
    /// the move must copy the loaded register; the load offset must fit
    /// sixteen bits. Window length 4.
    LiBin32Load32Mov,
    /// `li a, imm; bin32 d, b, c; mov imm2[0], d` — compute into a
    /// temporary and copy the result home. The move source must be the
    /// ALU destination. Window length 3.
    LiBin32Mov,
    /// As [`FOp::LiBin32Mov`] plus a trailing `jmp` — the counted-loop
    /// tail `x = x op k; goto head`. The move destination packs into
    /// the top byte of `imm2`, above the 24-bit jump target. Window
    /// length 4.
    LiBin32MovJmp,
    /// `ld32 a, lo16(imm)(b); ld32 c, hi16(imm)(d); cmp e, a, c;
    /// bz e, imm2[0..24]` — the counted-loop header: reload the counter
    /// and the bound, compare, exit if done. The compare destination
    /// packs into the top byte of `imm2`, above the 24-bit branch
    /// target. Window length 4.
    Load32Load32CmpBz,
    /// The whole `slot op= k; goto head` loop back-edge:
    /// `ld32 a, lo16(imm)(b); li c, imm2[3]; bin32 d, a, c;
    /// st32 d, hi16(imm)(b); jmp imm2[0..24]`. Both offsets must fit
    /// sixteen bits, the literal one byte, the target twenty-four, and
    /// the store must write the ALU result back through the load's base
    /// register. Window length 5.
    Load32LiBin32Store32Jmp,
    /// The two-argument reload-and-shuffle call:
    /// `ld32 a, lo16(imm)(b); mov imm2[2], a; ld32 c, hi16(imm)(d);
    /// mov imm2[3], c; call imm2[0..16]`. Each move must copy the
    /// just-loaded register; offsets and the call target must fit
    /// sixteen bits. Window length 5.
    Load32MovLoad32MovCall,
    /// `bin32 a, b, c (sel); li d, imm2` — compute, then materialise an
    /// independent constant. Window length 2.
    Bin32Li,
    /// `ld32 a, lo16(imm)(b); addi c, d, imm2; jmp hi16(imm)` — reload,
    /// adjust a pointer, and take the block's unconditional exit.
    /// Window length 3.
    Load32AddiJmp,
    /// A run of `2 ≤ rows ≤ 51` consecutive record write-out steps
    /// (each the five-instruction [`FOp::Store32MovLoad32LiBin32`]
    /// sequence), rows held in the [`FusedCode::field_runs`] side table
    /// starting at index `imm`. The CPS record build emits one step per
    /// saved live variable; the whole build retires in one dispatch.
    /// Window length `5 * rows`.
    WriteRun,
    /// A run of `2 ≤ rows ≤ 63` consecutive record read-in steps (each
    /// the four-instruction [`FOp::LiBin32Load32Mov`] sequence), rows
    /// held in the [`FusedCode::field_runs`] side table starting at
    /// index `imm`. The continuation entry restores every saved live
    /// variable; the whole restore retires in one dispatch. Window
    /// length `4 * rows`.
    ReadRun,
    /// `mov a, b; bin32 d, c, imm[0]; mov imm2[0], d` — shuffle an
    /// argument, compute into a temporary, copy the result home. The
    /// move source must be the ALU destination. Window length 3.
    MovBin32Mov,
}

/// One row of a [`FOp::WriteRun`] or [`FOp::ReadRun`] window: the
/// pre-decoded operands of one record-field step. For a write row the
/// fields name `st32 a, off1(b); mov a, c; ld32 e, off2(d); li g, k;
/// bin32(op) h, e, g`; for a read row `li a, k; bin32(op) d, b, c;
/// ld32 e, off1(d); mov g, e`.
#[derive(Clone, Copy, Debug)]
pub struct FieldStep {
    /// The row's 32-bit binary opcode (the field-pointer arithmetic).
    pub op: DOp,
    /// First register operand (see the per-kind layout above).
    pub a: u8,
    /// Second register operand.
    pub b: u8,
    /// Third register operand.
    pub c: u8,
    /// Fourth register operand.
    pub d: u8,
    /// Fifth register operand (the loaded register).
    pub e: u8,
    /// Sixth register operand (write: the `li` destination; read: the
    /// move destination).
    pub g: u8,
    /// Seventh register operand (write: the ALU destination; unused
    /// for read rows).
    pub h: u8,
    /// First byte offset.
    pub off1: u32,
    /// Second byte offset (write rows only).
    pub off2: u32,
    /// The literal.
    pub k: u32,
}

/// One fused instruction word: flat opcode, the selecting plain opcode
/// for polymorphic fusions (`sel`), four register/row operands, the
/// window length `n`, and two immediates. Sixteen bytes.
#[derive(Clone, Copy, Debug)]
pub struct FInst {
    /// Fused opcode.
    pub op: FOp,
    /// For polymorphic fusions ([`FOp::CmpBz`]/[`FOp::AluJmp`]/…): the
    /// plain opcode of the selected head operation. For plain slots:
    /// the slot's own decoded opcode.
    pub sel: DOp,
    /// First operand (destination, or stored/tested source).
    pub a: u8,
    /// Second operand (source/base register).
    pub b: u8,
    /// Third operand (second source, or stored value register).
    pub c: u8,
    /// Fourth operand ([`FOp::RetJr`]: the `jr` offset / branch-table
    /// row).
    pub d: u8,
    /// Window length: how many original instructions this word retires
    /// (1 for plain slots).
    pub n: u8,
    /// First immediate (value or byte offset).
    pub imm: u32,
    /// Second immediate (branch/jump/call target, or second offset).
    pub imm2: u32,
}

/// The fused form of a whole program. Index-preserving: `insts[pc]`
/// corresponds to `code[pc]`; interior slots of fused windows keep
/// their plain opcode. The plain decoded stream is retained for
/// fuel-boundary delegation.
#[derive(Debug)]
pub struct FusedCode {
    /// The dense fused array, index-aligned with the source code.
    pub insts: Vec<FInst>,
    /// Register pairs for [`FOp::MovRun`] windows (destination in the
    /// low byte, source in the high byte), in execution order.
    pub mov_runs: Vec<u16>,
    /// Rows for [`FOp::WriteRun`] and [`FOp::ReadRun`] windows, in
    /// execution order.
    pub field_runs: Vec<FieldStep>,
    /// The plain decoded stream this was fused from (shared; used when
    /// a fuel slice ends inside a window).
    pub plain: Arc<DecodedCode>,
}

/// The 1:1 plain lowering of a decoded opcode.
fn plain_op(op: DOp) -> FOp {
    match op {
        DOp::Halt => FOp::Halt,
        DOp::Li => FOp::Li,
        DOp::Addi => FOp::Addi,
        DOp::Mov => FOp::Mov,
        DOp::Add32 => FOp::Add32,
        DOp::Sub32 => FOp::Sub32,
        DOp::Mul32 => FOp::Mul32,
        DOp::And32 => FOp::And32,
        DOp::Or32 => FOp::Or32,
        DOp::Xor32 => FOp::Xor32,
        DOp::Eq32 => FOp::Eq32,
        DOp::Ne32 => FOp::Ne32,
        DOp::LtU32 => FOp::LtU32,
        DOp::LeU32 => FOp::LeU32,
        DOp::GtU32 => FOp::GtU32,
        DOp::GeU32 => FOp::GeU32,
        DOp::LtS32 => FOp::LtS32,
        DOp::LeS32 => FOp::LeS32,
        DOp::GtS32 => FOp::GtS32,
        DOp::GeS32 => FOp::GeS32,
        DOp::BinSlow => FOp::BinSlow,
        DOp::UnSlow => FOp::UnSlow,
        DOp::Load8 => FOp::Load8,
        DOp::Load16 => FOp::Load16,
        DOp::Load32 => FOp::Load32,
        DOp::Load64 => FOp::Load64,
        DOp::Store8 => FOp::Store8,
        DOp::Store16 => FOp::Store16,
        DOp::Store32 => FOp::Store32,
        DOp::Store64 => FOp::Store64,
        DOp::Bnz => FOp::Bnz,
        DOp::Bz => FOp::Bz,
        DOp::Jmp => FOp::Jmp,
        DOp::Jr => FOp::Jr,
        DOp::Call => FOp::Call,
        DOp::CallR => FOp::CallR,
        DOp::SysYield => FOp::SysYield,
    }
}

fn is_cmp32(op: DOp) -> bool {
    matches!(
        op,
        DOp::Eq32
            | DOp::Ne32
            | DOp::LtU32
            | DOp::LeU32
            | DOp::GtU32
            | DOp::GeU32
            | DOp::LtS32
            | DOp::LeS32
            | DOp::GtS32
            | DOp::GeS32
    )
}

fn is_alu(op: DOp) -> bool {
    matches!(
        op,
        DOp::Li
            | DOp::Addi
            | DOp::Mov
            | DOp::Add32
            | DOp::Sub32
            | DOp::Mul32
            | DOp::And32
            | DOp::Or32
            | DOp::Xor32
    ) || is_cmp32(op)
}

/// The fast 32-bit binary ops (arithmetic, bitwise, compares) — the
/// `sel` domain of the [`FOp::LiBin32`]/[`FOp::Bin32Store32`]/
/// [`FOp::Bin32Load32`]/[`FOp::Bin32Mov`] fusions.
fn is_bin32(op: DOp) -> bool {
    matches!(
        op,
        DOp::Add32 | DOp::Sub32 | DOp::Mul32 | DOp::And32 | DOp::Or32 | DOp::Xor32
    ) || is_cmp32(op)
}

/// Every pc that control can enter other than by falling through from
/// `pc - 1`: direct branch/jump/call targets, the return address after
/// every call and yield, branch-table rows and unwind continuations of
/// every call site, procedure entries, image code addresses, and
/// continuation entries. Fused windows must not contain one of these in
/// an interior slot.
fn entry_points(program: &VmProgram, n: usize) -> Vec<bool> {
    let mut entry = vec![false; n];
    let mut mark = |pc: u32| {
        if let Some(slot) = entry.get_mut(pc as usize) {
            *slot = true;
        }
    };
    // The halt vector (pcs 0..8) is entered by return-to-top.
    for pc in 0..8u32 {
        mark(pc);
    }
    for (pc, inst) in program.code.iter().enumerate() {
        match *inst {
            Inst::Bnz { target, .. } | Inst::Bz { target, .. } | Inst::Jmp { target } => {
                mark(target)
            }
            Inst::Call { target } => {
                mark(target);
                mark(pc as u32 + 1);
            }
            Inst::CallR { .. } | Inst::SysYield => mark(pc as u32 + 1),
            _ => {}
        }
    }
    for (&site, meta) in &program.call_sites {
        // The branch table: a normal return lands at `site`, an
        // abnormal return `<i/n>` at `site + i`.
        for row in 0..=meta.alternates {
            mark(site + row);
        }
        for &pc in &meta.unwind_pcs {
            mark(pc);
        }
    }
    for &pc in program.entries.values() {
        mark(pc);
    }
    for &pc in program.code_map.values() {
        mark(pc);
    }
    for &pc in program.cont_params.keys() {
        mark(pc);
    }
    entry
}

/// Window heads the greedy pass must always reach with exact
/// alignment: patterns that pre-resolve an indirect or looping
/// transfer (the stack cut, the return epilogue, the frame-pop jump,
/// the counted-loop header and back-edge, the reload-and-shuffle
/// call). A prepass marks these heads and the main pass refuses to
/// let any earlier window straddle one, so a cheap straight-line pair
/// formed two slots upstream can never shear the high-value window
/// off its head.
const fn is_anchor(op: FOp) -> bool {
    matches!(
        op,
        FOp::CutJr
            | FOp::RetJr
            | FOp::AddiJr
            | FOp::LiBin32MovJmp
            | FOp::Load32Load32CmpBz
            | FOp::Load32LiBin32Store32Jmp
            | FOp::Load32MovLoad32MovCall
    )
}

/// Does the record write-out step head at `pc`? (`st32; mov; ld32;
/// li; bin32`, with the move overwriting the store's value register
/// and the ALU consuming the two just-defined registers — the
/// [`FOp::Store32MovLoad32LiBin32`] shape without immediate limits.)
fn write_step_at(d: &[DInst], pc: usize) -> bool {
    pc + 4 < d.len() && {
        let (i0, i1, i2, i3, i4) = (d[pc], d[pc + 1], d[pc + 2], d[pc + 3], d[pc + 4]);
        i0.op == DOp::Store32
            && i1.op == DOp::Mov
            && i1.a == i0.a
            && i2.op == DOp::Load32
            && i3.op == DOp::Li
            && is_bin32(i4.op)
            && i4.b == i2.a
            && i4.c == i3.a
    }
}

fn write_step(d: &[DInst], pc: usize) -> FieldStep {
    let (i0, i1, i2, i3, i4) = (d[pc], d[pc + 1], d[pc + 2], d[pc + 3], d[pc + 4]);
    FieldStep {
        op: i4.op,
        a: i0.a,
        b: i0.b,
        c: i1.b,
        d: i2.b,
        e: i2.a,
        g: i3.a,
        h: i4.a,
        off1: i0.imm,
        off2: i2.imm,
        k: i3.imm,
    }
}

/// Does the record read-in step head at `pc`? (`li; bin32; ld32; mov`,
/// loading through the ALU destination and copying the loaded register
/// — the [`FOp::LiBin32Load32Mov`] shape without immediate limits.)
fn read_step_at(d: &[DInst], pc: usize) -> bool {
    pc + 3 < d.len() && {
        let (i0, i1, i2, i3) = (d[pc], d[pc + 1], d[pc + 2], d[pc + 3]);
        i0.op == DOp::Li
            && is_bin32(i1.op)
            && i2.op == DOp::Load32
            && i2.b == i1.a
            && i3.op == DOp::Mov
            && i3.b == i2.a
    }
}

fn read_step(d: &[DInst], pc: usize) -> FieldStep {
    let (i0, i1, i2, i3) = (d[pc], d[pc + 1], d[pc + 2], d[pc + 3]);
    FieldStep {
        op: i1.op,
        a: i0.a,
        b: i1.b,
        c: i1.c,
        d: i1.a,
        e: i2.a,
        g: i3.a,
        h: 0,
        off1: i2.imm,
        off2: 0,
        k: i0.imm,
    }
}

/// Attempts to fuse a window starting at `pc`. Interior slots must not
/// be entry points or protected anchor heads (heads may be either).
/// Longest patterns win.
fn try_fuse(d: &[DInst], entry: &[bool], protect: &[bool], pc: usize) -> Option<FInst> {
    let clear = |len: usize| (pc + 1..pc + len).all(|i| !entry[i] && !protect[i]);
    let f = |op, sel, a, b, c, dd, n, imm, imm2| {
        Some(FInst {
            op,
            sel,
            a,
            b,
            c,
            d: dd,
            n,
            imm,
            imm2,
        })
    };
    let i0 = d[pc];
    // --- 5-instruction windows ---
    if pc + 4 < d.len() && clear(5) {
        let (i1, i2, i3, i4) = (d[pc + 1], d[pc + 2], d[pc + 3], d[pc + 4]);
        // ld32 a, off(b); li c, k; bin32 d, a, c; st32 d, off2(b);
        // mov e, f — the `x op= k` read-modify-write body plus its
        // trailing shuffle. Offsets and literal must fit 16 bits.
        if i0.op == DOp::Load32
            && i1.op == DOp::Li
            && is_bin32(i2.op)
            && i2.b == i0.a
            && i2.c == i1.a
            && i3.op == DOp::Store32
            && i3.a == i2.a
            && i3.b == i0.b
            && i4.op == DOp::Mov
            && i0.imm <= 0xffff
            && i3.imm <= 0xffff
            && i1.imm <= 0xffff
        {
            return f(
                FOp::Load32LiBin32Store32Mov,
                i2.op,
                i0.a,
                i0.b,
                i1.a,
                i2.a,
                5,
                i0.imm | i3.imm << 16,
                i1.imm | u32::from(i4.a) << 16 | u32::from(i4.b) << 24,
            );
        }
        // ld32 a, off(b); li c, k; bin32 d, a, c; st32 d, off2(b);
        // jmp t — the whole `slot op= k; goto head` loop back-edge.
        if i0.op == DOp::Load32
            && i1.op == DOp::Li
            && is_bin32(i2.op)
            && i2.b == i0.a
            && i2.c == i1.a
            && i3.op == DOp::Store32
            && i3.a == i2.a
            && i3.b == i0.b
            && i4.op == DOp::Jmp
            && i0.imm <= 0xffff
            && i3.imm <= 0xffff
            && i1.imm <= 0xff
            && i4.imm <= 0xff_ffff
        {
            return f(
                FOp::Load32LiBin32Store32Jmp,
                i2.op,
                i0.a,
                i0.b,
                i1.a,
                i2.a,
                5,
                i0.imm | i3.imm << 16,
                i4.imm | i1.imm << 24,
            );
        }
        // ld32 a, off(b); mov e, a; ld32 c, off2(d); mov g, c; call t —
        // the two-argument reload-and-shuffle call.
        if i0.op == DOp::Load32
            && i1.op == DOp::Mov
            && i1.b == i0.a
            && i2.op == DOp::Load32
            && i3.op == DOp::Mov
            && i3.b == i2.a
            && i4.op == DOp::Call
            && i0.imm <= 0xffff
            && i2.imm <= 0xffff
            && i4.imm <= 0xffff
        {
            return f(
                FOp::Load32MovLoad32MovCall,
                DOp::Call,
                i0.a,
                i0.b,
                i2.a,
                i2.b,
                5,
                i0.imm | i2.imm << 16,
                i4.imm | u32::from(i1.a) << 16 | u32::from(i3.a) << 24,
            );
        }
        // st32 a, off(b); mov a, c; ld32 e, off2(d); li g, k;
        // bin32 h, e, g — the record write-out step. The three result
        // registers and the one-byte literal pack into imm2.
        if i0.op == DOp::Store32
            && i1.op == DOp::Mov
            && i1.a == i0.a
            && i2.op == DOp::Load32
            && i3.op == DOp::Li
            && is_bin32(i4.op)
            && i4.b == i2.a
            && i4.c == i3.a
            && i0.imm <= 0xffff
            && i2.imm <= 0xffff
            && i3.imm <= 0xff
        {
            return f(
                FOp::Store32MovLoad32LiBin32,
                i4.op,
                i0.a,
                i0.b,
                i1.b,
                i2.b,
                5,
                i0.imm | i2.imm << 16,
                i3.imm | u32::from(i2.a) << 8 | u32::from(i3.a) << 16 | u32::from(i4.a) << 24,
            );
        }
    }
    // --- 4-instruction windows ---
    if pc + 3 < d.len() && clear(4) {
        let (i1, i2, i3) = (d[pc + 1], d[pc + 2], d[pc + 3]);
        // A run of four moves (continuation argument shuffles).
        if [i0.op, i1.op, i2.op, i3.op] == [DOp::Mov; 4] {
            return f(
                FOp::Mov4,
                DOp::Mov,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                4,
                u32::from(i2.a) | u32::from(i2.b) << 8,
                u32::from(i3.a) | u32::from(i3.b) << 8,
            );
        }
        // li a, imm; bin32 d, b, c; ld32 e, off(d); mov f, e — the
        // record read-in step. Load and move destinations pack into
        // imm2 above the sixteen-bit load offset.
        if i0.op == DOp::Li
            && is_bin32(i1.op)
            && i2.op == DOp::Load32
            && i2.b == i1.a
            && i3.op == DOp::Mov
            && i3.b == i2.a
            && i2.imm <= 0xffff
        {
            return f(
                FOp::LiBin32Load32Mov,
                i1.op,
                i0.a,
                i1.b,
                i1.c,
                i1.a,
                4,
                i0.imm,
                i2.imm | u32::from(i2.a) << 16 | u32::from(i3.a) << 24,
            );
        }
        // li a, k; bin32 d, b, c; mov e, d; jmp t — the counted-loop
        // tail `x = x op k; goto head`.
        if i0.op == DOp::Li
            && is_bin32(i1.op)
            && i2.op == DOp::Mov
            && i2.b == i1.a
            && i3.op == DOp::Jmp
            && i3.imm <= 0xff_ffff
        {
            return f(
                FOp::LiBin32MovJmp,
                i1.op,
                i0.a,
                i1.b,
                i1.c,
                i1.a,
                4,
                i0.imm,
                i3.imm | u32::from(i2.a) << 24,
            );
        }
        // ld32 a, off(b); ld32 c, off2(d); cmp e, a, c; bz e, t — the
        // counted-loop header.
        if i0.op == DOp::Load32
            && i1.op == DOp::Load32
            && is_cmp32(i2.op)
            && i2.b == i0.a
            && i2.c == i1.a
            && i3.op == DOp::Bz
            && i3.a == i2.a
            && i0.imm <= 0xffff
            && i1.imm <= 0xffff
            && i3.imm <= 0xff_ffff
        {
            return f(
                FOp::Load32Load32CmpBz,
                i2.op,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                4,
                i0.imm | i1.imm << 16,
                i3.imm | u32::from(i2.a) << 24,
            );
        }
    }
    // --- 3-instruction windows ---
    if pc + 2 < d.len() && clear(3) {
        let (i1, i2) = (d[pc + 1], d[pc + 2]);
        // Return epilogue: ld32 a, imm(b); addi b, b, imm2; jr a+d.
        if i0.op == DOp::Load32
            && i1.op == DOp::Addi
            && i1.a == i0.b
            && i1.b == i0.b
            && i2.op == DOp::Jr
            && i2.a == i0.a
            && i2.imm <= u32::from(u8::MAX)
        {
            return f(
                FOp::RetJr,
                DOp::Jr,
                i0.a,
                i0.b,
                0,
                i2.imm as u8,
                3,
                i0.imm,
                i1.imm,
            );
        }
        // Stack cut: ld32 a, 0(b); ld32 sp, 4(b); jr a+0.
        if i0.op == DOp::Load32
            && i0.imm == 0
            && i1.op == DOp::Load32
            && i1.a == regs::SP
            && i1.b == i0.b
            && i1.imm == 4
            && i2.op == DOp::Jr
            && i2.a == i0.a
            && i2.imm == 0
        {
            return f(FOp::CutJr, DOp::Jr, i0.a, i0.b, 0, 0, 3, 0, 0);
        }
        // ld32 a, off(b); addi c, d, imm2; jmp t — reload, pointer
        // adjust, block exit.
        if i0.op == DOp::Load32
            && i1.op == DOp::Addi
            && i2.op == DOp::Jmp
            && i0.imm <= 0xffff
            && i2.imm <= 0xffff
        {
            return f(
                FOp::Load32AddiJmp,
                DOp::Addi,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                3,
                i0.imm | i2.imm << 16,
                i1.imm,
            );
        }
        // li c, imm; cmp a, b, c; bz/bnz a.
        if i0.op == DOp::Li && is_cmp32(i1.op) && i1.c == i0.a && i2.a == i1.a {
            if i2.op == DOp::Bz {
                return f(FOp::LiCmpBz, i1.op, i1.a, i1.b, i0.a, 0, 3, i0.imm, i2.imm);
            }
            if i2.op == DOp::Bnz {
                return f(FOp::LiCmpBnz, i1.op, i1.a, i1.b, i0.a, 0, 3, i0.imm, i2.imm);
            }
        }
        // A run of three moves.
        if [i0.op, i1.op, i2.op] == [DOp::Mov; 3] {
            return f(
                FOp::Mov3,
                DOp::Mov,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                3,
                u32::from(i2.a) | u32::from(i2.b) << 8,
                0,
            );
        }
        // mov a, b; mov c, d; call imm2 (argument shuffle feeding a call).
        if i0.op == DOp::Mov && i1.op == DOp::Mov && i2.op == DOp::Call {
            return f(
                FOp::MovMovCall,
                DOp::Call,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                3,
                0,
                i2.imm,
            );
        }
        // ld32 a, imm(b); mov c, d; call imm2.
        if i0.op == DOp::Load32 && i1.op == DOp::Mov && i2.op == DOp::Call {
            return f(
                FOp::Load32MovCall,
                DOp::Call,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                3,
                i0.imm,
                i2.imm,
            );
        }
        // ld32 a, imm(b); li c, imm2; bin32 d, a, c — load and constant
        // feeding a binary op, the `x op= k` stack-slot idiom.
        if i0.op == DOp::Load32
            && i1.op == DOp::Li
            && is_bin32(i2.op)
            && i2.b == i0.a
            && i2.c == i1.a
        {
            return f(
                FOp::Load32LiBin32,
                i2.op,
                i0.a,
                i0.b,
                i1.a,
                i2.a,
                3,
                i0.imm,
                i1.imm,
            );
        }
        // li a, imm; bin32 d, b, c; mov e, d — compute into a temporary
        // and copy the result home.
        if i0.op == DOp::Li && is_bin32(i1.op) && i2.op == DOp::Mov && i2.b == i1.a {
            return f(
                FOp::LiBin32Mov,
                i1.op,
                i0.a,
                i1.b,
                i1.c,
                i1.a,
                3,
                i0.imm,
                u32::from(i2.a),
            );
        }
        // mov a, b; bin32 d, c, e; mov g, d — shuffle an argument,
        // compute into a temporary, copy the result home.
        if i0.op == DOp::Mov && is_bin32(i1.op) && i2.op == DOp::Mov && i2.b == i1.a {
            return f(
                FOp::MovBin32Mov,
                i1.op,
                i0.a,
                i0.b,
                i1.b,
                i1.a,
                3,
                u32::from(i1.c),
                u32::from(i2.a),
            );
        }
    }
    // --- 2-instruction windows ---
    if pc + 1 < d.len() && clear(2) {
        let i1 = d[pc + 1];
        // cmp a, b, c; bz/bnz a.
        if is_cmp32(i0.op) && i1.a == i0.a {
            if i1.op == DOp::Bz {
                return f(FOp::CmpBz, i0.op, i0.a, i0.b, i0.c, 0, 2, 0, i1.imm);
            }
            if i1.op == DOp::Bnz {
                return f(FOp::CmpBnz, i0.op, i0.a, i0.b, i0.c, 0, 2, 0, i1.imm);
            }
        }
        // alu; jmp (the Assign;Branch tail of a basic block).
        if is_alu(i0.op) && i1.op == DOp::Jmp {
            return f(FOp::AluJmp, i0.op, i0.a, i0.b, i0.c, 0, 2, i0.imm, i1.imm);
        }
        // addi a, b, imm; st32 c, imm2(d) (frame push when d = a).
        if i0.op == DOp::Addi && i1.op == DOp::Store32 {
            return f(
                FOp::AddiStore32,
                DOp::Store32,
                i0.a,
                i0.b,
                i1.a,
                i1.b,
                2,
                i0.imm,
                i1.imm,
            );
        }
        // addi a, b, imm; jr c + d (frame pop feeding an indirect jump).
        if i0.op == DOp::Addi && i1.op == DOp::Jr && i1.imm <= u32::from(u8::MAX) {
            return f(
                FOp::AddiJr,
                DOp::Jr,
                i0.a,
                i0.b,
                i1.a,
                i1.imm as u8,
                2,
                i0.imm,
                0,
            );
        }
        // mov a, b; call imm2 (argument shuffle feeding a call).
        if i0.op == DOp::Mov && i1.op == DOp::Call {
            return f(FOp::MovCall, DOp::Call, i0.a, i0.b, 0, 0, 2, 0, i1.imm);
        }
        // Generic straight-line pairs: two adjacent independent ALU /
        // 32-bit memory operations. None of these overlap the specific
        // patterns above (their second slots are branches, calls, or
        // jumps), so ordering within this match is immaterial.
        match (i0.op, i1.op) {
            (DOp::Mov, DOp::Mov) => {
                return f(FOp::MovMov, DOp::Mov, i0.a, i0.b, i1.a, i1.b, 2, 0, 0)
            }
            (DOp::Mov, DOp::Li) => {
                return f(FOp::MovLi, DOp::Li, i0.a, i0.b, i1.a, 0, 2, 0, i1.imm)
            }
            (DOp::Mov, DOp::Load32) => {
                return f(
                    FOp::MovLoad32,
                    DOp::Load32,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    0,
                    i1.imm,
                )
            }
            (DOp::Mov, DOp::Store32) => {
                return f(
                    FOp::MovStore32,
                    DOp::Store32,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    0,
                    i1.imm,
                )
            }
            (DOp::Li, DOp::Mov) => {
                return f(FOp::LiMov, DOp::Mov, i0.a, 0, i1.a, i1.b, 2, i0.imm, 0)
            }
            (DOp::Li, DOp::Store32) => {
                return f(
                    FOp::LiStore32,
                    DOp::Store32,
                    i0.a,
                    0,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (DOp::Li, op1) if is_bin32(op1) => {
                return f(FOp::LiBin32, op1, i0.a, i1.b, i1.c, i1.a, 2, i0.imm, 0)
            }
            (DOp::Load32, DOp::Mov) => {
                return f(
                    FOp::Load32Mov,
                    DOp::Mov,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    0,
                )
            }
            (DOp::Load32, DOp::Li) => {
                return f(
                    FOp::Load32Li,
                    DOp::Li,
                    i0.a,
                    i0.b,
                    i1.a,
                    0,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (DOp::Load32, DOp::Load32) => {
                return f(
                    FOp::Load32Load32,
                    DOp::Load32,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (DOp::Load32, DOp::Addi) => {
                return f(
                    FOp::Load32Addi,
                    DOp::Addi,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (DOp::Load32, DOp::Store32) => {
                return f(
                    FOp::Load32Store32,
                    DOp::Store32,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (DOp::Store32, DOp::Mov) => {
                return f(
                    FOp::Store32Mov,
                    DOp::Mov,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    0,
                )
            }
            (DOp::Store32, DOp::Li) => {
                return f(
                    FOp::Store32Li,
                    DOp::Li,
                    i0.a,
                    i0.b,
                    i1.a,
                    0,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (DOp::Store32, DOp::Store32) => {
                return f(
                    FOp::Store32Store32,
                    DOp::Store32,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            (op0, DOp::Store32) if is_bin32(op0) && i1.a == i0.a => {
                return f(FOp::Bin32Store32, op0, i0.a, i0.b, i0.c, i1.b, 2, 0, i1.imm)
            }
            (op0, DOp::Load32) if is_bin32(op0) && i1.b == i0.a => {
                return f(FOp::Bin32Load32, op0, i0.a, i0.b, i0.c, i1.a, 2, 0, i1.imm)
            }
            (op0, DOp::Mov) if is_bin32(op0) && i1.b == i0.a => {
                return f(FOp::Bin32Mov, op0, i0.a, i0.b, i0.c, i1.a, 2, 0, 0)
            }
            (op0, DOp::Li) if is_bin32(op0) => {
                return f(FOp::Bin32Li, op0, i0.a, i0.b, i0.c, i1.a, 2, 0, i1.imm)
            }
            (DOp::Mov, DOp::Addi) => {
                return f(
                    FOp::MovAddi,
                    DOp::Addi,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    0,
                    i1.imm,
                )
            }
            (DOp::Store32, DOp::Load32) => {
                return f(
                    FOp::Store32Load32,
                    DOp::Load32,
                    i0.a,
                    i0.b,
                    i1.a,
                    i1.b,
                    2,
                    i0.imm,
                    i1.imm,
                )
            }
            _ => {}
        }
    }
    None
}

fn plain_inst(di: DInst) -> FInst {
    FInst {
        op: plain_op(di.op),
        sel: di.op,
        a: di.a,
        b: di.b,
        c: di.c,
        d: 0,
        n: 1,
        imm: di.imm,
        imm2: 0,
    }
}

impl FusedCode {
    /// Runs the fusion pass over an already decoded stream. Pure
    /// function of the program; `plain` must come from
    /// [`DecodedCode::decode`] on this same `program`.
    pub fn fuse(program: &VmProgram, plain: Arc<DecodedCode>) -> FusedCode {
        let d = plain.insts.as_slice();
        let entry = entry_points(program, d.len());
        let mut insts: Vec<FInst> = d.iter().map(|&di| plain_inst(di)).collect();
        let mut mov_runs: Vec<u16> = Vec::new();
        let mut field_runs: Vec<FieldStep> = Vec::new();
        // Prepass: mark the heads of anchor windows (pre-resolved
        // transfers — see `is_anchor`) so the greedy pass below cannot
        // shear one off its head with a cheaper window formed a slot or
        // two upstream. Overlapping anchor candidates resolve
        // leftmost-first, matching the greedy scan.
        let mut protect = vec![false; d.len()];
        {
            let free = vec![false; d.len()];
            let mut pc = 0usize;
            while pc < d.len() {
                match try_fuse(d, &entry, &free, pc) {
                    Some(fi) if is_anchor(fi.op) => {
                        protect[pc] = true;
                        pc += fi.n as usize;
                    }
                    _ => pc += 1,
                }
            }
        }
        let mut pc = 0usize;
        while pc < d.len() {
            // A run of five or more moves with no interior entry point
            // collapses into one side-table-backed window; shorter runs
            // fall through to the fixed-width patterns.
            let run = d[pc..]
                .iter()
                .enumerate()
                .take(usize::from(u8::MAX))
                .take_while(|&(i, di)| di.op == DOp::Mov && (i == 0 || !entry[pc + i]))
                .count();
            if run >= 5 {
                let base = mov_runs.len() as u32;
                mov_runs.extend(
                    d[pc..pc + run]
                        .iter()
                        .map(|di| u16::from(di.a) | u16::from(di.b) << 8),
                );
                insts[pc] = FInst {
                    op: FOp::MovRun,
                    sel: DOp::Mov,
                    a: 0,
                    b: 0,
                    c: 0,
                    d: 0,
                    n: run as u8,
                    imm: base,
                    imm2: 0,
                };
                pc += run;
                continue;
            }
            // Runs of the record write-out / read-in step: two or more
            // consecutive repetitions (the CPS record build and the
            // continuation-entry restore emit one per saved live
            // variable) collapse into one side-table-backed window.
            let clear_to = |end: usize| (pc + 1..end).all(|i| !entry[i] && !protect[i]);
            let mut wrows = 0usize;
            while wrows < 51 && write_step_at(d, pc + 5 * wrows) && clear_to(pc + 5 * (wrows + 1)) {
                wrows += 1;
            }
            if wrows >= 2 {
                let base = field_runs.len() as u32;
                field_runs.extend((0..wrows).map(|i| write_step(d, pc + 5 * i)));
                insts[pc] = FInst {
                    op: FOp::WriteRun,
                    sel: DOp::Store32,
                    a: 0,
                    b: 0,
                    c: 0,
                    d: wrows as u8,
                    n: (5 * wrows) as u8,
                    imm: base,
                    imm2: 0,
                };
                pc += 5 * wrows;
                continue;
            }
            let mut rrows = 0usize;
            while rrows < 63 && read_step_at(d, pc + 4 * rrows) && clear_to(pc + 4 * (rrows + 1)) {
                rrows += 1;
            }
            if rrows >= 2 {
                let base = field_runs.len() as u32;
                field_runs.extend((0..rrows).map(|i| read_step(d, pc + 4 * i)));
                insts[pc] = FInst {
                    op: FOp::ReadRun,
                    sel: DOp::Li,
                    a: 0,
                    b: 0,
                    c: 0,
                    d: rrows as u8,
                    n: (4 * rrows) as u8,
                    imm: base,
                    imm2: 0,
                };
                pc += 4 * rrows;
                continue;
            }
            if let Some(fi) = try_fuse(d, &entry, &protect, pc) {
                let n = fi.n as usize;
                insts[pc] = fi;
                pc += n;
            } else {
                pc += 1;
            }
        }
        FusedCode {
            insts,
            mov_runs,
            field_runs,
            plain,
        }
    }

    /// Number of fused window heads (length > 1) in the stream.
    pub fn fused_heads(&self) -> usize {
        self.insts.iter().filter(|i| i.n > 1).count()
    }
}

const M32: u64 = 0xffff_ffff;

fn s32(v: u64) -> i64 {
    sign_extend(v, Width::W32)
}

/// One 32-bit binary ALU step for the run-window row helpers (the
/// opcode domain of [`is_bin32`]).
fn bin32_eval(op: DOp, x: u64, y: u64) -> u64 {
    match op {
        DOp::Add32 => x.wrapping_add(y) & M32,
        DOp::Sub32 => x.wrapping_sub(y) & M32,
        DOp::Mul32 => x.wrapping_mul(y) & M32,
        DOp::And32 => x & y & M32,
        DOp::Or32 => (x | y) & M32,
        DOp::Xor32 => (x ^ y) & M32,
        DOp::Eq32 => u64::from(x & M32 == y & M32),
        DOp::Ne32 => u64::from(x & M32 != y & M32),
        DOp::LtU32 => u64::from(x & M32 < y & M32),
        DOp::LeU32 => u64::from(x & M32 <= y & M32),
        DOp::GtU32 => u64::from(x & M32 > y & M32),
        DOp::GeU32 => u64::from(x & M32 >= y & M32),
        DOp::LtS32 => u64::from(s32(x) < s32(y)),
        DOp::LeS32 => u64::from(s32(x) <= s32(y)),
        DOp::GtS32 => u64::from(s32(x) > s32(y)),
        DOp::GeS32 => u64::from(s32(x) >= s32(y)),
        _ => unreachable!("run rows only select 32-bit binary opcodes"),
    }
}

impl<S: TraceSink> VmMachine<'_, S> {
    /// Executes the rows of a [`FOp::WriteRun`] window. `base` is the
    /// cost at the window head (head dispatch already charged); the
    /// caller charges the rows' totals arithmetically on success, so
    /// the hot dispatch loop never leaks `cost`'s address into this
    /// call. Returns `false` (with pc/cost/status flushed to the
    /// decoded-identical trip point) if a governor trip ended the
    /// slice at one of the rows' stores. Kept out of line so the
    /// dispatch loop's hot arms stay compact.
    #[inline(never)]
    fn write_run_rows(&mut self, steps: &[FieldStep], mut base: Cost, pc: u32) -> bool {
        const RM: usize = crate::isa::regs::NUM_REGS - 1;
        for (i, s) in steps.iter().enumerate() {
            let addr = (self.regs[s.b as usize & RM] as u32).wrapping_add(s.off1);
            self.mem
                .write_wide(Width::W32, addr, self.regs[s.a as usize & RM]);
            if let Some(g) = self.governor {
                let bytes = self.mem.mapped_bytes();
                if let Some(trip) = g.check_memory(bytes) {
                    // Row i's store is the (5i + 1)-th instruction of
                    // the window; reconstruct the decoded-identical
                    // observation at that point.
                    base.instructions += 5 * i as u64;
                    base.stores += i as u64 + 1;
                    base.loads += i as u64;
                    self.pc = pc + 5 * i as u32;
                    self.cost = base;
                    self.trip_limit(trip, bytes as u64);
                    return false;
                }
            }
            self.regs[s.a as usize & RM] = self.regs[s.c as usize & RM];
            let addr2 = (self.regs[s.d as usize & RM] as u32).wrapping_add(s.off2);
            self.regs[s.e as usize & RM] = self.mem.read_wide(Width::W32, addr2);
            self.regs[s.g as usize & RM] = u64::from(s.k);
            self.regs[s.h as usize & RM] = bin32_eval(
                s.op,
                self.regs[s.e as usize & RM],
                self.regs[s.g as usize & RM],
            );
        }
        true
    }

    /// Executes the rows of a [`FOp::ReadRun`] window. No governed
    /// transitions occur inside (loads never trip the governor), so
    /// the caller charges all cost arithmetically and this never ends
    /// the slice. Kept out of line so the dispatch loop's hot arms
    /// stay compact.
    #[inline(never)]
    fn read_run_rows(&mut self, steps: &[FieldStep]) {
        const RM: usize = crate::isa::regs::NUM_REGS - 1;
        for s in steps {
            self.regs[s.a as usize & RM] = u64::from(s.k);
            self.regs[s.d as usize & RM] = bin32_eval(
                s.op,
                self.regs[s.b as usize & RM],
                self.regs[s.c as usize & RM],
            );
            let addr = (self.regs[s.d as usize & RM] as u32).wrapping_add(s.off1);
            self.regs[s.e as usize & RM] = self.mem.read_wide(Width::W32, addr);
            self.regs[s.g as usize & RM] = self.regs[s.e as usize & RM];
        }
    }

    /// Runs up to `fuel` instructions over the fused stream. Exactly
    /// the semantics (status transitions, costs, error strings, trace
    /// events, governor trips) of [`VmMachine::run_decoded`], but
    /// retiring a whole window per dispatch where the fusion pass
    /// formed one. A fuel slice that ends inside a window is delegated
    /// to the decoded engine over the retained plain stream, so
    /// fuel-boundary behaviour is inherited, and a resumption that
    /// lands on an interior slot executes its plain opcode.
    pub(crate) fn run_fused(&mut self, fused: &FusedCode, fuel: u64) -> VmStatus {
        if matches!(self.status, VmStatus::OutOfFuel) {
            self.status = VmStatus::Running;
        }
        if !matches!(self.status, VmStatus::Running) {
            return self.status.clone();
        }
        let prog = self.program;
        let code = fused.insts.as_slice();
        let mut pc = self.pc;
        let mut cost = self.cost;
        // See `run_decoded`: operand indices are below NUM_REGS (a
        // power of two), so masking drops the bounds checks.
        const RM: usize = crate::isa::regs::NUM_REGS - 1;
        macro_rules! r {
            ($i:expr) => {
                self.regs[$i as usize & RM]
            };
        }
        // Every exit must flush the pc of the *original* instruction
        // that caused it (mid-window exits name the interior pc, so
        // the flushed state is indistinguishable from the decoded
        // engine's).
        macro_rules! flush {
            ($at:expr, $status:expr) => {{
                self.pc = $at;
                self.cost = cost;
                self.status = $status;
                return self.status.clone();
            }};
        }
        macro_rules! govern_mem {
            ($at:expr) => {
                if let Some(g) = self.governor {
                    let bytes = self.mem.mapped_bytes();
                    if let Some(trip) = g.check_memory(bytes) {
                        self.pc = $at;
                        self.cost = cost;
                        self.trip_limit(trip, bytes as u64);
                        return self.status.clone();
                    }
                }
            };
        }
        macro_rules! govern_sp {
            ($at:expr) => {
                if let Some(g) = self.governor {
                    let sp = self.regs[regs::SP as usize];
                    if let Some(trip) = g.check_sp(sp) {
                        self.pc = $at;
                        self.cost = cost;
                        self.trip_limit(trip, sp);
                        return self.status.clone();
                    }
                }
            };
        }
        // One ALU step for the polymorphic fusions, selected by the
        // plain opcode recorded in `sel`.
        macro_rules! alu {
            ($sel:expr, $a:expr, $b:expr, $c:expr, $imm:expr) => {
                match $sel {
                    DOp::Li => r!($a) = u64::from($imm),
                    DOp::Addi => {
                        let v = (r!($b) as u32).wrapping_add($imm);
                        r!($a) = u64::from(v);
                    }
                    DOp::Mov => r!($a) = r!($b),
                    DOp::Add32 => r!($a) = r!($b).wrapping_add(r!($c)) & M32,
                    DOp::Sub32 => r!($a) = r!($b).wrapping_sub(r!($c)) & M32,
                    DOp::Mul32 => r!($a) = r!($b).wrapping_mul(r!($c)) & M32,
                    DOp::And32 => r!($a) = r!($b) & r!($c) & M32,
                    DOp::Or32 => r!($a) = (r!($b) | r!($c)) & M32,
                    DOp::Xor32 => r!($a) = (r!($b) ^ r!($c)) & M32,
                    DOp::Eq32 => r!($a) = u64::from(r!($b) & M32 == r!($c) & M32),
                    DOp::Ne32 => r!($a) = u64::from(r!($b) & M32 != r!($c) & M32),
                    DOp::LtU32 => r!($a) = u64::from(r!($b) & M32 < r!($c) & M32),
                    DOp::LeU32 => r!($a) = u64::from(r!($b) & M32 <= r!($c) & M32),
                    DOp::GtU32 => r!($a) = u64::from(r!($b) & M32 > r!($c) & M32),
                    DOp::GeU32 => r!($a) = u64::from(r!($b) & M32 >= r!($c) & M32),
                    DOp::LtS32 => r!($a) = u64::from(s32(r!($b)) < s32(r!($c))),
                    DOp::LeS32 => r!($a) = u64::from(s32(r!($b)) <= s32(r!($c))),
                    DOp::GtS32 => r!($a) = u64::from(s32(r!($b)) > s32(r!($c))),
                    DOp::GeS32 => r!($a) = u64::from(s32(r!($b)) >= s32(r!($c))),
                    _ => unreachable!("fusion only selects ALU opcodes"),
                }
            };
        }
        let mut remaining = fuel;
        while remaining > 0 {
            let Some(&FInst {
                op,
                sel,
                a,
                b,
                c,
                d,
                n,
                imm,
                imm2,
            }) = code.get(pc as usize)
            else {
                flush!(pc, VmStatus::Error(format!("pc {pc} out of range")));
            };
            // Plain slots pay exactly the decoded engine's dispatch
            // cost; fused arms claim the rest of their window with
            // `win!` before any effect.
            remaining -= 1;
            cost.instructions += 1;
            let mut next = pc + 1;
            // Claims the remaining `w - 1` fuel of a `w`-wide window.
            // If the slice ends inside the window, gives back the head
            // charge and finishes the slice on the plain stream,
            // instruction by instruction, so partial-window state is
            // exactly the decoded engine's. Charging the interior
            // slots' `cost.instructions` is left to the arm, so
            // governor trips observe the same cost the decoded engine
            // would at the same transition.
            macro_rules! win {
                ($w:literal) => {{
                    win!($w, jump);
                    next = pc + $w;
                }};
                // Arms that always transfer control skip the
                // fall-through `next` assignment.
                ($w:literal, jump) => {{
                    if remaining < $w - 1 {
                        cost.instructions -= 1;
                        self.pc = pc;
                        self.cost = cost;
                        return self.run_decoded(&fused.plain, remaining + 1);
                    }
                    remaining -= $w - 1;
                }};
            }
            match op {
                // --- fused windows ---
                FOp::CmpBz => {
                    win!(2);
                    cost.instructions += 1;
                    cost.branches += 1;
                    alu!(sel, a, b, c, imm);
                    if r!(a) == 0 {
                        next = imm2;
                    }
                }
                FOp::CmpBnz => {
                    win!(2);
                    cost.instructions += 1;
                    cost.branches += 1;
                    alu!(sel, a, b, c, imm);
                    if r!(a) != 0 {
                        next = imm2;
                    }
                }
                FOp::LiCmpBz => {
                    win!(3);
                    cost.instructions += 2;
                    cost.branches += 1;
                    r!(c) = u64::from(imm);
                    alu!(sel, a, b, c, 0u32);
                    if r!(a) == 0 {
                        next = imm2;
                    }
                }
                FOp::LiCmpBnz => {
                    win!(3);
                    cost.instructions += 2;
                    cost.branches += 1;
                    r!(c) = u64::from(imm);
                    alu!(sel, a, b, c, 0u32);
                    if r!(a) != 0 {
                        next = imm2;
                    }
                }
                FOp::AluJmp => {
                    win!(2, jump);
                    cost.instructions += 1;
                    cost.branches += 1;
                    alu!(sel, a, b, c, imm);
                    if S::ENABLED {
                        self.emit_jmp_site(cost.total(), pc + 1, imm2);
                    }
                    next = imm2;
                }
                FOp::AddiStore32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.stores += 1;
                    let v = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = u64::from(v);
                    let addr = (r!(d) as u32).wrapping_add(imm2);
                    self.mem.write_wide(Width::W32, addr, r!(c));
                    govern_mem!(pc + 1);
                }
                FOp::MovCall => {
                    win!(2, jump);
                    cost.instructions += 1;
                    r!(a) = r!(b);
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!(pc + 1);
                    if S::ENABLED {
                        let e = Event::Call {
                            caller: name_at(prog, pc + 1),
                            callee: name_at(prog, imm2),
                        };
                        self.sink.event(cost.total(), e);
                    }
                    self.regs[regs::RA as usize] = u64::from(pc + 2);
                    next = imm2;
                }
                FOp::RetJr => {
                    win!(3, jump);
                    cost.instructions += 2;
                    cost.loads += 1;
                    cost.branches += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    let v = (r!(b) as u32).wrapping_add(imm2);
                    r!(b) = u64::from(v);
                    match self.code_target(r!(a)) {
                        Ok(base) => {
                            next = base.wrapping_add(u32::from(d));
                            if S::ENABLED {
                                self.emit_jr_site(cost.total(), pc + 2, next);
                            }
                        }
                        Err(e) => flush!(
                            pc + 2,
                            VmStatus::Error(format!("{e}{}", prog.locate(pc + 2)))
                        ),
                    }
                }
                FOp::CutJr => {
                    win!(3, jump);
                    cost.instructions += 2;
                    cost.loads += 2;
                    cost.branches += 1;
                    let base = r!(b) as u32;
                    r!(a) = self.mem.read_wide(Width::W32, base);
                    let base2 = (r!(b) as u32).wrapping_add(4);
                    self.regs[regs::SP as usize] = self.mem.read_wide(Width::W32, base2);
                    match self.code_target(r!(a)) {
                        Ok(t) => {
                            next = t;
                            if S::ENABLED {
                                self.emit_jr_site(cost.total(), pc + 2, next);
                            }
                        }
                        Err(e) => flush!(
                            pc + 2,
                            VmStatus::Error(format!("{e}{}", prog.locate(pc + 2)))
                        ),
                    }
                }
                // --- generic straight-line pairs (window length 2) ---
                FOp::MovMov => {
                    win!(2);
                    cost.instructions += 1;
                    r!(a) = r!(b);
                    r!(c) = r!(d);
                }
                FOp::MovLi => {
                    win!(2);
                    cost.instructions += 1;
                    r!(a) = r!(b);
                    r!(c) = u64::from(imm2);
                }
                FOp::MovLoad32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 1;
                    r!(a) = r!(b);
                    let addr = (r!(d) as u32).wrapping_add(imm2);
                    r!(c) = self.mem.read_wide(Width::W32, addr);
                }
                FOp::MovStore32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.stores += 1;
                    r!(a) = r!(b);
                    let addr = (r!(d) as u32).wrapping_add(imm2);
                    self.mem.write_wide(Width::W32, addr, r!(c));
                    govern_mem!(pc + 1);
                }
                FOp::LiMov => {
                    win!(2);
                    cost.instructions += 1;
                    r!(a) = u64::from(imm);
                    r!(c) = r!(d);
                }
                FOp::LiStore32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.stores += 1;
                    r!(a) = u64::from(imm);
                    let addr = (r!(d) as u32).wrapping_add(imm2);
                    self.mem.write_wide(Width::W32, addr, r!(c));
                    govern_mem!(pc + 1);
                }
                FOp::LiBin32 => {
                    win!(2);
                    cost.instructions += 1;
                    r!(a) = u64::from(imm);
                    alu!(sel, d, b, c, 0u32);
                }
                FOp::Load32Mov => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!(c) = r!(d);
                }
                FOp::Load32Li => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!(c) = u64::from(imm2);
                }
                FOp::Load32Load32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 2;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    let addr2 = (r!(d) as u32).wrapping_add(imm2);
                    r!(c) = self.mem.read_wide(Width::W32, addr2);
                }
                FOp::Load32Addi => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    let v = (r!(d) as u32).wrapping_add(imm2);
                    r!(c) = u64::from(v);
                }
                FOp::Load32Store32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 1;
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    let addr2 = (r!(d) as u32).wrapping_add(imm2);
                    self.mem.write_wide(Width::W32, addr2, r!(c));
                    govern_mem!(pc + 1);
                }
                FOp::Store32Mov => {
                    win!(2);
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc);
                    cost.instructions += 1;
                    r!(c) = r!(d);
                }
                FOp::Store32Li => {
                    win!(2);
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc);
                    cost.instructions += 1;
                    r!(c) = u64::from(imm2);
                }
                FOp::Store32Store32 => {
                    win!(2);
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc);
                    cost.instructions += 1;
                    cost.stores += 1;
                    let addr2 = (r!(d) as u32).wrapping_add(imm2);
                    self.mem.write_wide(Width::W32, addr2, r!(c));
                    govern_mem!(pc + 1);
                }
                FOp::Bin32Store32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.stores += 1;
                    alu!(sel, a, b, c, 0u32);
                    let addr = (r!(d) as u32).wrapping_add(imm2);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc + 1);
                }
                FOp::Bin32Load32 => {
                    win!(2);
                    cost.instructions += 1;
                    cost.loads += 1;
                    alu!(sel, a, b, c, 0u32);
                    let addr = (r!(a) as u32).wrapping_add(imm2);
                    r!(d) = self.mem.read_wide(Width::W32, addr);
                }
                FOp::Bin32Mov => {
                    win!(2);
                    cost.instructions += 1;
                    alu!(sel, a, b, c, 0u32);
                    r!(d) = r!(a);
                }
                FOp::MovAddi => {
                    win!(2);
                    cost.instructions += 1;
                    r!(a) = r!(b);
                    let v = (r!(d) as u32).wrapping_add(imm2);
                    r!(c) = u64::from(v);
                }
                FOp::Store32Load32 => {
                    win!(2);
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc);
                    cost.instructions += 1;
                    cost.loads += 1;
                    let addr2 = (r!(d) as u32).wrapping_add(imm2);
                    r!(c) = self.mem.read_wide(Width::W32, addr2);
                }
                FOp::AddiJr => {
                    win!(2, jump);
                    cost.instructions += 1;
                    cost.branches += 1;
                    let v = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = u64::from(v);
                    match self.code_target(r!(c)) {
                        Ok(base) => {
                            next = base.wrapping_add(u32::from(d));
                            if S::ENABLED {
                                self.emit_jr_site(cost.total(), pc + 1, next);
                            }
                        }
                        Err(e) => flush!(
                            pc + 1,
                            VmStatus::Error(format!("{e}{}", prog.locate(pc + 1)))
                        ),
                    }
                }
                // --- wider windows (length 3 and 4) ---
                FOp::Mov3 => {
                    win!(3);
                    cost.instructions += 2;
                    r!(a) = r!(b);
                    r!(c) = r!(d);
                    r!(imm as u8) = r!((imm >> 8) as u8);
                }
                FOp::Mov4 => {
                    win!(4);
                    cost.instructions += 3;
                    r!(a) = r!(b);
                    r!(c) = r!(d);
                    r!(imm as u8) = r!((imm >> 8) as u8);
                    r!(imm2 as u8) = r!((imm2 >> 8) as u8);
                }
                FOp::Load32LiBin32 => {
                    win!(3);
                    cost.instructions += 2;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!(c) = u64::from(imm2);
                    alu!(sel, d, a, c, 0u32);
                }
                FOp::MovMovCall => {
                    win!(3, jump);
                    cost.instructions += 2;
                    r!(a) = r!(b);
                    r!(c) = r!(d);
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!(pc + 2);
                    if S::ENABLED {
                        let e = Event::Call {
                            caller: name_at(prog, pc + 2),
                            callee: name_at(prog, imm2),
                        };
                        self.sink.event(cost.total(), e);
                    }
                    self.regs[regs::RA as usize] = u64::from(pc + 3);
                    next = imm2;
                }
                FOp::Load32LiBin32Store32Mov => {
                    win!(5);
                    cost.instructions += 3;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm & 0xffff);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!(c) = u64::from(imm2 & 0xffff);
                    alu!(sel, d, a, c, 0u32);
                    cost.stores += 1;
                    let saddr = (r!(b) as u32).wrapping_add(imm >> 16);
                    self.mem.write_wide(Width::W32, saddr, r!(d));
                    govern_mem!(pc + 3);
                    cost.instructions += 1;
                    r!((imm2 >> 16) as u8) = r!((imm2 >> 24) as u8);
                }
                FOp::Store32MovLoad32LiBin32 => {
                    win!(5);
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm & 0xffff);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc);
                    cost.instructions += 4;
                    cost.loads += 1;
                    r!(a) = r!(c);
                    let e = (imm2 >> 8) as u8;
                    let g = (imm2 >> 16) as u8;
                    let h = (imm2 >> 24) as u8;
                    let addr2 = (r!(d) as u32).wrapping_add(imm >> 16);
                    r!(e) = self.mem.read_wide(Width::W32, addr2);
                    r!(g) = u64::from(imm2 & 0xff);
                    alu!(sel, h, e, g, 0u32);
                }
                FOp::LiBin32Load32Mov => {
                    win!(4);
                    cost.instructions += 3;
                    cost.loads += 1;
                    r!(a) = u64::from(imm);
                    alu!(sel, d, b, c, 0u32);
                    let e = (imm2 >> 16) as u8;
                    let addr = (r!(d) as u32).wrapping_add(imm2 & 0xffff);
                    r!(e) = self.mem.read_wide(Width::W32, addr);
                    r!((imm2 >> 24) as u8) = r!(e);
                }
                FOp::LiBin32Mov => {
                    win!(3);
                    cost.instructions += 2;
                    r!(a) = u64::from(imm);
                    alu!(sel, d, b, c, 0u32);
                    r!(imm2 as u8) = r!(d);
                }
                FOp::MovBin32Mov => {
                    win!(3);
                    cost.instructions += 2;
                    r!(a) = r!(b);
                    let e = imm as u8;
                    alu!(sel, d, c, e, 0u32);
                    r!(imm2 as u8) = r!(d);
                }
                FOp::LiBin32MovJmp => {
                    win!(4, jump);
                    cost.instructions += 3;
                    cost.branches += 1;
                    r!(a) = u64::from(imm);
                    alu!(sel, d, b, c, 0u32);
                    r!((imm2 >> 24) as u8) = r!(d);
                    let target = imm2 & 0xff_ffff;
                    if S::ENABLED {
                        self.emit_jmp_site(cost.total(), pc + 3, target);
                    }
                    next = target;
                }
                FOp::Load32Load32CmpBz => {
                    win!(4, jump);
                    cost.instructions += 3;
                    cost.loads += 2;
                    cost.branches += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm & 0xffff);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    let addr2 = (r!(d) as u32).wrapping_add(imm >> 16);
                    r!(c) = self.mem.read_wide(Width::W32, addr2);
                    let e = (imm2 >> 24) as u8;
                    alu!(sel, e, a, c, 0u32);
                    next = if r!(e) == 0 { imm2 & 0xff_ffff } else { pc + 4 };
                }
                FOp::Load32LiBin32Store32Jmp => {
                    win!(5, jump);
                    cost.instructions += 3;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm & 0xffff);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!(c) = u64::from(imm2 >> 24);
                    alu!(sel, d, a, c, 0u32);
                    cost.stores += 1;
                    let saddr = (r!(b) as u32).wrapping_add(imm >> 16);
                    self.mem.write_wide(Width::W32, saddr, r!(d));
                    govern_mem!(pc + 3);
                    cost.instructions += 1;
                    cost.branches += 1;
                    let target = imm2 & 0xff_ffff;
                    if S::ENABLED {
                        self.emit_jmp_site(cost.total(), pc + 4, target);
                    }
                    next = target;
                }
                FOp::Load32MovLoad32MovCall => {
                    win!(5, jump);
                    cost.instructions += 4;
                    cost.loads += 2;
                    let addr = (r!(b) as u32).wrapping_add(imm & 0xffff);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!((imm2 >> 16) as u8) = r!(a);
                    let addr2 = (r!(d) as u32).wrapping_add(imm >> 16);
                    r!(c) = self.mem.read_wide(Width::W32, addr2);
                    r!((imm2 >> 24) as u8) = r!(c);
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!(pc + 4);
                    let target = imm2 & 0xffff;
                    if S::ENABLED {
                        let e = Event::Call {
                            caller: name_at(prog, pc + 4),
                            callee: name_at(prog, target),
                        };
                        self.sink.event(cost.total(), e);
                    }
                    self.regs[regs::RA as usize] = u64::from(pc + 5);
                    next = target;
                }
                FOp::Bin32Li => {
                    win!(2);
                    cost.instructions += 1;
                    alu!(sel, a, b, c, 0u32);
                    r!(d) = u64::from(imm2);
                }
                FOp::Load32AddiJmp => {
                    win!(3, jump);
                    cost.instructions += 2;
                    cost.loads += 1;
                    cost.branches += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm & 0xffff);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    let v = (r!(d) as u32).wrapping_add(imm2);
                    r!(c) = u64::from(v);
                    let target = imm >> 16;
                    if S::ENABLED {
                        self.emit_jmp_site(cost.total(), pc + 2, target);
                    }
                    next = target;
                }
                FOp::WriteRun => {
                    let w = u64::from(n);
                    if remaining < w - 1 {
                        cost.instructions -= 1;
                        self.pc = pc;
                        self.cost = cost;
                        return self.run_decoded(&fused.plain, remaining + 1);
                    }
                    remaining -= w - 1;
                    next = pc + u32::from(n);
                    let rows = u64::from(d);
                    let steps = &fused.field_runs[imm as usize..][..usize::from(d)];
                    if !self.write_run_rows(steps, cost, pc) {
                        return self.status.clone();
                    }
                    cost.instructions += 5 * rows - 1;
                    cost.stores += rows;
                    cost.loads += rows;
                }
                FOp::ReadRun => {
                    let w = u64::from(n);
                    if remaining < w - 1 {
                        cost.instructions -= 1;
                        self.pc = pc;
                        self.cost = cost;
                        return self.run_decoded(&fused.plain, remaining + 1);
                    }
                    remaining -= w - 1;
                    cost.instructions += w - 1;
                    cost.loads += u64::from(d);
                    next = pc + u32::from(n);
                    self.read_run_rows(&fused.field_runs[imm as usize..][..usize::from(d)]);
                }
                FOp::MovRun => {
                    let w = u64::from(n);
                    if remaining < w - 1 {
                        cost.instructions -= 1;
                        self.pc = pc;
                        self.cost = cost;
                        return self.run_decoded(&fused.plain, remaining + 1);
                    }
                    remaining -= w - 1;
                    cost.instructions += w - 1;
                    next = pc + u32::from(n);
                    let base = imm as usize;
                    for &pair in &fused.mov_runs[base..base + usize::from(n)] {
                        r!(pair as u8) = r!((pair >> 8) as u8);
                    }
                }
                FOp::Load32MovCall => {
                    win!(3, jump);
                    cost.instructions += 2;
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                    r!(c) = r!(d);
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!(pc + 2);
                    if S::ENABLED {
                        let e = Event::Call {
                            caller: name_at(prog, pc + 2),
                            callee: name_at(prog, imm2),
                        };
                        self.sink.event(cost.total(), e);
                    }
                    self.regs[regs::RA as usize] = u64::from(pc + 3);
                    next = imm2;
                }
                // --- plain slots (window length 1) ---
                FOp::Halt => {
                    if pc == 0 {
                        let results = (0..self.expected_results)
                            .map(|i| self.regs[regs::ARG0 as usize + i])
                            .collect();
                        flush!(pc, VmStatus::Halted(results));
                    }
                    flush!(
                        pc,
                        VmStatus::Error(format!("abnormal top-level return (pc {pc})"))
                    );
                }
                FOp::Li => r!(a) = u64::from(imm),
                FOp::Addi => {
                    let v = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = u64::from(v);
                }
                FOp::Mov => r!(a) = r!(b),
                FOp::Add32 => r!(a) = r!(b).wrapping_add(r!(c)) & M32,
                FOp::Sub32 => r!(a) = r!(b).wrapping_sub(r!(c)) & M32,
                FOp::Mul32 => r!(a) = r!(b).wrapping_mul(r!(c)) & M32,
                FOp::And32 => r!(a) = r!(b) & r!(c) & M32,
                FOp::Or32 => r!(a) = (r!(b) | r!(c)) & M32,
                FOp::Xor32 => r!(a) = (r!(b) ^ r!(c)) & M32,
                FOp::Eq32 => r!(a) = u64::from(r!(b) & M32 == r!(c) & M32),
                FOp::Ne32 => r!(a) = u64::from(r!(b) & M32 != r!(c) & M32),
                FOp::LtU32 => r!(a) = u64::from(r!(b) & M32 < r!(c) & M32),
                FOp::LeU32 => r!(a) = u64::from(r!(b) & M32 <= r!(c) & M32),
                FOp::GtU32 => r!(a) = u64::from(r!(b) & M32 > r!(c) & M32),
                FOp::GeU32 => r!(a) = u64::from(r!(b) & M32 >= r!(c) & M32),
                FOp::LtS32 => r!(a) = u64::from(s32(r!(b)) < s32(r!(c))),
                FOp::LeS32 => r!(a) = u64::from(s32(r!(b)) <= s32(r!(c))),
                FOp::GtS32 => r!(a) = u64::from(s32(r!(b)) > s32(r!(c))),
                FOp::GeS32 => r!(a) = u64::from(s32(r!(b)) >= s32(r!(c))),
                FOp::BinSlow => {
                    let Inst::Bin { op, w, rd, ra, rb } = prog.code[pc as usize] else {
                        unreachable!("fusion preserved instruction indices");
                    };
                    match op.eval(w, r!(ra), r!(rb)) {
                        Ok((v, _)) => r!(rd) = v,
                        Err(e) => flush!(
                            pc,
                            VmStatus::Error(format!("fault at pc {pc}{}: {e}", prog.locate(pc)))
                        ),
                    }
                }
                FOp::UnSlow => {
                    let Inst::Un { op, w, rd, ra } = prog.code[pc as usize] else {
                        unreachable!("fusion preserved instruction indices");
                    };
                    let (v, _) = op.eval(w, r!(ra));
                    r!(rd) = v;
                }
                FOp::Load8 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W8, addr);
                }
                FOp::Load16 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W16, addr);
                }
                FOp::Load32 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                }
                FOp::Load64 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W64, addr);
                }
                FOp::Store8 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W8, addr, r!(a));
                    govern_mem!(pc);
                }
                FOp::Store16 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W16, addr, r!(a));
                    govern_mem!(pc);
                }
                FOp::Store32 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!(pc);
                }
                FOp::Store64 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W64, addr, r!(a));
                    govern_mem!(pc);
                }
                FOp::Bnz => {
                    cost.branches += 1;
                    if r!(a) != 0 {
                        next = imm;
                    }
                }
                FOp::Bz => {
                    cost.branches += 1;
                    if r!(a) == 0 {
                        next = imm;
                    }
                }
                FOp::Jmp => {
                    cost.branches += 1;
                    if S::ENABLED {
                        self.emit_jmp_site(cost.total(), pc, imm);
                    }
                    next = imm;
                }
                FOp::Jr => {
                    cost.branches += 1;
                    match self.code_target(r!(a)) {
                        Ok(base) => {
                            next = base.wrapping_add(imm);
                            if S::ENABLED {
                                self.emit_jr_site(cost.total(), pc, next);
                            }
                        }
                        Err(e) => {
                            flush!(pc, VmStatus::Error(format!("{e}{}", prog.locate(pc))))
                        }
                    }
                }
                FOp::Call => {
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!(pc);
                    if S::ENABLED {
                        let e = Event::Call {
                            caller: name_at(prog, pc),
                            callee: name_at(prog, imm),
                        };
                        self.sink.event(cost.total(), e);
                    }
                    self.regs[regs::RA as usize] = u64::from(pc + 1);
                    next = imm;
                }
                FOp::CallR => {
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!(pc);
                    match self.code_target(r!(a)) {
                        Ok(t) => {
                            if S::ENABLED {
                                let e = Event::Call {
                                    caller: name_at(prog, pc),
                                    callee: name_at(prog, t),
                                };
                                self.sink.event(cost.total(), e);
                            }
                            self.regs[regs::RA as usize] = u64::from(pc + 1);
                            next = t;
                        }
                        Err(e) => {
                            flush!(pc, VmStatus::Error(format!("{e}{}", prog.locate(pc))))
                        }
                    }
                }
                FOp::SysYield => {
                    if S::ENABLED {
                        let e = Event::Yield {
                            code: self.regs[regs::ARG0 as usize],
                        };
                        self.sink.event(cost.total(), e);
                    }
                    flush!(pc + 1, VmStatus::Suspended);
                }
            }
            pc = next;
        }
        self.pc = pc;
        self.cost = cost;
        self.status = VmStatus::OutOfFuel;
        self.status.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn program(src: &str) -> VmProgram {
        compile(&build_program(&parse_module(src).unwrap()).unwrap()).unwrap()
    }

    fn fuse_of(vp: &VmProgram) -> FusedCode {
        FusedCode::fuse(vp, Arc::new(DecodedCode::decode(vp)))
    }

    const RECURSIVE: &str = r#"
        f(bits32 n) {
            bits32 s, p;
            if n == 1 { return (1, 1); }
            else { s, p = f(n - 1); return (s + n, p * n); }
        }
    "#;

    const LOOPY: &str = "f(bits32 n) { bits32 s; s = 0; loop: if n == 0 { return (s); } else { s = s + n; n = n - 1; goto loop; } }";

    /// The fusion pass is index-preserving: same length, and interior
    /// slots of every window keep their plain opcode.
    #[test]
    fn fuse_is_index_aligned_and_interiors_stay_plain() {
        let vp = program(RECURSIVE);
        let fu = fuse_of(&vp);
        assert_eq!(fu.insts.len(), vp.code.len());
        let mut pc = 0usize;
        while pc < fu.insts.len() {
            let fi = fu.insts[pc];
            let n = fi.n as usize;
            for k in 1..n {
                let interior = fu.insts[pc + k];
                assert_eq!(interior.n, 1, "interior slot at {} must stay plain", pc + k);
                assert_eq!(interior.sel, fu.plain.insts[pc + k].op);
            }
            pc += n;
        }
    }

    /// Fusion actually fires on call/return-heavy code: the epilogue
    /// and compare-and-branch patterns are present in Figure-1-style
    /// programs.
    #[test]
    fn fusion_finds_windows_in_recursive_code() {
        let vp = program(RECURSIVE);
        let fu = fuse_of(&vp);
        assert!(
            fu.fused_heads() > 0,
            "expected fused windows in:\n{}",
            crate::disasm::disassemble(&vp)
        );
        assert!(
            fu.insts.iter().any(|i| i.op == FOp::RetJr),
            "expected a fused return epilogue"
        );
    }

    /// All three engines retire identical streams: same result, same
    /// pc, same cost breakdown, same registers.
    #[test]
    fn fused_run_matches_both_other_engines_exactly() {
        for src in [RECURSIVE, LOOPY] {
            let vp = program(src);
            let mut old = VmMachine::new(&vp);
            let mut dec = VmMachine::new_decoded(&vp);
            let mut fus = VmMachine::new_fused(&vp);
            old.start("f", &[10], 1);
            dec.start("f", &[10], 1);
            fus.start("f", &[10], 1);
            let a = old.run(1_000_000);
            let b = dec.run(1_000_000);
            let c = fus.run(1_000_000);
            assert_eq!(a, c);
            assert_eq!(b, c);
            assert_eq!(old.pc, fus.pc);
            assert_eq!(old.cost, fus.cost);
            assert_eq!(old.regs, fus.regs);
        }
    }

    /// Fuel exhaustion and resumption agree step-for-step with the
    /// decoded engine, including slices that end inside a window.
    #[test]
    fn fused_fuel_boundary_matches() {
        let vp = program(LOOPY);
        for fuel in [1u64, 2, 3, 5, 7, 50] {
            let mut dec = VmMachine::new_decoded(&vp);
            let mut fus = VmMachine::new_fused(&vp);
            dec.start("f", &[100], 1);
            fus.start("f", &[100], 1);
            loop {
                let a = dec.run(fuel);
                let b = fus.run(fuel);
                assert_eq!(a, b, "fuel slice {fuel}");
                assert_eq!((dec.pc, dec.cost), (fus.pc, fus.cost), "fuel slice {fuel}");
                assert_eq!(dec.regs, fus.regs, "fuel slice {fuel}");
                if !matches!(a, VmStatus::OutOfFuel) {
                    break;
                }
            }
        }
    }

    /// Fault reporting (strings included) is inherited, not duplicated.
    #[test]
    fn fused_faults_match_decoded_engine() {
        let vp = program("f(bits32 a, bits32 b) { return (a / b); }");
        let mut dec = VmMachine::new_decoded(&vp);
        let mut fus = VmMachine::new_fused(&vp);
        dec.start("f", &[1, 0], 1);
        fus.start("f", &[1, 0], 1);
        assert_eq!(dec.run(10_000), fus.run(10_000));
        assert!(matches!(fus.status(), VmStatus::Error(e) if e.contains("division by zero")));
    }

    const DEEP: &str = r#"
        f(bits32 n) {
            bits32 r;
            if n == 0 { return (0); }
            else { r = f(n - 1); return (r + 1); }
        }
    "#;

    /// Runs governed on decoded and fused engines and asserts they trip
    /// at the same transition with the same cost breakdown.
    fn both_governed(src: &str, g: cmm_chaos::ResourceGovernor) -> VmStatus {
        let vp = program(src);
        let mut dec = VmMachine::new_decoded(&vp);
        let mut fus = VmMachine::new_fused(&vp);
        dec.set_governor(g);
        fus.set_governor(g);
        dec.start("f", &[1000], 1);
        fus.start("f", &[1000], 1);
        let a = dec.run(100_000_000);
        let b = fus.run(100_000_000);
        assert_eq!(a, b, "governed status diverged");
        assert_eq!(
            (dec.pc, dec.cost),
            (fus.pc, fus.cost),
            "governed trip point diverged"
        );
        b
    }

    #[test]
    fn governor_stack_floor_trips_identically_on_fused_engine() {
        let vp = program(DEEP);
        let mut probe = VmMachine::new(&vp);
        let sp0 = probe.reg(regs::SP);
        probe.start("f", &[1000], 1);
        let mut min_sp = sp0;
        while matches!(probe.status(), VmStatus::Running) {
            probe.step();
            min_sp = min_sp.min(probe.reg(regs::SP));
        }
        assert!(matches!(probe.status(), VmStatus::Halted(_)));
        let floor = (sp0 + min_sp) / 2;
        let g = cmm_chaos::ResourceGovernor {
            stack_floor: Some(floor),
            ..cmm_chaos::ResourceGovernor::unlimited()
        };
        match both_governed(DEEP, g) {
            VmStatus::Error(e) => assert!(e.contains("stack-depth"), "unexpected error {e:?}"),
            other => panic!("expected a stack-floor trip, got {other:?}"),
        }
    }

    #[test]
    fn governor_memory_limit_trips_identically_on_fused_engine() {
        let src = r#"
            data base { bits32 0; }
            f(bits32 n) {
                bits32 i;
                i = 0;
              loop:
                if i == n { return (i); }
                else { bits32[base + i * 4096] = i; i = i + 1; goto loop; }
            }
        "#;
        let g = cmm_chaos::ResourceGovernor {
            max_memory_bytes: Some(16 * 4096),
            ..cmm_chaos::ResourceGovernor::unlimited()
        };
        match both_governed(src, g) {
            VmStatus::Error(e) => assert!(e.contains("memory"), "unexpected error {e:?}"),
            other => panic!("expected a memory trip, got {other:?}"),
        }
    }

    #[test]
    fn governor_fuel_slice_clips_each_run_call_on_fused_engine() {
        let g = cmm_chaos::ResourceGovernor {
            fuel_slice: Some(10),
            ..cmm_chaos::ResourceGovernor::unlimited()
        };
        assert_eq!(both_governed(DEEP, g), VmStatus::OutOfFuel);
    }

    /// Branch targets are never interior to a window: every entered pc
    /// is either a head or a plain slot.
    #[test]
    fn branch_targets_never_land_inside_a_window() {
        for src in [RECURSIVE, LOOPY, DEEP] {
            let vp = program(src);
            let fu = fuse_of(&vp);
            let entry = entry_points(&vp, fu.insts.len());
            let mut pc = 0usize;
            while pc < fu.insts.len() {
                let n = fu.insts[pc].n as usize;
                for k in 1..n {
                    assert!(
                        !entry[pc + k],
                        "entry point at {} is interior to the window at {pc}",
                        pc + k
                    );
                }
                pc += n;
            }
        }
    }
}
