//! Pre-decoded execution engine.
//!
//! [`DecodedCode`] is a one-time lowering of the assembled [`Inst`]
//! stream into a dense array of fixed-size [`DInst`] words whose opcode
//! is a small flat enum: the hot `step` match becomes a single jump, the
//! common infallible 32-bit operators get their own opcodes (no nested
//! `BinOp`/`Width` dispatch, no `Result` plumbing), and the branch/cost
//! classification is folded into the opcode itself instead of being a
//! second match per retired instruction.
//!
//! The lowering is index-preserving: `insts[pc]` decodes `code[pc]`, so
//! every pc-derived structure — branch-table return offsets (`jr ra+i`),
//! `call_sites` keyed by return address, `code_map`, `proc_at_pc` — is
//! valid unchanged under both engines, and the front-end run-time system
//! (`VmThread`) never needs to know which engine is driving. Rare or
//! fallible forms (`%divu` and friends, width-polymorphic unaries) keep a
//! `*Slow` opcode that re-reads the original instruction at the same
//! index, so their exact error strings and semantics are inherited from
//! the one canonical implementation rather than duplicated.

use crate::codegen::VmProgram;
use crate::isa::{regs, Inst};
use crate::machine::{name_at, VmMachine, VmStatus};
use cmm_ir::expr::sign_extend;
use cmm_ir::{BinOp, Width};
use cmm_obs::{Event, TraceSink};

/// A flat opcode: one variant per specialized execution path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum DOp {
    /// Stop the machine (only meaningful at the halt vector).
    Halt,
    /// `a ← imm`.
    Li,
    /// `a ← b + imm` (32-bit wrapping, zero-extended).
    Addi,
    /// `a ← b`.
    Mov,
    /// `a ← b + c` at 32 bits.
    Add32,
    /// `a ← b - c` at 32 bits.
    Sub32,
    /// `a ← b * c` at 32 bits.
    Mul32,
    /// `a ← b & c` at 32 bits.
    And32,
    /// `a ← b | c` at 32 bits.
    Or32,
    /// `a ← b ^ c` at 32 bits.
    Xor32,
    /// `a ← (b == c)` on 32-bit operands.
    Eq32,
    /// `a ← (b != c)` on 32-bit operands.
    Ne32,
    /// `a ← (b < c)` unsigned, 32-bit operands.
    LtU32,
    /// `a ← (b <= c)` unsigned, 32-bit operands.
    LeU32,
    /// `a ← (b > c)` unsigned, 32-bit operands.
    GtU32,
    /// `a ← (b >= c)` unsigned, 32-bit operands.
    GeU32,
    /// `a ← (b < c)` signed, 32-bit operands.
    LtS32,
    /// `a ← (b <= c)` signed, 32-bit operands.
    LeS32,
    /// `a ← (b > c)` signed, 32-bit operands.
    GtS32,
    /// `a ← (b >= c)` signed, 32-bit operands.
    GeS32,
    /// Any other `Inst::Bin`: re-read the original instruction.
    BinSlow,
    /// Any `Inst::Un`: re-read the original instruction.
    UnSlow,
    /// `a ← mem8[b + imm]`.
    Load8,
    /// `a ← mem16[b + imm]`.
    Load16,
    /// `a ← mem32[b + imm]`.
    Load32,
    /// `a ← mem64[b + imm]`.
    Load64,
    /// `mem8[b + imm] ← a`.
    Store8,
    /// `mem16[b + imm] ← a`.
    Store16,
    /// `mem32[b + imm] ← a`.
    Store32,
    /// `mem64[b + imm] ← a`.
    Store64,
    /// Branch to `imm` if `a` is non-zero.
    Bnz,
    /// Branch to `imm` if `a` is zero.
    Bz,
    /// Unconditional jump to `imm`.
    Jmp,
    /// `pc ← a + imm` (register-indirect; code addresses translated).
    Jr,
    /// Direct call: `ra ← pc + 1; pc ← imm`.
    Call,
    /// Indirect call through register `a`.
    CallR,
    /// Trap into the front-end run-time system.
    SysYield,
}

/// One decoded instruction word: flat opcode, three register operands,
/// one 32-bit immediate. Eight bytes, so a cache line holds eight.
#[derive(Clone, Copy, Debug)]
pub struct DInst {
    /// Specialized opcode.
    pub op: DOp,
    /// First operand (destination register, or stored/tested source).
    pub a: u8,
    /// Second operand (source/base register).
    pub b: u8,
    /// Third operand (second source register).
    pub c: u8,
    /// Immediate: value, byte offset, or target instruction index.
    pub imm: u32,
}

/// The pre-decoded form of a whole [`VmProgram`]: `insts[pc]` is the
/// lowering of `program.code[pc]`.
#[derive(Debug)]
pub struct DecodedCode {
    /// The dense instruction array, index-aligned with the source code.
    pub insts: Vec<DInst>,
}

fn load_op(w: Width) -> DOp {
    match w {
        Width::W8 => DOp::Load8,
        Width::W16 => DOp::Load16,
        Width::W32 => DOp::Load32,
        Width::W64 => DOp::Load64,
    }
}

fn store_op(w: Width) -> DOp {
    match w {
        Width::W8 => DOp::Store8,
        Width::W16 => DOp::Store16,
        Width::W32 => DOp::Store32,
        Width::W64 => DOp::Store64,
    }
}

/// The specialized opcode for an infallible 32-bit binary operator, if
/// one exists.
fn bin32_op(op: BinOp) -> Option<DOp> {
    Some(match op {
        BinOp::Add => DOp::Add32,
        BinOp::Sub => DOp::Sub32,
        BinOp::Mul => DOp::Mul32,
        BinOp::And => DOp::And32,
        BinOp::Or => DOp::Or32,
        BinOp::Xor => DOp::Xor32,
        BinOp::Eq => DOp::Eq32,
        BinOp::Ne => DOp::Ne32,
        BinOp::LtU => DOp::LtU32,
        BinOp::LeU => DOp::LeU32,
        BinOp::GtU => DOp::GtU32,
        BinOp::GeU => DOp::GeU32,
        BinOp::LtS => DOp::LtS32,
        BinOp::LeS => DOp::LeS32,
        BinOp::GtS => DOp::GtS32,
        BinOp::GeS => DOp::GeS32,
        _ => return None,
    })
}

impl DecodedCode {
    /// Lowers the whole instruction stream. Pure function of the
    /// program; runs once per execution engine, not per step.
    pub fn decode(program: &VmProgram) -> DecodedCode {
        let insts = program.code.iter().map(decode_inst).collect();
        DecodedCode { insts }
    }
}

fn decode_inst(inst: &Inst) -> DInst {
    let d = |op, a, b, c, imm| DInst { op, a, b, c, imm };
    match *inst {
        Inst::Halt => d(DOp::Halt, 0, 0, 0, 0),
        Inst::Li { rd, imm } => d(DOp::Li, rd, 0, 0, imm),
        Inst::Addi { rd, rs, imm } => d(DOp::Addi, rd, rs, 0, imm as u32),
        Inst::Mov { rd, rs } => d(DOp::Mov, rd, rs, 0, 0),
        Inst::Bin { op, w, rd, ra, rb } => match (w, bin32_op(op)) {
            (Width::W32, Some(fast)) => d(fast, rd, ra, rb, 0),
            _ => d(DOp::BinSlow, rd, ra, rb, 0),
        },
        Inst::Un {
            op: _,
            w: _,
            rd,
            ra,
        } => d(DOp::UnSlow, rd, ra, 0, 0),
        Inst::Load { w, rd, rb, off } => d(load_op(w), rd, rb, 0, off as u32),
        Inst::Store { w, rs, rb, off } => d(store_op(w), rs, rb, 0, off as u32),
        Inst::Bnz { rs, target } => d(DOp::Bnz, rs, 0, 0, target),
        Inst::Bz { rs, target } => d(DOp::Bz, rs, 0, 0, target),
        Inst::Jmp { target } => d(DOp::Jmp, 0, 0, 0, target),
        Inst::Jr { rs, off } => d(DOp::Jr, rs, 0, 0, off as u32),
        Inst::Call { target } => d(DOp::Call, 0, 0, 0, target),
        Inst::CallR { rs } => d(DOp::CallR, rs, 0, 0, 0),
        Inst::SysYield => d(DOp::SysYield, 0, 0, 0, 0),
    }
}

const M32: u64 = 0xffff_ffff;

fn s32(v: u64) -> i64 {
    sign_extend(v, Width::W32)
}

impl<S: TraceSink> VmMachine<'_, S> {
    /// Runs up to `fuel` instructions over the decoded stream. Exactly
    /// the semantics (status transitions, costs, error strings) of the
    /// original [`VmMachine::run`]/`step` loop, but with the program
    /// counter and cost counters held in locals and a single flat match
    /// per retired instruction.
    pub(crate) fn run_decoded(&mut self, decoded: &DecodedCode, fuel: u64) -> VmStatus {
        if matches!(self.status, VmStatus::OutOfFuel) {
            self.status = VmStatus::Running;
        }
        if !matches!(self.status, VmStatus::Running) {
            return self.status.clone();
        }
        let prog = self.program;
        let code = decoded.insts.as_slice();
        let mut pc = self.pc;
        let mut cost = self.cost;
        // Register operands come from the assembler, which only emits
        // indices below NUM_REGS (= 64, a power of two): masking is a
        // no-op that lets the compiler drop the bounds checks on the
        // register file.
        const RM: usize = crate::isa::regs::NUM_REGS - 1;
        macro_rules! r {
            ($i:expr) => {
                self.regs[$i as usize & RM]
            };
        }
        // Every exit below must flush `pc` and `cost` back into the
        // machine; this macro keeps the arms honest.
        macro_rules! flush {
            ($status:expr) => {{
                self.pc = pc;
                self.cost = cost;
                self.status = $status;
                return self.status.clone();
            }};
        }
        // Governor checks at the same transition points as `step`:
        // mapped-page bytes after a store, the stack floor at a call.
        macro_rules! govern_mem {
            () => {
                if let Some(g) = self.governor {
                    let bytes = self.mem.mapped_bytes();
                    if let Some(trip) = g.check_memory(bytes) {
                        self.pc = pc;
                        self.cost = cost;
                        self.trip_limit(trip, bytes as u64);
                        return self.status.clone();
                    }
                }
            };
        }
        macro_rules! govern_sp {
            () => {
                if let Some(g) = self.governor {
                    let sp = self.regs[regs::SP as usize];
                    if let Some(trip) = g.check_sp(sp) {
                        self.pc = pc;
                        self.cost = cost;
                        self.trip_limit(trip, sp);
                        return self.status.clone();
                    }
                }
            };
        }
        for _ in 0..fuel {
            let Some(&DInst { op, a, b, c, imm }) = code.get(pc as usize) else {
                flush!(VmStatus::Error(format!("pc {pc} out of range")));
            };
            cost.instructions += 1;
            let mut next = pc + 1;
            match op {
                DOp::Halt => {
                    if pc == 0 {
                        let results = (0..self.expected_results)
                            .map(|i| self.regs[regs::ARG0 as usize + i])
                            .collect();
                        flush!(VmStatus::Halted(results));
                    }
                    flush!(VmStatus::Error(format!(
                        "abnormal top-level return (pc {pc})"
                    )));
                }
                DOp::Li => r!(a) = u64::from(imm),
                DOp::Addi => {
                    let v = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = u64::from(v);
                }
                DOp::Mov => r!(a) = r!(b),
                DOp::Add32 => {
                    r!(a) = r!(b).wrapping_add(r!(c)) & M32;
                }
                DOp::Sub32 => {
                    r!(a) = r!(b).wrapping_sub(r!(c)) & M32;
                }
                DOp::Mul32 => {
                    r!(a) = r!(b).wrapping_mul(r!(c)) & M32;
                }
                DOp::And32 => {
                    r!(a) = r!(b) & r!(c) & M32;
                }
                DOp::Or32 => {
                    r!(a) = (r!(b) | r!(c)) & M32;
                }
                DOp::Xor32 => {
                    r!(a) = (r!(b) ^ r!(c)) & M32;
                }
                DOp::Eq32 => {
                    r!(a) = u64::from(r!(b) & M32 == r!(c) & M32);
                }
                DOp::Ne32 => {
                    r!(a) = u64::from(r!(b) & M32 != r!(c) & M32);
                }
                DOp::LtU32 => {
                    r!(a) = u64::from(r!(b) & M32 < r!(c) & M32);
                }
                DOp::LeU32 => {
                    r!(a) = u64::from(r!(b) & M32 <= r!(c) & M32);
                }
                DOp::GtU32 => {
                    r!(a) = u64::from(r!(b) & M32 > r!(c) & M32);
                }
                DOp::GeU32 => {
                    r!(a) = u64::from(r!(b) & M32 >= r!(c) & M32);
                }
                DOp::LtS32 => {
                    r!(a) = u64::from(s32(r!(b)) < s32(r!(c)));
                }
                DOp::LeS32 => {
                    r!(a) = u64::from(s32(r!(b)) <= s32(r!(c)));
                }
                DOp::GtS32 => {
                    r!(a) = u64::from(s32(r!(b)) > s32(r!(c)));
                }
                DOp::GeS32 => {
                    r!(a) = u64::from(s32(r!(b)) >= s32(r!(c)));
                }
                DOp::BinSlow => {
                    // Rare/fallible operator: defer to the canonical
                    // evaluator on the original instruction word.
                    let Inst::Bin { op, w, rd, ra, rb } = prog.code[pc as usize] else {
                        unreachable!("decode preserved instruction indices");
                    };
                    match op.eval(w, r!(ra), r!(rb)) {
                        Ok((v, _)) => r!(rd) = v,
                        Err(e) => flush!(VmStatus::Error(format!(
                            "fault at pc {pc}{}: {e}",
                            prog.locate(pc)
                        ))),
                    }
                }
                DOp::UnSlow => {
                    let Inst::Un { op, w, rd, ra } = prog.code[pc as usize] else {
                        unreachable!("decode preserved instruction indices");
                    };
                    let (v, _) = op.eval(w, r!(ra));
                    r!(rd) = v;
                }
                DOp::Load8 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W8, addr);
                }
                DOp::Load16 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W16, addr);
                }
                DOp::Load32 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W32, addr);
                }
                DOp::Load64 => {
                    cost.loads += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    r!(a) = self.mem.read_wide(Width::W64, addr);
                }
                DOp::Store8 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W8, addr, r!(a));
                    govern_mem!();
                }
                DOp::Store16 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W16, addr, r!(a));
                    govern_mem!();
                }
                DOp::Store32 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W32, addr, r!(a));
                    govern_mem!();
                }
                DOp::Store64 => {
                    cost.stores += 1;
                    let addr = (r!(b) as u32).wrapping_add(imm);
                    self.mem.write_wide(Width::W64, addr, r!(a));
                    govern_mem!();
                }
                DOp::Bnz => {
                    cost.branches += 1;
                    if r!(a) != 0 {
                        next = imm;
                    }
                }
                DOp::Bz => {
                    cost.branches += 1;
                    if r!(a) == 0 {
                        next = imm;
                    }
                }
                DOp::Jmp => {
                    cost.branches += 1;
                    if S::ENABLED {
                        self.emit_jmp_site(cost.total(), pc, imm);
                    }
                    next = imm;
                }
                DOp::Jr => {
                    cost.branches += 1;
                    match self.code_target(r!(a)) {
                        Ok(base) => {
                            next = base.wrapping_add(imm);
                            if S::ENABLED {
                                self.emit_jr_site(cost.total(), pc, next);
                            }
                        }
                        Err(e) => flush!(VmStatus::Error(format!("{e}{}", prog.locate(pc)))),
                    }
                }
                DOp::Call => {
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!();
                    if S::ENABLED {
                        let e = Event::Call {
                            caller: name_at(prog, pc),
                            callee: name_at(prog, imm),
                        };
                        self.sink.event(cost.total(), e);
                    }
                    self.regs[regs::RA as usize] = u64::from(pc + 1);
                    next = imm;
                }
                DOp::CallR => {
                    cost.branches += 1;
                    cost.calls += 1;
                    govern_sp!();
                    match self.code_target(r!(a)) {
                        Ok(t) => {
                            if S::ENABLED {
                                let e = Event::Call {
                                    caller: name_at(prog, pc),
                                    callee: name_at(prog, t),
                                };
                                self.sink.event(cost.total(), e);
                            }
                            self.regs[regs::RA as usize] = u64::from(pc + 1);
                            next = t;
                        }
                        Err(e) => flush!(VmStatus::Error(format!("{e}{}", prog.locate(pc)))),
                    }
                }
                DOp::SysYield => {
                    if S::ENABLED {
                        let e = Event::Yield {
                            code: self.regs[regs::ARG0 as usize],
                        };
                        self.sink.event(cost.total(), e);
                    }
                    pc += 1;
                    flush!(VmStatus::Suspended);
                }
            }
            pc = next;
        }
        self.pc = pc;
        self.cost = cost;
        self.status = VmStatus::OutOfFuel;
        self.status.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn program(src: &str) -> VmProgram {
        compile(&build_program(&parse_module(src).unwrap()).unwrap()).unwrap()
    }

    /// The lowering is index-preserving and total.
    #[test]
    fn decode_is_index_aligned() {
        let vp = program("f(bits32 n) { bits32 s; s = n + 1; return (s); }");
        let d = DecodedCode::decode(&vp);
        assert_eq!(d.insts.len(), vp.code.len());
        for (i, inst) in vp.code.iter().enumerate() {
            let di = d.insts[i];
            match inst {
                Inst::Jmp { target } => assert_eq!((di.op, di.imm), (DOp::Jmp, *target)),
                Inst::Call { target } => assert_eq!((di.op, di.imm), (DOp::Call, *target)),
                Inst::SysYield => assert_eq!(di.op, DOp::SysYield),
                _ => {}
            }
        }
    }

    /// Both engines retire identical instruction streams: same result,
    /// same pc, same cost breakdown.
    #[test]
    fn decoded_run_matches_step_loop_exactly() {
        let src = r#"
            f(bits32 n) {
                bits32 s, p;
                if n == 1 { return (1, 1); }
                else { s, p = f(n - 1); return (s + n, p * n); }
            }
        "#;
        let vp = program(src);
        let mut old = VmMachine::new(&vp);
        let mut new = VmMachine::new_decoded(&vp);
        old.start("f", &[10], 2);
        new.start("f", &[10], 2);
        assert_eq!(old.run(1_000_000), new.run(1_000_000));
        assert_eq!(old.pc, new.pc);
        assert_eq!(old.cost, new.cost);
        assert_eq!(old.regs, new.regs);
    }

    /// Fuel exhaustion and resumption agree step-for-step.
    #[test]
    fn decoded_fuel_boundary_matches() {
        let src = "f(bits32 n) { bits32 s; s = 0; loop: if n == 0 { return (s); } else { s = s + n; n = n - 1; goto loop; } }";
        let vp = program(src);
        for fuel in [1u64, 3, 7, 50] {
            let mut old = VmMachine::new(&vp);
            let mut new = VmMachine::new_decoded(&vp);
            old.start("f", &[100], 1);
            new.start("f", &[100], 1);
            loop {
                let a = old.run(fuel);
                let b = new.run(fuel);
                assert_eq!(a, b, "fuel slice {fuel}");
                assert_eq!((old.pc, old.cost), (new.pc, new.cost));
                if !matches!(a, VmStatus::OutOfFuel) {
                    break;
                }
            }
        }
    }

    /// Fault reporting (strings included) is inherited, not duplicated.
    #[test]
    fn decoded_faults_match_old_engine() {
        let vp = program("f(bits32 a, bits32 b) { return (a / b); }");
        let mut old = VmMachine::new(&vp);
        let mut new = VmMachine::new_decoded(&vp);
        old.start("f", &[1, 0], 1);
        new.start("f", &[1, 0], 1);
        assert_eq!(old.run(10_000), new.run(10_000));
        assert!(matches!(new.status(), VmStatus::Error(e) if e.contains("division by zero")));
    }

    const DEEP: &str = r#"
        f(bits32 n) {
            bits32 r;
            if n == 0 { return (0); }
            else { r = f(n - 1); return (r + 1); }
        }
    "#;

    /// Runs `f(1000)` governed on both engines and asserts they trip at
    /// the same transition with the same cost breakdown.
    fn both_governed(src: &str, g: cmm_chaos::ResourceGovernor) -> VmStatus {
        let vp = program(src);
        let mut old = VmMachine::new(&vp);
        let mut new = VmMachine::new_decoded(&vp);
        old.set_governor(g);
        new.set_governor(g);
        old.start("f", &[1000], 1);
        new.start("f", &[1000], 1);
        let a = old.run(100_000_000);
        let b = new.run(100_000_000);
        assert_eq!(a, b, "governed status diverged");
        assert_eq!(
            (old.pc, old.cost),
            (new.pc, new.cost),
            "governed trip point diverged"
        );
        b
    }

    #[test]
    fn governor_stack_floor_trips_identically_on_both_engines() {
        // Find the floor empirically: run once ungoverned, note how far
        // SP descends, then set a floor strictly inside that range.
        let vp = program(DEEP);
        let mut probe = VmMachine::new(&vp);
        let sp0 = probe.reg(regs::SP);
        probe.start("f", &[1000], 1);
        let mut min_sp = sp0;
        while matches!(probe.status(), VmStatus::Running) {
            probe.step();
            min_sp = min_sp.min(probe.reg(regs::SP));
        }
        assert!(matches!(probe.status(), VmStatus::Halted(_)));
        let floor = (sp0 + min_sp) / 2;
        let g = cmm_chaos::ResourceGovernor {
            stack_floor: Some(floor),
            ..cmm_chaos::ResourceGovernor::unlimited()
        };
        match both_governed(DEEP, g) {
            VmStatus::Error(e) => assert!(e.contains("stack-depth"), "unexpected error {e:?}"),
            other => panic!("expected a stack-floor trip, got {other:?}"),
        }
    }

    #[test]
    fn governor_memory_limit_trips_identically_on_both_engines() {
        // Each store lands on a fresh page, so mapped bytes climb by a
        // page per iteration until the cap trips.
        let src = r#"
            data base { bits32 0; }
            f(bits32 n) {
                bits32 i;
                i = 0;
              loop:
                if i == n { return (i); }
                else { bits32[base + i * 4096] = i; i = i + 1; goto loop; }
            }
        "#;
        let g = cmm_chaos::ResourceGovernor {
            max_memory_bytes: Some(16 * 4096),
            ..cmm_chaos::ResourceGovernor::unlimited()
        };
        match both_governed(src, g) {
            VmStatus::Error(e) => assert!(e.contains("memory"), "unexpected error {e:?}"),
            other => panic!("expected a memory trip, got {other:?}"),
        }
    }

    #[test]
    fn governor_fuel_slice_clips_each_run_call() {
        let g = cmm_chaos::ResourceGovernor {
            fuel_slice: Some(10),
            ..cmm_chaos::ResourceGovernor::unlimited()
        };
        assert_eq!(both_governed(DEEP, g), VmStatus::OutOfFuel);
    }
}
