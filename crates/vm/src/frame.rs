//! Frame layouts and the tables the back end deposits for the run-time
//! system.
//!
//! §2: run-time stack unwinding "restores the values of callee-saves
//! registers as it unwinds the stack, typically by interpreting tables
//! deposited by the backend". [`ProcMeta`] and [`CallSiteMeta`] are those
//! tables.

use cmm_ir::Name;
use std::collections::HashMap;

/// Where a C-- variable lives in generated code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Loc {
    /// A caller-saves register (variable not live across any call).
    CallerReg(u8),
    /// A callee-saves register (variable promoted by a `CalleeSaves`
    /// node; preserved by callees and restored by stack walking, but
    /// killed by stack cutting).
    CalleeReg(u8),
    /// A slot in the activation record, as a byte offset from the frame
    /// base (variables live across calls that may cut, or register-file
    /// overflow).
    Frame(u32),
}

/// Per-procedure layout and unwind table.
#[derive(Clone, Debug)]
pub struct ProcMeta {
    /// The procedure's name.
    pub name: Name,
    /// Entry instruction index.
    pub entry: u32,
    /// One past the last instruction of the procedure.
    pub end: u32,
    /// Frame size in bytes.
    pub frame_bytes: u32,
    /// Byte offset of the saved return address.
    pub ra_offset: u32,
    /// Saved callee-saves registers: (register, byte offset).
    pub saved_callee: Vec<(u8, u32)>,
    /// Continuation slots: (name, byte offset of the 2-word (pc, sp)
    /// pair).
    pub cont_slots: Vec<(Name, u32)>,
    /// Where each variable lives.
    pub var_locs: HashMap<Name, Loc>,
    /// Number of formal parameters.
    pub arity: usize,
}

impl ProcMeta {
    /// True if `pc` lies within this procedure's code.
    pub fn contains(&self, pc: u32) -> bool {
        pc >= self.entry && pc < self.end
    }
}

/// Per-call-site unwind information, keyed by the return address the
/// call leaves in the link register (which is also the base of the
/// branch table, if any).
#[derive(Clone, Debug, Default)]
pub struct CallSiteMeta {
    /// Index of the containing procedure in `VmProgram::proc_meta`.
    pub proc: usize,
    /// Number of `also returns to` alternates (= branch-table length).
    pub alternates: u32,
    /// Code addresses of the `also unwinds to` continuations, in
    /// annotation order (the order `SetUnwindCont` indexes).
    pub unwind_pcs: Vec<u32>,
    /// Parameter counts of the unwind continuations.
    pub unwind_params: Vec<usize>,
    /// Whether the call site is annotated `also aborts`.
    pub aborts: bool,
    /// Image addresses of the `also descriptor` data blocks.
    pub descriptors: Vec<u32>,
    /// Results the normal return delivers (parameter count of the
    /// normal-return point).
    pub normal_params: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_meta_contains() {
        let m = ProcMeta {
            name: Name::from("f"),
            entry: 10,
            end: 20,
            frame_bytes: 16,
            ra_offset: 12,
            saved_callee: vec![],
            cont_slots: vec![],
            var_locs: HashMap::new(),
            arity: 0,
        };
        assert!(m.contains(10));
        assert!(m.contains(19));
        assert!(!m.contains(20));
        assert!(!m.contains(9));
    }
}
