//! The simulated instruction set.
//!
//! A RISC-flavoured 32-bit machine: a large register file, byte-addressed
//! little-endian memory, and one instruction per line of generated code.
//! Return addresses are instruction indices held in a link register, so
//! `Jr { rs, off }` directly expresses both ordinary returns (`jr ra+0`)
//! and the branch-table returns of Figures 3/4 (`jr ra+i`).

use cmm_ir::{BinOp, UnOp, Width};

/// A register number.
pub type Reg = u8;

/// Register conventions (a calling convention private to the C--
/// implementation, as §4.2 puts it).
pub mod regs {
    use super::Reg;

    /// Always zero.
    pub const ZERO: Reg = 0;
    /// Scratch registers for expression evaluation (caller-saved, never
    /// live across nodes).
    pub const SCRATCH0: Reg = 1;
    /// Number of scratch registers.
    pub const NUM_SCRATCH: u8 = 7;
    /// First argument/result register.
    pub const ARG0: Reg = 8;
    /// Number of argument/result registers.
    pub const NUM_ARGS: u8 = 8;
    /// First caller-saves allocatable register.
    pub const CALLER0: Reg = 16;
    /// Number of caller-saves allocatable registers.
    pub const NUM_CALLER: u8 = 8;
    /// First callee-saves allocatable register.
    pub const CALLEE0: Reg = 24;
    /// Number of callee-saves allocatable registers.
    pub const NUM_CALLEE: u8 = 8;
    /// Stack pointer.
    pub const SP: Reg = 32;
    /// Link (return-address) register.
    pub const RA: Reg = 33;
    /// First register for global C-- registers (`register bits32 ...`).
    pub const GLOBAL0: Reg = 34;
    /// Total register-file size.
    pub const NUM_REGS: usize = 64;
}

/// One machine instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// Stop the machine (only at the halt vector).
    Halt,
    /// `rd ← imm` (32-bit immediate).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: u32,
    },
    /// `rd ← rs + imm` (address arithmetic; 32-bit wrapping).
    Addi {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Signed immediate.
        imm: i32,
    },
    /// `rd ← rs`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd ← ra ⊕ rb` at the given width.
    Bin {
        /// Operator.
        op: BinOp,
        /// Operand width.
        w: Width,
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// `rd ← op ra` at the given width.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand width.
        w: Width,
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
    },
    /// `rd ← memw[rb + off]`.
    Load {
        /// Access width.
        w: Width,
        /// Destination.
        rd: Reg,
        /// Base register.
        rb: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `memw[rb + off] ← rs`.
    Store {
        /// Access width.
        w: Width,
        /// Value to store.
        rs: Reg,
        /// Base register.
        rb: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Branch to `target` if `rs` is non-zero.
    Bnz {
        /// Condition register.
        rs: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Branch to `target` if `rs` is zero.
    Bz {
        /// Condition register.
        rs: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// `pc ← rs + off` — register-indirect jump; the form of every
    /// return, including branch-table returns.
    Jr {
        /// Register holding an instruction index (or an image code
        /// address, which the machine translates).
        rs: Reg,
        /// Slot offset in instructions.
        off: i32,
    },
    /// Direct call: `ra ← pc + 1; pc ← target`.
    Call {
        /// Target instruction index.
        target: u32,
    },
    /// Indirect call through a register (image code addresses are
    /// translated).
    CallR {
        /// Register holding the target.
        rs: Reg,
    },
    /// Trap into the front-end run-time system (the compiled form of a
    /// call to `yield` reaching its suspension point).
    SysYield,
}

impl Inst {
    /// True for control-transfer instructions (the cost model counts
    /// them as branches).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Bnz { .. }
                | Inst::Bz { .. }
                | Inst::Jmp { .. }
                | Inst::Jr { .. }
                | Inst::Call { .. }
                | Inst::CallR { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions_do_not_overlap() {
        let ranges = [
            (regs::SCRATCH0, regs::NUM_SCRATCH),
            (regs::ARG0, regs::NUM_ARGS),
            (regs::CALLER0, regs::NUM_CALLER),
            (regs::CALLEE0, regs::NUM_CALLEE),
        ];
        for (i, &(s1, n1)) in ranges.iter().enumerate() {
            for &(s2, n2) in &ranges[i + 1..] {
                assert!(
                    s1 + n1 <= s2 || s2 + n2 <= s1,
                    "overlap: {s1}+{n1} vs {s2}+{n2}"
                );
            }
        }
        assert!((regs::SP as usize) < regs::NUM_REGS);
    }

    #[test]
    fn branch_classification() {
        assert!(Inst::Jmp { target: 0 }.is_branch());
        assert!(Inst::Jr {
            rs: regs::RA,
            off: 2
        }
        .is_branch());
        assert!(!Inst::Li { rd: 1, imm: 0 }.is_branch());
    }
}
