//! The run-time interface over the simulated machine.
//!
//! This is the VM-level counterpart of `cmm-rt`: the same Table 1
//! operations, implemented the way a real C-- run-time system would be —
//! by *interpreting the tables deposited by the back end* (§2):
//! per-procedure frame layouts for walking and callee-saves restoration,
//! and per-call-site tables for `also unwinds to` continuations,
//! `also aborts`, and descriptors.
//!
//! Because the walker runs in Rust rather than in simulated code, each
//! operation charges a documented instruction-equivalent cost to the
//! machine ([`costs`]), so benches measure the interpretive overhead the
//! paper attributes to run-time stack unwinding.

use crate::codegen::VmProgram;
use crate::frame::CallSiteMeta;
use crate::isa::regs;
use crate::machine::{VmMachine, VmStatus};
use cmm_chaos::{ChaosOp, FaultPlan, InjectedFault};
use cmm_ir::Name;
use cmm_obs::{Event, NopSink, ResumeKind, RtsOp, TraceSink};

/// Instruction-equivalent charges for the interpretive dispatcher.
pub mod costs {
    /// `FirstActivation`: locate the yield frame and read the caller's
    /// return address.
    pub const FIRST_ACTIVATION: u64 = 10;
    /// `NextActivation`: table lookup, frame-size add, saved-ra load,
    /// plus one load per callee-saves register restored.
    pub const NEXT_ACTIVATION: u64 = 12;
    /// Per callee-saves register restored during a walk step.
    pub const RESTORE_REG: u64 = 1;
    /// `GetDescriptor`: table lookup and bounds check.
    pub const GET_DESCRIPTOR: u64 = 5;
    /// `SetActivation`/`SetUnwindCont`/`FindContParam`/`Resume`
    /// combined bookkeeping.
    pub const RESUME: u64 = 12;
    /// `SetCutToCont` + `Resume`: the two loads of the (pc, sp) pair
    /// plus bookkeeping.
    pub const CUT_RESUME: u64 = 8;
}

/// An activation handle over the simulated stack.
#[derive(Clone, Debug)]
pub struct VmActivation {
    /// The return address identifying the call site where the
    /// activation is suspended (the key into the call-site tables).
    pub site: u32,
    /// The activation's frame base (its `sp` while executing).
    pub base: u32,
    /// Register view with callee-saves restored up to this activation.
    pub ctx: Vec<u64>,
    /// Whether every activation walked over so far may be discarded
    /// (all suspended at `also aborts` call sites).
    pub discard_ok: bool,
}

#[derive(Clone, Debug)]
enum VmPending {
    Activation {
        act: VmActivation,
        unwind: Option<usize>,
        params: Vec<u64>,
    },
    Cut {
        k: u32,
        params: Vec<u64>,
    },
}

/// A thread of simulated execution plus the run-time interface.
///
/// Generic over a [`TraceSink`] like the machine it drives: each
/// Table 1 operation below emits one [`RtsOp`] event into the machine's
/// sink, with payloads mirroring `cmm-rt`'s `Thread` exactly so the
/// cross-engine exception projection compares equal.
#[derive(Debug)]
pub struct VmThread<'p, S: TraceSink = NopSink> {
    /// The machine.
    pub machine: VmMachine<'p, S>,
    pending: Option<VmPending>,
    chaos: Option<Box<FaultPlan>>,
}

impl<'p> VmThread<'p> {
    /// Creates a thread over a compiled program.
    pub fn new(program: &'p VmProgram) -> VmThread<'p> {
        VmThread::with_sink(program, NopSink)
    }

    /// Creates a thread whose machine runs the pre-decoded engine (see
    /// [`crate::decode`]). The runtime interface is engine-agnostic: it
    /// reads registers, memory, and pc, all of which the two engines
    /// maintain identically.
    pub fn new_decoded(program: &'p VmProgram) -> VmThread<'p> {
        VmThread::with_sink_decoded(program, NopSink)
    }

    /// Creates a thread whose machine runs the fused engine (see
    /// [`crate::fuse`]). The runtime interface is engine-agnostic.
    pub fn new_fused(program: &'p VmProgram) -> VmThread<'p> {
        VmThread::with_sink_fused(program, NopSink)
    }
}

impl<'p, S: TraceSink> VmThread<'p, S> {
    /// Creates a tracing thread (see [`VmThread::new`]).
    pub fn with_sink(program: &'p VmProgram, sink: S) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink(program, sink),
            pending: None,
            chaos: None,
        }
    }

    /// Creates a tracing thread over the pre-decoded engine (see
    /// [`VmThread::new_decoded`]).
    pub fn with_sink_decoded(program: &'p VmProgram, sink: S) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_decoded(program, sink),
            pending: None,
            chaos: None,
        }
    }

    /// Creates a tracing thread over a shared, already decoded stream
    /// (see [`VmMachine::new_shared_decoded`]): the lowering is paid
    /// once — e.g. by `cmm-pool`'s compilation cache — and every thread
    /// after that reuses it.
    pub fn with_sink_shared_decoded(
        program: &'p VmProgram,
        decoded: std::sync::Arc<crate::decode::DecodedCode>,
        sink: S,
    ) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_shared_decoded(program, decoded, sink),
            pending: None,
            chaos: None,
        }
    }

    /// Creates a tracing thread over the fused engine (see
    /// [`VmThread::new_fused`]).
    pub fn with_sink_fused(program: &'p VmProgram, sink: S) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_fused(program, sink),
            pending: None,
            chaos: None,
        }
    }

    /// Creates a tracing thread over a shared, already fused stream
    /// (see [`VmMachine::new_shared_fused`]).
    pub fn with_sink_shared_fused(
        program: &'p VmProgram,
        fused: std::sync::Arc<crate::fuse::FusedCode>,
        sink: S,
    ) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_shared_fused(program, fused, sink),
            pending: None,
            chaos: None,
        }
    }

    /// [`VmThread::with_sink`] with the machine's heap structures drawn
    /// from `arena` (see [`VmMachine::with_sink_in`]).
    pub fn with_sink_in(
        program: &'p VmProgram,
        sink: S,
        arena: &mut crate::machine::VmArena,
    ) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_in(program, sink, arena),
            pending: None,
            chaos: None,
        }
    }

    /// [`VmThread::with_sink_shared_decoded`] with the machine's heap
    /// structures drawn from `arena` (see [`VmMachine::with_sink_in`]).
    pub fn with_sink_shared_decoded_in(
        program: &'p VmProgram,
        decoded: std::sync::Arc<crate::decode::DecodedCode>,
        sink: S,
        arena: &mut crate::machine::VmArena,
    ) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_shared_decoded_in(program, decoded, sink, arena),
            pending: None,
            chaos: None,
        }
    }

    /// [`VmThread::with_sink_shared_fused`] with the machine's heap
    /// structures drawn from `arena` (see [`VmMachine::with_sink_in`]).
    pub fn with_sink_shared_fused_in(
        program: &'p VmProgram,
        fused: std::sync::Arc<crate::fuse::FusedCode>,
        sink: S,
        arena: &mut crate::machine::VmArena,
    ) -> VmThread<'p, S> {
        VmThread {
            machine: VmMachine::with_sink_shared_fused_in(program, fused, sink, arena),
            pending: None,
            chaos: None,
        }
    }

    /// Consumes the thread, returning its machine — e.g. to bank the
    /// machine's allocations via [`VmMachine::recycle_into`] once the
    /// run is over.
    pub fn into_machine(self) -> VmMachine<'p, S> {
        self.machine
    }

    /// Installs a `cmm-chaos` fault plan; each Table 1 operation
    /// consults it before doing any real work, exactly like `cmm-rt`'s
    /// `Thread`, so both families fail at the same schedule points.
    pub fn set_chaos(&mut self, plan: FaultPlan) {
        self.chaos = Some(Box::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn chaos(&self) -> Option<&FaultPlan> {
        self.chaos.as_deref()
    }

    /// Consults the fault plan for `op`, emitting a `chaos` trace event
    /// when a scheduled fault trips.
    fn trip(&mut self, op: ChaosOp) -> Option<InjectedFault> {
        let fault = self.chaos.as_mut()?.trip(op)?;
        if S::ENABLED {
            self.machine.emit(Event::Chaos {
                what: format!("fault {fault}"),
            });
        }
        Some(fault)
    }

    /// The procedure owning a call-site key, for event payloads.
    fn site_proc(&self, site: u32) -> Option<Name> {
        self.site_meta(site)
            .map(|s| self.program().proc_meta[s.proc].name.clone())
    }

    /// Starts a procedure (see [`VmMachine::start`]).
    pub fn start(&mut self, proc: &str, args: &[u64], expected_results: usize) {
        self.machine.start(proc, args, expected_results);
    }

    /// Runs generated code.
    pub fn run(&mut self, fuel: u64) -> VmStatus {
        self.machine.run(fuel)
    }

    fn program(&self) -> &'p VmProgram {
        self.machine.program
    }

    fn site_meta(&self, site: u32) -> Option<&'p CallSiteMeta> {
        self.program().call_sites.get(&site)
    }

    /// `FirstActivation`: the activation that called into the run-time
    /// system. `None` unless suspended.
    pub fn first_activation(&mut self) -> Option<VmActivation> {
        if self.trip(ChaosOp::FirstActivation).is_some() {
            return None;
        }
        let r = self.first_activation_inner();
        if S::ENABLED {
            let proc = r.as_ref().and_then(|a| self.site_proc(a.site));
            self.machine
                .emit(Event::Rts(RtsOp::FirstActivation { proc }));
        }
        r
    }

    fn first_activation_inner(&mut self) -> Option<VmActivation> {
        if !matches!(self.machine.status(), VmStatus::Suspended) {
            return None;
        }
        self.machine.cost.runtime_instructions += costs::FIRST_ACTIVATION;
        // pc is inside the yield stub; its frame holds the caller's ra.
        let stub = self
            .program()
            .proc_at_pc(self.machine.pc.saturating_sub(1))?;
        let sp = self.machine.reg(regs::SP) as u32;
        let site = self.machine.mem.read32(sp + stub.ra_offset);
        let base = sp + stub.frame_bytes;
        Some(VmActivation {
            site,
            base,
            ctx: self.machine.regs.to_vec(),
            discard_ok: true,
        })
    }

    /// `NextActivation`: move to the caller, restoring its callee-saves
    /// registers into the context. Returns `false` at the stack bottom.
    pub fn next_activation(&mut self, a: &mut VmActivation) -> bool {
        if self.trip(ChaosOp::NextActivation).is_some() {
            return false;
        }
        let moved = self.next_activation_inner(a);
        if S::ENABLED {
            let proc = if moved { self.site_proc(a.site) } else { None };
            self.machine
                .emit(Event::Rts(RtsOp::NextActivation { moved, proc }));
        }
        moved
    }

    fn next_activation_inner(&mut self, a: &mut VmActivation) -> bool {
        self.machine.cost.runtime_instructions += costs::NEXT_ACTIVATION;
        let Some(site) = self.site_meta(a.site) else {
            return false;
        };
        let meta = &self.program().proc_meta[site.proc];
        let ra_next = self.machine.mem.read32(a.base + meta.ra_offset);
        if ra_next < 8 {
            return false; // halt vector: bottom of the stack
        }
        // Leaving this activation: it can only be discarded if its call
        // site aborts.
        a.discard_ok &= site.aborts;
        for &(reg, off) in &meta.saved_callee {
            self.machine.cost.runtime_instructions += costs::RESTORE_REG;
            a.ctx[reg as usize] = u64::from(self.machine.mem.read32(a.base + off));
        }
        a.base += meta.frame_bytes;
        a.site = ra_next;
        true
    }

    /// `GetDescriptor(a, n)`: the address of the n'th descriptor block
    /// attached to the activation's call site.
    pub fn get_descriptor(&mut self, a: &VmActivation, n: usize) -> Option<u32> {
        if self.trip(ChaosOp::GetDescriptor).is_some() {
            return None;
        }
        self.machine.cost.runtime_instructions += costs::GET_DESCRIPTOR;
        let addr = self
            .site_meta(a.site)
            .and_then(|s| s.descriptors.get(n).copied());
        if S::ENABLED {
            self.machine.emit(Event::Rts(RtsOp::GetDescriptor {
                index: n as u32,
                found: addr.is_some(),
            }));
        }
        addr
    }

    /// `SetActivation`: stage resumption with this activation topmost.
    ///
    /// # Errors
    ///
    /// Fails if the thread is not suspended or an activation being
    /// discarded is not suspended at an `also aborts` call site.
    pub fn set_activation(&mut self, a: &VmActivation) -> Result<(), String> {
        if let Some(fault) = self.trip(ChaosOp::SetActivation) {
            return Err(chaos_err(fault));
        }
        let r = self.set_activation_inner(a);
        if S::ENABLED {
            self.machine
                .emit(Event::Rts(RtsOp::SetActivation { ok: r.is_ok() }));
        }
        r
    }

    fn set_activation_inner(&mut self, a: &VmActivation) -> Result<(), String> {
        if !matches!(self.machine.status(), VmStatus::Suspended) {
            return Err("thread is not suspended".into());
        }
        if !a.discard_ok {
            return Err("an activation being discarded has no `also aborts` annotation".into());
        }
        let n = self.site_meta(a.site).map(|s| s.normal_params).unwrap_or(0);
        self.pending = Some(VmPending::Activation {
            act: a.clone(),
            unwind: None,
            params: vec![0; n],
        });
        Ok(())
    }

    /// `SetUnwindCont(t, n)`: resume by unwinding to the n'th
    /// `also unwinds to` continuation of the staged activation.
    ///
    /// # Errors
    ///
    /// Fails without a staged activation or with an out-of-range index.
    pub fn set_unwind_cont(&mut self, n: usize) -> Result<(), String> {
        if let Some(fault) = self.trip(ChaosOp::SetUnwindCont) {
            return Err(chaos_err(fault));
        }
        let r = self.set_unwind_cont_inner(n);
        if S::ENABLED {
            self.machine.emit(Event::Rts(RtsOp::SetUnwindCont {
                index: n as u32,
                ok: r.is_ok(),
            }));
        }
        r
    }

    fn set_unwind_cont_inner(&mut self, n: usize) -> Result<(), String> {
        let Some(VmPending::Activation { act, .. }) = self.pending.as_ref() else {
            return Err("SetUnwindCont before SetActivation".into());
        };
        let site = self
            .program()
            .call_sites
            .get(&act.site)
            .ok_or_else(|| "unknown call site".to_string())?;
        if n >= site.unwind_pcs.len() {
            return Err(format!(
                "call site has {} unwind continuations; {n} requested",
                site.unwind_pcs.len()
            ));
        }
        let count = site.unwind_params[n];
        let Some(VmPending::Activation { unwind, params, .. }) = self.pending.as_mut() else {
            unreachable!("pending checked above");
        };
        *unwind = Some(n);
        *params = vec![0; count];
        Ok(())
    }

    /// `SetCutToCont(t, k)`: resume by cutting the stack to the
    /// continuation value `k` (the address of its `(pc, sp)` pair).
    ///
    /// # Errors
    ///
    /// Fails if the thread is not suspended.
    pub fn set_cut_to_cont(&mut self, k: u32) -> Result<(), String> {
        if let Some(fault) = self.trip(ChaosOp::SetCutToCont) {
            return Err(chaos_err(fault));
        }
        let r = self.set_cut_to_cont_inner(k);
        if S::ENABLED {
            self.machine.emit(Event::Rts(RtsOp::SetCutToCont {
                target: r.as_ref().ok().cloned().flatten(),
            }));
        }
        r.map(|_| ())
    }

    fn set_cut_to_cont_inner(&mut self, k: u32) -> Result<Option<Name>, String> {
        if !matches!(self.machine.status(), VmStatus::Suspended) {
            return Err("thread is not suspended".into());
        }
        // The pc half of the (pc, sp) pair identifies the continuation:
        // it keys the back end's parameter-count table and lies within
        // the owning procedure's code.
        let pc = self.machine.mem.read32(k);
        let (count, target) = match self.program().cont_params.get(&pc) {
            Some(&count) => (count, self.program().proc_at_pc(pc).map(|m| m.name.clone())),
            None => (0, None),
        };
        self.pending = Some(VmPending::Cut {
            k,
            params: vec![0; count],
        });
        Ok(target)
    }

    /// `FindContParam(t, n)`: where to put the n'th parameter of the
    /// staged continuation.
    pub fn find_cont_param(&mut self, n: usize) -> Option<&mut u64> {
        if self.trip(ChaosOp::FindContParam).is_some() {
            return None;
        }
        if S::ENABLED {
            let found = match self.pending.as_ref() {
                Some(VmPending::Activation { params, .. })
                | Some(VmPending::Cut { params, .. }) => n < params.len(),
                None => false,
            };
            self.machine.emit(Event::Rts(RtsOp::FindContParam {
                index: n as u32,
                found,
            }));
        }
        match self.pending.as_mut()? {
            VmPending::Activation { params, .. } | VmPending::Cut { params, .. } => {
                params.get_mut(n)
            }
        }
    }

    /// `Resume`: apply the staged resumption; the machine is `Running`
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Fails if nothing was staged.
    pub fn resume(&mut self) -> Result<(), String> {
        if let Some(fault) = self.trip(ChaosOp::Resume) {
            return Err(chaos_err(fault));
        }
        let kind = match &self.pending {
            Some(VmPending::Cut { .. }) => ResumeKind::Cut,
            Some(VmPending::Activation {
                unwind: Some(_), ..
            }) => ResumeKind::Unwind,
            _ => ResumeKind::Normal,
        };
        let r = self.resume_inner();
        if S::ENABLED {
            self.machine.emit(Event::Rts(RtsOp::Resume {
                kind,
                ok: r.is_ok(),
            }));
        }
        r
    }

    fn resume_inner(&mut self) -> Result<(), String> {
        let pending = self
            .pending
            .take()
            .ok_or_else(|| "Resume with nothing staged".to_string())?;
        match pending {
            VmPending::Activation {
                act,
                unwind,
                params,
            } => {
                self.machine.cost.runtime_instructions += costs::RESUME;
                let site = self
                    .program()
                    .call_sites
                    .get(&act.site)
                    .ok_or_else(|| "unknown call site".to_string())?;
                let pc = match unwind {
                    Some(n) => site.unwind_pcs[n],
                    None => act.site + site.alternates, // normal return point
                };
                self.machine.regs.copy_from_slice(&act.ctx);
                self.machine.regs[regs::SP as usize] = u64::from(act.base);
                for (i, &p) in params.iter().enumerate() {
                    self.machine.regs[regs::ARG0 as usize + i] = p;
                }
                self.machine.pc = pc;
                self.machine.force_running();
                Ok(())
            }
            VmPending::Cut { k, params } => {
                self.machine.cost.runtime_instructions += costs::CUT_RESUME;
                let pc = self.machine.mem.read32(k);
                let sp = self.machine.mem.read32(k + 4);
                // A cut does not restore callee-saves registers.
                self.machine.regs[regs::SP as usize] = u64::from(sp);
                for (i, &p) in params.iter().enumerate() {
                    self.machine.regs[regs::ARG0 as usize + i] = p;
                }
                self.machine.pc = pc;
                self.machine.force_running();
                Ok(())
            }
        }
    }
}

/// The same wording as `Wrong::ChaosFault`'s display, so outcome
/// comparisons across engine families line up textually too.
fn chaos_err(fault: InjectedFault) -> String {
    format!(
        "chaos: injected fault in {} at invocation {}",
        fault.op.name(),
        fault.invocation
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn compile_src(src: &str) -> VmProgram {
        compile(&build_program(&parse_module(src).unwrap()).unwrap()).unwrap()
    }

    const NEST: &str = r#"
        f() {
            bits32 r;
            r = mid() also unwinds to k1, k2 also descriptor d_f;
            return (0);
            continuation k1(r):
            return (r + 1);
            continuation k2(r):
            return (r + 2);
        }
        mid() {
            bits32 r;
            r = g() also aborts also descriptor d_mid;
            return (r);
        }
        g() { yield(9) also aborts; return (0); }
        data d_f   { bits32 111; }
        data d_mid { bits32 222; }
    "#;

    #[test]
    fn walk_and_unwind_on_the_vm() {
        let vp = compile_src(NEST);
        let mut t = VmThread::new(&vp);
        t.start("f", &[], 1);
        assert_eq!(t.run(100_000), VmStatus::Suspended);
        assert_eq!(t.machine.yield_args(1), vec![9]);

        let mut a = t.first_activation().unwrap();
        // a = g's activation (the yield caller): no descriptors.
        assert_eq!(t.get_descriptor(&a, 0), None);
        assert!(t.next_activation(&mut a)); // mid
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.machine.mem.read32(d), 222);
        assert!(t.next_activation(&mut a)); // f
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.machine.mem.read32(d), 111);
        assert!(!t.next_activation(&mut a), "f is the bottom activation");

        t.set_activation(&a).unwrap();
        t.set_unwind_cont(1).unwrap();
        *t.find_cont_param(0).unwrap() = 40;
        t.resume().unwrap();
        assert_eq!(t.run(100_000), VmStatus::Halted(vec![42]));
    }

    #[test]
    fn unwinding_restores_callee_saves_registers() {
        // y is promoted to a callee-saves register by the optimizer;
        // the unwinding walk must restore it before entering k.
        let src = r#"
            f(bits32 x) {
                bits32 y, r, d;
                y = x * 7;
                r = g() also unwinds to k;
                return (r + y);
                continuation k(d):
                return (y + d);
            }
            g() { yield(1) also aborts; return (0); }
        "#;
        let mut prog = build_program(&parse_module(src).unwrap()).unwrap();
        cmm_opt::optimize_program(&mut prog, &cmm_opt::OptOptions::default());
        let vp = compile(&prog).unwrap();
        // Confirm y actually lives in a callee-saves register.
        let f_meta = vp.proc_meta.iter().find(|m| m.name == "f").unwrap();
        assert!(
            f_meta
                .var_locs
                .values()
                .any(|l| matches!(l, crate::frame::Loc::CalleeReg(_))),
            "optimizer should promote y: {:?}",
            f_meta.var_locs
        );
        let mut t = VmThread::new(&vp);
        t.start("f", &[6], 1);
        assert_eq!(t.run(100_000), VmStatus::Suspended);
        let mut a = t.first_activation().unwrap();
        assert!(t.next_activation(&mut a)); // f
        t.set_activation(&a).unwrap();
        t.set_unwind_cont(0).unwrap();
        *t.find_cont_param(0).unwrap() = 8;
        t.resume().unwrap();
        assert_eq!(t.run(100_000), VmStatus::Halted(vec![50])); // 6*7 + 8
    }

    #[test]
    fn set_cut_to_cont_on_the_vm() {
        let src = r#"
            f() {
                bits32 r;
                r = mid(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r * 2);
            }
            mid(bits32 kk) {
                bits32 r;
                r = g(kk) also aborts;
                return (r);
            }
            g(bits32 kk) { yield(1, kk) also aborts; return (0); }
        "#;
        let vp = compile_src(src);
        let mut t = VmThread::new(&vp);
        t.start("f", &[], 1);
        assert_eq!(t.run(100_000), VmStatus::Suspended);
        let k = t.machine.yield_args(2)[1] as u32;
        t.set_cut_to_cont(k).unwrap();
        *t.find_cont_param(0).unwrap() = 21;
        t.resume().unwrap();
        assert_eq!(t.run(100_000), VmStatus::Halted(vec![42]));
    }

    #[test]
    fn discard_requires_aborts() {
        let src = r#"
            f() { bits32 r; r = g() also unwinds to k; return (0);
                  continuation k(r): return (r); }
            g() { yield(1); return (0); }   /* not abortable */
        "#;
        let vp = compile_src(src);
        let mut t = VmThread::new(&vp);
        t.start("f", &[], 1);
        t.run(100_000);
        let mut a = t.first_activation().unwrap();
        assert!(t.next_activation(&mut a));
        assert!(t.set_activation(&a).is_err());
    }

    #[test]
    fn resume_normal_return() {
        let src = r#"
            f() { bits32 r; r = g(); return (r + 1); }
            g() { yield(1); return (0); }
        "#;
        let vp = compile_src(src);
        let mut t = VmThread::new(&vp);
        t.start("f", &[], 1);
        assert_eq!(t.run(100_000), VmStatus::Suspended);
        // Plain resume: continue the yield stub's epilogue and let g
        // return normally.
        let a = t.first_activation().unwrap();
        t.set_activation(&a).unwrap();
        t.resume().unwrap();
        assert_eq!(t.run(100_000), VmStatus::Halted(vec![1]));
    }

    #[test]
    fn walking_charges_runtime_cost() {
        let vp = compile_src(NEST);
        let mut t = VmThread::new(&vp);
        t.start("f", &[], 1);
        t.run(100_000);
        let before = t.machine.cost.runtime_instructions;
        let mut a = t.first_activation().unwrap();
        while t.next_activation(&mut a) {}
        assert!(t.machine.cost.runtime_instructions > before + costs::NEXT_ACTIVATION);
    }

    #[test]
    fn chaos_faults_option_ops_to_none_on_the_vm() {
        let vp = compile_src(NEST);
        let mut t = VmThread::new(&vp);
        t.set_chaos(FaultPlan::failing(ChaosOp::FirstActivation, 1));
        t.start("f", &[], 1);
        assert_eq!(t.run(100_000), VmStatus::Suspended);
        assert!(t.first_activation().is_none(), "fault masks the walk root");
        let log = t.chaos().unwrap().log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, ChaosOp::FirstActivation);
        // Trips once; the op works again afterwards.
        assert!(t.first_activation().is_some());
    }

    #[test]
    fn chaos_faults_result_ops_with_the_sem_fault_wording() {
        let vp = compile_src(NEST);
        let mut t = VmThread::new(&vp);
        t.set_chaos(FaultPlan::failing(ChaosOp::SetUnwindCont, 1));
        t.start("f", &[], 1);
        assert_eq!(t.run(100_000), VmStatus::Suspended);
        let mut a = t.first_activation().unwrap();
        while t.next_activation(&mut a) {}
        t.set_activation(&a).unwrap();
        let err = t.set_unwind_cont(1).unwrap_err();
        // Must match `Wrong::ChaosFault`'s display so the two engine
        // families produce textually identical outcomes in difftest.
        assert_eq!(
            err,
            "chaos: injected fault in set-unwind-cont at invocation 1"
        );
        // Recoverable: retry, then finish the unwind normally.
        t.set_unwind_cont(1).unwrap();
        *t.find_cont_param(0).unwrap() = 40;
        t.resume().unwrap();
        assert_eq!(t.run(100_000), VmStatus::Halted(vec![42]));
    }

    #[test]
    fn chaos_schedule_is_identical_over_the_decoded_engine() {
        fn drive(mut t: VmThread<'_>) -> Vec<cmm_chaos::InjectedFault> {
            t.set_chaos(FaultPlan::seeded(7, 4));
            t.start("f", &[], 1);
            assert_eq!(t.run(100_000), VmStatus::Suspended);
            if let Some(mut a) = t.first_activation() {
                while t.next_activation(&mut a) {}
                let _ = t.set_activation(&a);
                let _ = t.set_unwind_cont(0);
                if let Some(p0) = t.find_cont_param(0) {
                    *p0 = 1;
                }
                let _ = t.resume();
            }
            t.chaos().unwrap().log().to_vec()
        }
        let vp = compile_src(NEST);
        let stepped = drive(VmThread::new(&vp));
        let decoded = drive(VmThread::new_decoded(&vp));
        let fused = drive(VmThread::new_fused(&vp));
        assert_eq!(stepped, decoded);
        assert_eq!(stepped, fused);
        assert!(!stepped.is_empty(), "seed 7 should fire at least once");
    }
}
