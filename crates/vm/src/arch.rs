//! Architecture cost profiles from §2 of the paper.
//!
//! "In C code, `setjmp` and `longjmp` cut the stack, but they typically
//! save and restore lots of state: the size of a `jmp_buf` is 6 pointers
//! on Pentium/Linux, 19 on SPARC/Solaris, and 84 on Alpha/Digital-Unix.
//! ... they are significantly more expensive than a native-code stack
//! cutter, which saves 2 pointers."

/// The per-architecture state a `setjmp`-style scope entry must save.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArchProfile {
    /// Architecture name as quoted in the paper.
    pub name: &'static str,
    /// `jmp_buf` size in pointer-sized words.
    pub jmp_buf_words: u32,
    /// Extra penalty on `longjmp`, in instruction equivalents (the SPARC
    /// "pays the additional penalty of flushing register windows").
    pub longjmp_extra: u32,
}

/// Pentium/Linux: 6-pointer `jmp_buf`.
pub const PENTIUM_LINUX: ArchProfile = ArchProfile {
    name: "Pentium/Linux",
    jmp_buf_words: 6,
    longjmp_extra: 0,
};

/// SPARC/Solaris: 19-pointer `jmp_buf`, plus register-window flushing on
/// `longjmp`.
pub const SPARC_SOLARIS: ArchProfile = ArchProfile {
    name: "SPARC/Solaris",
    jmp_buf_words: 19,
    longjmp_extra: 64,
};

/// Alpha/Digital-Unix: 84-pointer `jmp_buf`.
pub const ALPHA_DIGITAL_UNIX: ArchProfile = ArchProfile {
    name: "Alpha/Digital-Unix",
    jmp_buf_words: 84,
    longjmp_extra: 0,
};

/// A native-code stack cutter "saves 2 pointers" (the `(pc, sp)` pair of
/// a C-- continuation, §5.4).
pub const NATIVE_CUTTER: ArchProfile = ArchProfile {
    name: "native C-- cutter",
    jmp_buf_words: 2,
    longjmp_extra: 0,
};

/// All profiles quoted in §2, in the paper's order, plus the native
/// cutter baseline.
pub const ALL: [ArchProfile; 4] = [
    PENTIUM_LINUX,
    SPARC_SOLARIS,
    ALPHA_DIGITAL_UNIX,
    NATIVE_CUTTER,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_numbers_are_encoded() {
        assert_eq!(PENTIUM_LINUX.jmp_buf_words, 6);
        assert_eq!(SPARC_SOLARIS.jmp_buf_words, 19);
        assert_eq!(ALPHA_DIGITAL_UNIX.jmp_buf_words, 84);
        assert_eq!(NATIVE_CUTTER.jmp_buf_words, 2);
        assert_ne!(SPARC_SOLARIS.longjmp_extra, 0);
    }
}
