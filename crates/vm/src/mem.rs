//! Paged byte-addressed memory.

use cmm_ir::Width;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
// A 32-bit address splits into a 10-bit root index, a 10-bit leaf
// index, and a 12-bit page offset.
const LEAF_BITS: u32 = 10;
const LEAF_LEN: usize = 1 << LEAF_BITS;
const ROOT_LEN: usize = 1 << (32 - PAGE_BITS - LEAF_BITS);

type Page = Box<[u8; PAGE_SIZE]>;
type Leaf = [Option<Page>; LEAF_LEN];

const EMPTY_PAGE: Option<Page> = None;
const EMPTY_LEAF: Option<Box<Leaf>> = None;

/// Sparse little-endian memory. Unmapped bytes read as zero.
///
/// Pages live in a two-level table indexed directly by address bits, so
/// the load/store hot path is two dependent indexed reads — no hashing.
/// Leaf tables are allocated on demand (one per mapped 4 MiB region)
/// and, like the page pool below, are invisible to every observation.
///
/// Carries a private **page pool**: [`Memory::recycle`] unmaps every
/// page but banks the allocations, and subsequent writes draw from the
/// bank before touching the allocator. The pool is invisible to every
/// observation — reads, [`Memory::snapshot`], and [`Memory::mapped_bytes`]
/// (the `cmm-chaos` footprint figure) see only mapped pages — which is
/// what lets a batch worker reuse one `Memory` across jobs without
/// perturbing governed runs.
#[derive(Debug)]
pub struct Memory {
    roots: Box<[Option<Box<Leaf>>; ROOT_LEN]>,
    mapped_pages: usize,
    /// Zeroed pages banked by [`Memory::recycle`].
    pool: Vec<Page>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            roots: Box::new([EMPTY_LEAF; ROOT_LEN]),
            mapped_pages: 0,
            pool: Vec::new(),
        }
    }
}

impl Clone for Memory {
    /// Clones the mapped contents. The recycle pool is not observable
    /// state and stays with the original.
    fn clone(&self) -> Memory {
        let mut m = Memory::default();
        for (key, page) in self.iter_pages() {
            *m.slot_mut(key) = Some(page.clone());
        }
        m.mapped_pages = self.mapped_pages;
        m
    }
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Mapped pages in address order, with their page keys.
    fn iter_pages(&self) -> impl Iterator<Item = (u32, &Page)> {
        self.roots.iter().enumerate().flat_map(|(i, leaf)| {
            leaf.iter().flat_map(move |l| {
                l.iter().enumerate().filter_map(move |(j, p)| {
                    p.as_ref().map(|p| (((i << LEAF_BITS) | j) as u32, p))
                })
            })
        })
    }

    /// The table slot for page `key`, allocating its leaf on demand.
    fn slot_mut(&mut self, key: u32) -> &mut Option<Page> {
        let leaf = self.roots[(key >> LEAF_BITS) as usize]
            .get_or_insert_with(|| Box::new([EMPTY_PAGE; LEAF_LEN]));
        &mut leaf[(key as usize) & (LEAF_LEN - 1)]
    }

    /// The mapped page holding `addr`, if any.
    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        let key = addr >> PAGE_BITS;
        match &self.roots[(key >> LEAF_BITS) as usize] {
            Some(leaf) => leaf[(key as usize) & (LEAF_LEN - 1)].as_deref(),
            None => None,
        }
    }

    /// Bytes of mapped pages — the footprint figure the `cmm-chaos`
    /// resource governor caps in this engine family.
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_pages * PAGE_SIZE
    }

    /// Unmaps every page but keeps the allocations for reuse. The
    /// result is observationally a fresh `Memory::new()` — every byte
    /// reads zero, `mapped_bytes` is `0`, `snapshot` is empty — and a
    /// later write maps a banked (re-zeroed) page instead of
    /// allocating one. Leaf tables stay allocated; they hold no bytes.
    pub fn recycle(&mut self) {
        for leaf in self.roots.iter_mut().flatten() {
            for slot in leaf.iter_mut() {
                if let Some(mut page) = slot.take() {
                    page.fill(0);
                    self.pool.push(page);
                }
            }
        }
        self.mapped_pages = 0;
    }

    /// The mapped-or-banked page for `addr`, mapping one on demand.
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let key = addr >> PAGE_BITS;
        let pool = &mut self.pool;
        let mapped = &mut self.mapped_pages;
        let leaf = self.roots[(key >> LEAF_BITS) as usize]
            .get_or_insert_with(|| Box::new([EMPTY_PAGE; LEAF_LEN]));
        leaf[(key as usize) & (LEAF_LEN - 1)].get_or_insert_with(|| {
            *mapped += 1;
            pool.pop().unwrap_or_else(|| Box::new([0; PAGE_SIZE]))
        })
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        let page = self.page_mut(addr);
        page[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Reads a little-endian value of the given width.
    pub fn read(&self, w: Width, addr: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..w.bytes() {
            v |= u64::from(self.read_u8(addr.wrapping_add(i as u32))) << (8 * i);
        }
        v
    }

    /// Writes a little-endian value of the given width.
    pub fn write(&mut self, w: Width, addr: u32, v: u64) {
        for i in 0..w.bytes() {
            self.write_u8(addr.wrapping_add(i as u32), ((v >> (8 * i)) & 0xff) as u8);
        }
    }

    /// Reads a 32-bit word.
    pub fn read32(&self, addr: u32) -> u32 {
        self.read(Width::W32, addr) as u32
    }

    /// Writes a 32-bit word.
    pub fn write32(&mut self, addr: u32, v: u32) {
        self.write(Width::W32, addr, u64::from(v));
    }

    /// [`Memory::read`] with a single page lookup when the access lies
    /// within one page (the overwhelmingly common case); identical
    /// behaviour, including zero reads from unmapped pages. The decoded
    /// engine's hot path.
    #[inline]
    pub fn read_wide(&self, w: Width, addr: u32) -> u64 {
        let n = w.bytes() as usize;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n > PAGE_SIZE {
            return self.read(w, addr);
        }
        match self.page(addr) {
            Some(p) => {
                let mut v = 0u64;
                for i in 0..n {
                    v |= u64::from(p[off + i]) << (8 * i);
                }
                v
            }
            None => 0,
        }
    }

    /// [`Memory::write`] with a single page lookup when the access lies
    /// within one page; identical behaviour.
    #[inline]
    pub fn write_wide(&mut self, w: Width, addr: u32, v: u64) {
        let n = w.bytes() as usize;
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n > PAGE_SIZE {
            return self.write(w, addr, v);
        }
        let page = self.page_mut(addr);
        for i in 0..n {
            page[off + i] = ((v >> (8 * i)) & 0xff) as u8;
        }
    }

    /// A canonical snapshot of every nonzero byte, sorted by address.
    /// Two memories with equal snapshots are observationally equal
    /// (unmapped bytes read as zero), whatever their page layout.
    pub fn snapshot(&self) -> Vec<(u32, u8)> {
        let mut out = Vec::new();
        for (key, p) in self.iter_pages() {
            for (i, &b) in p.iter().enumerate() {
                if b != 0 {
                    out.push(((key << PAGE_BITS) | i as u32, b));
                }
            }
        }
        out
    }

    /// Reads a NUL-terminated string.
    pub fn read_cstr(&self, addr: u32) -> String {
        let mut out = String::new();
        let mut a = addr;
        while out.len() < 4096 {
            let b = self.read_u8(a);
            if b == 0 {
                break;
            }
            out.push(b as char);
            a = a.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = Memory::new();
        m.write(Width::W8, 10, 0xab);
        m.write(Width::W16, 20, 0xbeef);
        m.write(Width::W32, 30, 0xdead_beef);
        m.write(Width::W64, 40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read(Width::W8, 10), 0xab);
        assert_eq!(m.read(Width::W16, 20), 0xbeef);
        assert_eq!(m.read(Width::W32, 30), 0xdead_beef);
        assert_eq!(m.read(Width::W64, 40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(Width::W32, 0x9999), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_BITS) - 2;
        m.write(Width::W32, addr, 0x11223344);
        assert_eq!(m.read(Width::W32, addr), 0x11223344);
    }

    #[test]
    fn high_addresses_round_trip() {
        // The top of the address space exercises the last root slot.
        let mut m = Memory::new();
        m.write(Width::W64, u32::MAX - 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read(Width::W64, u32::MAX - 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.mapped_bytes(), PAGE_SIZE);
    }

    #[test]
    fn wide_accessors_match_byte_loop_everywhere() {
        // Including the cross-page boundary, where the wide path falls
        // back to the byte loop.
        let widths = [Width::W8, Width::W16, Width::W32, Width::W64];
        let boundary = 1u32 << PAGE_BITS;
        for w in widths {
            for addr in (boundary - 9)..(boundary + 9) {
                let v = 0x0123_4567_89ab_cdefu64;
                let mut a = Memory::new();
                let mut b = Memory::new();
                a.write(w, addr, v);
                b.write_wide(w, addr, v);
                assert_eq!(a.snapshot(), b.snapshot(), "{w:?} at {addr:#x}");
                assert_eq!(a.read(w, addr), b.read_wide(w, addr), "{w:?} at {addr:#x}");
            }
        }
        // Unmapped pages read zero through the wide path too.
        let m = Memory::new();
        assert_eq!(m.read_wide(Width::W64, 0x5000), 0);
    }

    #[test]
    fn clone_copies_mapped_contents_only() {
        let mut m = Memory::new();
        m.write32(0x10, 7);
        m.write32(0x8000_0000, 9);
        let c = m.clone();
        assert_eq!(c.snapshot(), m.snapshot());
        assert_eq!(c.mapped_bytes(), m.mapped_bytes());
    }

    #[test]
    fn recycled_memory_is_observationally_fresh() {
        let mut m = Memory::new();
        m.write(Width::W64, 0x10, 0xdead_beef_cafe_f00d);
        m.write(Width::W32, 0x5004, 0x1234_5678); // second page
        assert_eq!(m.mapped_bytes(), 2 * PAGE_SIZE);

        m.recycle();
        assert_eq!(m.mapped_bytes(), 0, "no pages mapped");
        assert!(m.snapshot().is_empty(), "no nonzero bytes");
        assert_eq!(m.read(Width::W64, 0x10), 0, "old contents unreadable");

        // A write after recycling reuses a banked page, and the reused
        // page carries no stale bytes from its previous life.
        m.write_u8(0x5000, 7);
        assert_eq!(m.mapped_bytes(), PAGE_SIZE);
        assert_eq!(m.snapshot(), vec![(0x5000, 7)]);
        // Behaviour matches a genuinely fresh memory, byte for byte.
        let mut fresh = Memory::new();
        fresh.write_u8(0x5000, 7);
        assert_eq!(m.snapshot(), fresh.snapshot());
    }

    #[test]
    fn cstr_reads() {
        let mut m = Memory::new();
        for (i, b) in b"hello\0".iter().enumerate() {
            m.write_u8(100 + i as u32, *b);
        }
        assert_eq!(m.read_cstr(100), "hello");
    }
}
