//! Shared service counters: thread-safe metrics for long-lived
//! components that serve many executions (today: `cmm-pool`'s
//! content-addressed compilation cache).
//!
//! The trace-sink layer ([`crate::sink`]) observes *one* run from the
//! inside; these counters observe a *service* from the outside, across
//! many concurrent runs. They are plain atomics — no locks, no feature
//! gates — so a server can read them at any time without perturbing the
//! workers that update them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for a content-addressed artifact cache.
///
/// The counting discipline keeps the figures *scheduling-independent*:
/// a request satisfied by a ready artifact is a **hit**; a request that
/// arrives while another thread is already building the same artifact
/// waits for it and is counted as a hit *and* as an
/// **in-flight wait** (the single-flight channel); the one request that
/// actually builds is a **miss**. Per `(digest, stage)` there is thus
/// exactly one miss no matter how many threads race, so hit/miss totals
/// for a fixed job set are identical at `-j1` and `-jN` (evictions can
/// reorder under a tight byte budget; see `cmm-pool`'s docs).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Requests satisfied by a ready artifact (including single-flight
    /// waiters).
    pub hits: AtomicU64,
    /// Requests that built the artifact.
    pub misses: AtomicU64,
    /// Artifacts evicted to respect the byte budget.
    pub evictions: AtomicU64,
    /// Hits that waited on another thread's in-flight build.
    pub inflight_waits: AtomicU64,
    /// Estimated bytes currently resident.
    pub resident_bytes: AtomicU64,
}

impl CacheStats {
    /// A zeroed counter set.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// An immutable copy of the current values.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inflight_waits: self.inflight_waits.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheSnapshot {
    /// See [`CacheStats::hits`].
    pub hits: u64,
    /// See [`CacheStats::misses`].
    pub misses: u64,
    /// See [`CacheStats::evictions`].
    pub evictions: u64,
    /// See [`CacheStats::inflight_waits`].
    pub inflight_waits: u64,
    /// See [`CacheStats::resident_bytes`].
    pub resident_bytes: u64,
}

impl CacheSnapshot {
    /// Hits over total requests, in `[0, 1]`; `0` before any request.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

impl fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} eviction(s), {} in-flight wait(s), \
             {} byte(s) resident ({:.0}% hit rate)",
            self.hits,
            self.misses,
            self.evictions,
            self.inflight_waits,
            self.resident_bytes,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_hit_rate() {
        let s = CacheStats::new();
        assert_eq!(s.snapshot().hit_rate(), 0.0);
        s.hits.fetch_add(3, Ordering::Relaxed);
        s.misses.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.hit_rate(), 0.75);
        assert!(snap.to_string().contains("75% hit rate"), "{snap}");
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let s = std::sync::Arc::new(CacheStats::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..100 {
                        s.hits.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().hits, 400);
    }
}
