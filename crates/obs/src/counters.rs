//! Shared service counters: thread-safe metrics for long-lived
//! components that serve many executions (today: `cmm-pool`'s
//! content-addressed compilation cache).
//!
//! The trace-sink layer ([`crate::sink`]) observes *one* run from the
//! inside; these counters observe a *service* from the outside, across
//! many concurrent runs. They are built on the registry substrate
//! ([`crate::registry`]'s [`Counter`] and [`Gauge`] handles — plain
//! shared atomics, no locks, no feature gates) so a server can read
//! them at any time without perturbing the workers that update them,
//! and so the same cells can be mounted into a [`MetricsRegistry`] as
//! live views: there is one counting substrate, not a bespoke copy per
//! subsystem.

use crate::registry::{Counter, Gauge, Metric, MetricClass, MetricsRegistry};
use std::fmt;

/// Counters for a content-addressed artifact cache.
///
/// The counting discipline keeps the figures *scheduling-independent*:
/// a request satisfied by a ready artifact is a **hit**; a request that
/// arrives while another thread is already building the same artifact
/// waits for it and is counted as a hit *and* as an
/// **in-flight wait** (the single-flight channel); the one request that
/// actually builds is a **miss**. Per `(digest, stage)` there is thus
/// exactly one miss no matter how many threads race, so hit/miss totals
/// for a fixed job set are identical at `-j1` and `-jN` (evictions can
/// reorder under a tight byte budget; see `cmm-pool`'s docs).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Requests satisfied by a ready artifact (including single-flight
    /// waiters).
    pub hits: Counter,
    /// Requests that built the artifact.
    pub misses: Counter,
    /// Artifacts evicted to respect the byte budget.
    pub evictions: Counter,
    /// Hits that waited on another thread's in-flight build.
    pub inflight_waits: Counter,
    /// Estimated bytes currently resident.
    pub resident_bytes: Gauge,
}

impl CacheStats {
    /// A zeroed counter set.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// An immutable copy of the current values.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            inflight_waits: self.inflight_waits.get(),
            resident_bytes: self.resident_bytes.get(),
        }
    }
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheSnapshot {
    /// See [`CacheStats::hits`].
    pub hits: u64,
    /// See [`CacheStats::misses`].
    pub misses: u64,
    /// See [`CacheStats::evictions`].
    pub evictions: u64,
    /// See [`CacheStats::inflight_waits`].
    pub inflight_waits: u64,
    /// See [`CacheStats::resident_bytes`].
    pub resident_bytes: u64,
}

impl CacheSnapshot {
    /// Hits over total requests, in `[0, 1]`; `0` before any request.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One [`CacheStats`] per shard of a lock-striped cache.
///
/// A sharded cache that funneled every hit through one shared counter
/// set would reintroduce the very cache-line contention the shards
/// remove, so each shard owns its counters and readers aggregate on
/// demand. The counting discipline is unchanged — single-flight keeps
/// per-key miss counts at exactly one — so the *aggregate* hit/miss
/// totals for a fixed job set stay scheduling-independent even though
/// the per-shard split depends only on the digest, not the schedule.
#[derive(Debug)]
pub struct ShardedCacheStats {
    shards: Vec<CacheStats>,
}

impl ShardedCacheStats {
    /// `n` zeroed shard counter sets.
    pub fn new(n: usize) -> ShardedCacheStats {
        ShardedCacheStats {
            shards: (0..n.max(1)).map(|_| CacheStats::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True only for a zero-shard set (never constructed by `new`).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The counter set of shard `i`.
    pub fn shard(&self, i: usize) -> &CacheStats {
        &self.shards[i]
    }

    /// Point-in-time copies of every shard's counters, in shard order.
    pub fn shard_snapshots(&self) -> Vec<CacheSnapshot> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// The cache-wide aggregate of every shard's counters. Every field
    /// sums, including `resident_bytes`: each shard accounts its own
    /// resident estimate, so the sum is the cache-wide figure.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for s in &self.shards {
            let snap = s.snapshot();
            total.hits += snap.hits;
            total.misses += snap.misses;
            total.evictions += snap.evictions;
            total.inflight_waits += snap.inflight_waits;
            total.resident_bytes += snap.resident_bytes;
        }
        total
    }

    /// Sum of the per-shard resident estimates — the figure a byte
    /// budget is enforced against, readable without any lock.
    pub fn resident_total(&self) -> u64 {
        self.shards.iter().map(|s| s.resident_bytes.get()).sum()
    }

    /// Mounts every shard's counters into `registry` as live views
    /// (`cmm_cache_*{shard="i"}`). Hits, misses, and evictions are
    /// deterministic under the single-flight counting discipline;
    /// in-flight waits and the resident estimate are scheduling
    /// artifacts and carry [`MetricClass::Timing`].
    pub fn mount(&self, registry: &MetricsRegistry) {
        for (i, s) in self.shards.iter().enumerate() {
            let shard = i.to_string();
            let labels: [(&str, &str); 1] = [("shard", shard.as_str())];
            let det = MetricClass::Deterministic;
            registry.mount(
                "cmm_cache_hits_total",
                &labels,
                "Cache requests satisfied by a ready artifact",
                det,
                Metric::Counter(s.hits.clone()),
            );
            registry.mount(
                "cmm_cache_misses_total",
                &labels,
                "Cache requests that built the artifact",
                det,
                Metric::Counter(s.misses.clone()),
            );
            registry.mount(
                "cmm_cache_evictions_total",
                &labels,
                "Artifacts evicted to respect the byte budget",
                det,
                Metric::Counter(s.evictions.clone()),
            );
            registry.mount(
                "cmm_cache_inflight_waits_total",
                &labels,
                "Hits that waited on another thread's in-flight build",
                MetricClass::Timing,
                Metric::Counter(s.inflight_waits.clone()),
            );
            registry.mount(
                "cmm_cache_resident_bytes",
                &labels,
                "Estimated bytes currently resident",
                MetricClass::Timing,
                Metric::Gauge(s.resident_bytes.clone()),
            );
        }
    }
}

impl fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} eviction(s), {} in-flight wait(s), \
             {} byte(s) resident ({:.0}% hit rate)",
            self.hits,
            self.misses,
            self.evictions,
            self.inflight_waits,
            self.resident_bytes,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_hit_rate() {
        let s = CacheStats::new();
        assert_eq!(s.snapshot().hit_rate(), 0.0);
        s.hits.add(3);
        s.misses.inc();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.hit_rate(), 0.75);
        assert!(snap.to_string().contains("75% hit rate"), "{snap}");
    }

    #[test]
    fn sharded_stats_aggregate_across_shards() {
        let s = ShardedCacheStats::new(4);
        s.shard(0).hits.add(2);
        s.shard(3).hits.inc();
        s.shard(1).misses.inc();
        s.shard(2).resident_bytes.set(100);
        s.shard(3).resident_bytes.set(50);
        let total = s.snapshot();
        assert_eq!((total.hits, total.misses), (3, 1));
        assert_eq!(total.resident_bytes, 150);
        assert_eq!(s.resident_total(), 150);
        // The aggregate is exactly the fold of the per-shard snapshots.
        let folded: u64 = s.shard_snapshots().iter().map(|snap| snap.hits).sum();
        assert_eq!(folded, total.hits);
    }

    #[test]
    fn sharded_stats_never_have_zero_shards() {
        let s = ShardedCacheStats::new(0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let s = std::sync::Arc::new(CacheStats::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..100 {
                        s.hits.inc();
                    }
                });
            }
        });
        assert_eq!(s.snapshot().hits, 400);
    }

    #[test]
    fn mounted_shards_are_live_registry_views() {
        let s = ShardedCacheStats::new(2);
        let registry = MetricsRegistry::new();
        s.mount(&registry);
        // The registry exports the very cell the cache updates — no
        // copy, no absorb pass.
        s.shard(1).hits.add(5);
        let text = registry.to_prometheus();
        assert!(
            text.contains("cmm_cache_hits_total{shard=\"1\"} 5"),
            "{text}"
        );
        assert!(text.contains("cmm_cache_hits_total{shard=\"0\"} 0"));
        // Deterministic JSON keeps hit counts but strips the
        // timing-class resident estimate.
        s.shard(0).resident_bytes.set(77);
        let json = registry.to_json(false);
        assert!(json.contains("cmm_cache_hits_total{shard='1'}"));
        assert!(!json.contains("resident"), "{json}");
    }
}
