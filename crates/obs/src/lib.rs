//! # cmm-obs — exception-flow observability
//!
//! The paper's thesis is that one intermediate language can host four
//! exception-implementation strategies with *predictable* costs. This
//! crate makes those costs (and the control flow behind them)
//! observable: every engine in the workspace — the reference abstract
//! machine, the pre-resolved engine, and both VM step loops — is
//! generic over a [`TraceSink`] and emits a structured [`Event`] at
//! every exception-relevant transition, from `cut to` transfers down to
//! individual Table 1 run-time-interface calls.
//!
//! The layer is *zero-cost when off*: the default [`NopSink`] carries
//! `ENABLED = false` as an associated constant, engines guard every
//! emission with it, and monomorphization deletes the branches — the
//! perf trajectory's committed instruction counts are measured through
//! exactly this instantiation and gate it in CI.
//!
//! On top of the raw streams sit:
//!
//! * [`projection`] / [`first_divergence`] — the engine-independent
//!   exception projection used by `tests/trace_equivalence.rs` and by
//!   difftest's divergence artifacts;
//! * [`Profile`] — per-procedure and per-strategy metrics with
//!   cost-model attribution (`cmm profile`);
//! * [`chrome_trace_json`] — Chrome `trace_event` export
//!   (`cmm trace`);
//! * [`MetricsRegistry`] — the live metrics runtime: sharded
//!   counters/gauges/log-bucketed histograms with Prometheus and
//!   deterministic-JSON export (`cmm metrics`);
//! * [`CacheStats`] — registry-backed service counters (hits, misses,
//!   evictions) for `cmm-pool`'s content-addressed compilation cache;
//! * [`FlightRecorder`] — a bounded ring-buffer sink that keeps a
//!   job's final events for post-mortem dumps when it fails.

pub mod chrome;
pub mod counters;
pub mod event;
pub mod flight;
pub mod metrics;
pub mod registry;
pub mod sink;

pub use chrome::chrome_trace_json;
pub use counters::{CacheSnapshot, CacheStats, ShardedCacheStats};
pub use event::{first_divergence, projection, Event, ResumeKind, RtsOp, TimedEvent};
pub use flight::{FlightRecorder, SharedFlight, RTS_OP_NAMES};
pub use metrics::{ProcStats, Profile, StrategyCounts};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricClass, MetricsRegistry,
};
pub use sink::{CountingSink, EventCounts, NopSink, RecordingSink, TraceSink};
