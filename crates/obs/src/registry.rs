//! The live metrics runtime: a sharded registry of counters, gauges,
//! and log-bucketed histograms, exportable as Prometheus text
//! exposition or as a deterministic JSON section.
//!
//! # Design
//!
//! A metric handle ([`Counter`], [`Gauge`], [`Histogram`]) is a cheap
//! clone of an `Arc`'d atomic: updates are lock-free and touch no
//! registry state, so hot paths (engine dispatch loops via the flight
//! recorder, pool workers, cache shards) never contend on anything but
//! their own cache line. The [`MetricsRegistry`] itself is only a
//! *directory* — name/labels → handle — consulted on registration and
//! export, and it is lock-striped so even concurrent registration from
//! a worker pool stays contention-free.
//!
//! # Determinism
//!
//! Every metric carries a [`MetricClass`]. `Deterministic` metrics are
//! pure functions of the job list (engine event counts, Table 1 op
//! tallies, cache hit/miss totals under the single-flight counting
//! discipline, virtual-clock cost histograms); `Timing` metrics are
//! wall-clock or scheduling artifacts (latency histograms, queue
//! waits, steal counts). [`MetricsRegistry::to_json`] with
//! `with_timing = false` emits only the deterministic class, which is
//! how `cmm batch --metrics-out --no-timing` stays byte-identical
//! across `-j1` and `-jN`.
//!
//! # Histograms and quantile error
//!
//! Histograms bucket by `floor(log2(v)) + 1` (bucket 0 holds exact
//! zeros): bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`, up to bucket 64
//! whose upper bound is `u64::MAX`. [`HistogramSnapshot::quantile`]
//! returns the *upper bound* of the bucket holding the requested rank,
//! so a reported pXX is never below the true quantile and at most 2×
//! above it — the standard error bound for power-of-two buckets, and
//! plenty for the order-of-magnitude latency questions the paper's
//! strategy comparison asks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Histogram bucket count: bucket 0 for zero, buckets `1..=64` for
/// each power-of-two magnitude of a `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-value (or high-water) cell. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A log2-bucketed histogram (see the module docs for the bucket
/// layout and quantile error bound). Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

/// The bucket a value lands in: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (u64::BITS - v.leading_zeros()) as usize
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the top
/// bucket).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let h = &*self.0;
        h.count.fetch_add(1, Relaxed);
        h.sum.fetch_add(v, Relaxed);
        h.buckets[bucket_index(v)].fetch_add(1, Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        HistogramSnapshot {
            count: h.count.load(Relaxed),
            sum: h.sum.load(Relaxed),
            buckets: std::array::from_fn(|i| h.buckets[i].load(Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// The upper bound of the bucket holding the `num/den` quantile
    /// (integer arithmetic only, so the figure is as deterministic as
    /// the observations). Zero when the histogram is empty. The result
    /// is ≥ the true quantile and < 2× it (see the module docs).
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile observation, 1-based, rounding up.
        let rank = ((self.count * num).div_ceil(den)).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// The three headline quantiles: (p50, p90, p99).
    pub fn p50_p90_p99(&self) -> (u64, u64, u64) {
        (
            self.quantile(50, 100),
            self.quantile(90, 100),
            self.quantile(99, 100),
        )
    }
}

/// Whether a metric is a pure function of the job list or a wall-clock
/// / scheduling artifact. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricClass {
    /// Identical across `-j1` and `-jN`; survives `--no-timing`.
    Deterministic,
    /// Varies run to run; stripped from deterministic output.
    Timing,
}

/// One registered metric handle.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        MetricId {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// `name{k="v",...}` (bare name when label-free).
    fn render(&self) -> String {
        let mut s = self.name.clone();
        if !self.labels.is_empty() {
            s.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{k}=\"{v}\"");
            }
            s.push('}');
        }
        s
    }

    /// The label block with one extra `le` label appended (Prometheus
    /// histogram bucket lines).
    fn render_with_le(&self, suffix: &str, le: &str) -> String {
        let mut s = format!("{}{suffix}{{", self.name);
        for (k, v) in &self.labels {
            let _ = write!(s, "{k}=\"{v}\",");
        }
        let _ = write!(s, "le=\"{le}\"}}");
        s
    }
}

#[derive(Clone, Debug)]
struct Entry {
    help: &'static str,
    class: MetricClass,
    metric: Metric,
}

/// Number of registry lock stripes. Registration is rare, but a worker
/// pool registering per-job label sets concurrently should not funnel
/// through one mutex.
const STRIPES: usize = 8;

/// The metric directory: name + labels → shared handle. See the module
/// docs for the design.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stripes: [Mutex<BTreeMap<MetricId, Entry>>; STRIPES],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn stripe(&self, name: &str) -> &Mutex<BTreeMap<MetricId, Entry>> {
        // FNV-1a over the name: same hash the pipeline cache digests
        // use, tiny and deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.stripes[(h as usize) % STRIPES]
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        class: MetricClass,
        fresh: impl FnOnce() -> Metric,
    ) -> Metric {
        let id = MetricId::new(name, labels);
        let mut map = self.stripe(name).lock().expect("registry poisoned");
        let entry = map.entry(id).or_insert_with(|| Entry {
            help,
            class,
            metric: fresh(),
        });
        entry.metric.clone()
    }

    /// The counter for `(name, labels)`, creating it on first use.
    /// Registration is idempotent: later calls return the same cell.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        class: MetricClass,
    ) -> Counter {
        match self.get_or_insert(
            name,
            labels,
            help,
            class,
            || Metric::Counter(Counter::new()),
        ) {
            Metric::Counter(c) => c,
            m => panic!("{name} already registered as a {}", m.type_name()),
        }
    }

    /// The gauge for `(name, labels)`, creating it on first use.
    pub fn gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        class: MetricClass,
    ) -> Gauge {
        match self.get_or_insert(name, labels, help, class, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            m => panic!("{name} already registered as a {}", m.type_name()),
        }
    }

    /// The histogram for `(name, labels)`, creating it on first use.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        class: MetricClass,
    ) -> Histogram {
        match self.get_or_insert(name, labels, help, class, || {
            Metric::Histogram(Histogram::new())
        }) {
            Metric::Histogram(h) => h,
            m => panic!("{name} already registered as a {}", m.type_name()),
        }
    }

    /// Mounts an *existing* handle under `(name, labels)` — how a
    /// component's own counters (cache shards, pool meters) become
    /// registry-backed views without a copy: the registry exports the
    /// very cell the component updates.
    pub fn mount(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        class: MetricClass,
        metric: Metric,
    ) {
        let id = MetricId::new(name, labels);
        self.stripe(name).lock().expect("registry poisoned").insert(
            id,
            Entry {
                help,
                class,
                metric,
            },
        );
    }

    /// Every entry, merged across stripes into one deterministically
    /// ordered map.
    fn collect(&self) -> BTreeMap<MetricId, Entry> {
        let mut all = BTreeMap::new();
        for stripe in &self.stripes {
            for (id, e) in stripe.lock().expect("registry poisoned").iter() {
                all.insert(id.clone(), e.clone());
            }
        }
        all
    }

    /// Prometheus text exposition (`# HELP` / `# TYPE`, cumulative
    /// `_bucket{le=...}` lines for histograms). Always includes both
    /// metric classes — a scrape wants everything.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<String> = None;
        for (id, e) in self.collect() {
            if last_name.as_deref() != Some(id.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", id.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", id.name, e.metric.type_name());
                last_name = Some(id.name.clone());
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", id.render(), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", id.render(), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (i, n) in snap.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cum += n;
                        let le = bucket_upper(i).to_string();
                        let _ = writeln!(out, "{} {cum}", id.render_with_le("_bucket", &le));
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        id.render_with_le("_bucket", "+Inf"),
                        snap.count
                    );
                    let _ = writeln!(out, "{}_sum{} {}", id.name, labels_block(&id), snap.sum);
                    let _ = writeln!(out, "{}_count{} {}", id.name, labels_block(&id), snap.count);
                }
            }
        }
        out
    }

    /// A deterministically ordered JSON object: rendered metric name →
    /// value (counters, gauges) or histogram object with `count`,
    /// `sum`, `p50`/`p90`/`p99`, and the non-empty `[le, n]` buckets.
    /// With `with_timing = false`, [`MetricClass::Timing`] entries are
    /// omitted entirely — the deterministic section `cmm batch` embeds.
    pub fn to_json(&self, with_timing: bool) -> String {
        let mut out = String::from("{\n");
        let entries: Vec<(MetricId, Entry)> = self
            .collect()
            .into_iter()
            .filter(|(_, e)| with_timing || e.class == MetricClass::Deterministic)
            .collect();
        for (i, (id, e)) in entries.iter().enumerate() {
            let _ = write!(out, "  \"{}\": ", id.render().replace('"', "'"));
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let (p50, p90, p99) = snap.p50_p90_p99();
                    let _ = write!(
                        out,
                        "{{ \"count\": {}, \"sum\": {}, \"p50\": {p50}, \"p90\": {p90}, \
                         \"p99\": {p99}, \"buckets\": [",
                        snap.count, snap.sum
                    );
                    let mut first = true;
                    for (b, n) in snap.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        let _ = write!(out, "[{}, {n}]", bucket_upper(b));
                    }
                    out.push_str("] }");
                }
            }
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push('}');
        out
    }
}

/// `{k="v",...}` or the empty string — Prometheus `_sum`/`_count`
/// lines.
fn labels_block(id: &MetricId) -> String {
    if id.labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in id.labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 0..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(
                bucket_index(v + (v - 1)),
                k as usize + 1,
                "2^(k+1)-1, k={k}"
            );
            // An exact power of two opens its bucket: it is the lowest
            // value bucket k+1 covers.
            assert!(v > bucket_upper(k as usize), "2^{k} above bucket {k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(63), (1u64 << 63) - 1);
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds_within_2x() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 100, 100, 1000, 1000, 5000, 100_000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        let (p50, p90, p99) = s.p50_p90_p99();
        // True p50 = 100 (5th of 10), bucket [64,127] → upper 127.
        assert_eq!(p50, 127);
        assert!((100..200).contains(&p50));
        // True p90 = 5000, bucket [4096,8191].
        assert_eq!(p90, 8191);
        // p99 rounds up to the max observation's bucket.
        assert_eq!(p99, 131_071);
        assert!((100_000..200_000).contains(&p99));
    }

    #[test]
    fn histogram_handles_zero_and_u64_max() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.quantile(50, 100), 0);
        assert_eq!(s.quantile(99, 100), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50_p90_p99(), (0, 0, 0));
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", &[("k", "v")], "help", MetricClass::Deterministic);
        let b = r.counter("x_total", &[("k", "v")], "help", MetricClass::Deterministic);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", &[], "h", MetricClass::Deterministic);
        r.gauge("x", &[], "h", MetricClass::Deterministic);
    }

    #[test]
    fn mounted_handles_are_live_views() {
        let r = MetricsRegistry::new();
        let c = Counter::new();
        r.mount(
            "ext_total",
            &[],
            "an external counter",
            MetricClass::Deterministic,
            Metric::Counter(c.clone()),
        );
        c.add(7);
        assert!(r.to_prometheus().contains("ext_total 7"));
        assert!(r.to_json(false).contains("\"ext_total\": 7"));
    }

    #[test]
    fn json_strips_timing_class_and_orders_deterministically() {
        let r = MetricsRegistry::new();
        r.counter("b_total", &[], "b", MetricClass::Deterministic)
            .add(2);
        r.gauge("a_wall", &[], "a", MetricClass::Timing).set(99);
        let h = r.histogram(
            "c_hist",
            &[("phase", "run")],
            "c",
            MetricClass::Deterministic,
        );
        h.observe(4);
        h.observe(5);
        let stripped = r.to_json(false);
        assert!(!stripped.contains("a_wall"));
        assert!(stripped.contains("\"b_total\": 2"));
        assert!(stripped.contains("\"c_hist{phase='run'}\""));
        assert!(stripped.contains("\"p50\": 7"), "{stripped}");
        let full = r.to_json(true);
        assert!(full.contains("\"a_wall\": 99"));
        // Ordering is name-major regardless of registration order.
        let bpos = full.find("b_total").unwrap();
        let apos = full.find("a_wall").unwrap();
        let cpos = full.find("c_hist").unwrap();
        assert!(apos < bpos && bpos < cpos);
    }

    #[test]
    fn prometheus_histograms_are_cumulative_with_inf() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_ns", &[], "latency", MetricClass::Timing);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 6"));
        assert!(text.contains("lat_ns_count 3"));
    }

    #[test]
    fn concurrent_updates_from_many_threads_total_correctly() {
        let r = MetricsRegistry::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = &r;
                s.spawn(move || {
                    let c = r.counter("n_total", &[], "n", MetricClass::Deterministic);
                    let h = r.histogram("v", &[], "v", MetricClass::Deterministic);
                    for i in 0..1000 {
                        c.inc();
                        h.observe(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(
            r.counter("n_total", &[], "n", MetricClass::Deterministic)
                .get(),
            8000
        );
        let snap = r
            .histogram("v", &[], "v", MetricClass::Deterministic)
            .snapshot();
        assert_eq!(snap.count, 8000);
    }
}
