//! Chrome `trace_event` export (hand-rolled JSON — the workspace has no
//! external dependencies).
//!
//! A recorded stream becomes a JSON object loadable by `chrome://tracing`
//! or Perfetto: `B`/`E` duration events reconstruct the call tree from
//! the same shadow-stack replay the profiler uses (see
//! [`crate::metrics`]), and every exception-relevant transition — cuts,
//! yields, abnormal returns, Table 1 operations — additionally appears
//! as an instant event. Timestamps are the engine's virtual clock
//! (abstract-machine steps or VM cost units) reported as microseconds.

use crate::event::{Event, ResumeKind, RtsOp, TimedEvent};
use cmm_ir::Name;
use std::fmt::Write as _;

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
    }

    fn begin(&mut self, ts: u64, name: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"call\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":1}}",
            esc(name)
        );
    }

    fn end(&mut self, ts: u64, name: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"call\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":1}}",
            esc(name)
        );
    }

    fn instant(&mut self, ts: u64, name: &str, cat: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":1,\"tid\":1}}",
            esc(name),
        );
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

/// Renders a recorded stream as Chrome `trace_event` JSON. `entry` is
/// the procedure the run started in.
pub fn chrome_trace_json(entry: &Name, events: &[TimedEvent]) -> String {
    let mut w = Writer::new();
    let start = events.first().map(|t| t.ts).unwrap_or(0);
    let mut stack: Vec<Name> = vec![entry.clone()];
    w.begin(start, entry.as_str());
    let mut hops: u64 = 0;
    let mut cut_target: Option<Name> = None;
    let mut last_ts = start;

    for t in events {
        let ts = t.ts;
        last_ts = ts;
        match &t.event {
            Event::Call { callee, .. } => {
                w.begin(ts, callee.as_str());
                stack.push(callee.clone());
            }
            Event::TailCall { callee, .. } => {
                if let Some(top) = stack.pop() {
                    w.end(ts, top.as_str());
                }
                w.begin(ts, callee.as_str());
                stack.push(callee.clone());
            }
            Event::Return {
                proc,
                index,
                alternates,
            } => {
                if index < alternates {
                    w.instant(
                        ts,
                        &format!("return <{index}/{alternates}> {proc}"),
                        "abret",
                    );
                }
                if let Some(top) = stack.pop() {
                    w.end(ts, top.as_str());
                }
            }
            Event::CutTo { proc, target, .. } => {
                w.instant(ts, &format!("cut {proc} -> {target}"), "cut");
                truncate(&mut w, &mut stack, ts, target);
            }
            Event::ContCapture { proc, conts, .. } => {
                w.instant(ts, &format!("cont-capture {proc} x{conts}"), "cont");
            }
            Event::ContDeath { proc, .. } => {
                w.instant(ts, &format!("cont-death {proc}"), "cont");
            }
            Event::Yield { code } => {
                w.instant(ts, &format!("yield {code}"), "yield");
            }
            Event::Chaos { what } => {
                w.instant(ts, &format!("chaos {what}"), "chaos");
            }
            Event::Rts(op) => {
                w.instant(ts, &t.event.render(), "rts");
                match op {
                    RtsOp::FirstActivation { .. } => hops = 0,
                    RtsOp::NextActivation { moved: true, .. } => hops += 1,
                    RtsOp::SetCutToCont { target } => cut_target = target.clone(),
                    RtsOp::Resume { kind, ok: true } => match kind {
                        ResumeKind::Normal | ResumeKind::Unwind => {
                            for _ in 0..=hops {
                                if let Some(top) = stack.pop() {
                                    w.end(ts, top.as_str());
                                }
                            }
                        }
                        ResumeKind::Cut => {
                            if let Some(target) = cut_target.take() {
                                truncate(&mut w, &mut stack, ts, &target);
                            }
                        }
                    },
                    _ => {}
                }
            }
        }
    }

    while let Some(top) = stack.pop() {
        w.end(last_ts, top.as_str());
    }
    w.finish()
}

fn truncate(w: &mut Writer, stack: &mut Vec<Name>, ts: u64, target: &Name) {
    if stack.iter().any(|n| n == target) {
        while stack.last().is_some_and(|n| n != target) {
            let top = stack.pop().expect("guarded by is_some_and");
            w.end(ts, top.as_str());
        }
    } else {
        while let Some(top) = stack.pop() {
            w.end(ts, top.as_str());
        }
        w.begin(ts, target.as_str());
        stack.push(target.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_balanced_json() {
        let f = Name::from("f");
        let g = Name::from("g");
        let events = vec![
            TimedEvent {
                ts: 1,
                event: Event::Call {
                    caller: f.clone(),
                    callee: g.clone(),
                },
            },
            TimedEvent {
                ts: 5,
                event: Event::Yield { code: 2 },
            },
        ];
        let json = chrome_trace_json(&f, &events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "every B has an E:\n{json}");
        assert!(json.contains("yield 2"));
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
