//! Aggregation of a recorded event stream into per-procedure and
//! per-strategy metrics, and the `cmm profile` text report.
//!
//! Cost is attributed by *timestamp deltas over a shadow call stack*:
//! the stream's transfer events (call, tail call, return, cut, resume)
//! are replayed against a stack of procedure frames, and the engine
//! time elapsed between consecutive events is charged to the procedure
//! on top. This recovers per-procedure self and inclusive cost from
//! the timestamps alone — no per-instruction events exist, so tracing
//! stays cheap even when recording.
//!
//! The resumption bookkeeping mirrors the Table 1 dispatcher protocol:
//! a successful `Resume` at the activation chosen after `k` successful
//! `NextActivation` hops discards `k + 1` shadow frames (the `yield`
//! pseudo-procedure plus the activations walked past), and a cut-class
//! `Resume` truncates to the procedure named by the preceding
//! `SetCutToCont`. Programs that go wrong mid-flight simply leave
//! frames open; they are flushed at the final timestamp.

use crate::event::{Event, ResumeKind, RtsOp, TimedEvent};
use crate::sink::EventCounts;
use cmm_ir::Name;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Power-of-two histogram buckets for per-invocation self cost.
pub const HIST_BUCKETS: usize = 17;

/// Metrics for one procedure.
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    /// Times entered (by call or tail call).
    pub entries: u64,
    /// Returns executed by this procedure.
    pub returns: u64,
    /// Of those, abnormal (branch-table arm below the normal one).
    pub abnormal_returns: u64,
    /// `cut to` transfers executed by this procedure.
    pub cuts_out: u64,
    /// Cuts that landed in a continuation of this procedure.
    pub cuts_in: u64,
    /// Engine time spent with this procedure on top of the shadow
    /// stack.
    pub self_cost: u64,
    /// Engine time spent with this procedure anywhere on the shadow
    /// stack (counted once per procedure per interval).
    pub total_cost: u64,
    /// Histogram of per-invocation self cost: bucket `i` counts
    /// invocations with self cost in `[2^(i-1), 2^i)` (bucket 0 is
    /// zero-cost invocations).
    pub hist: [u64; HIST_BUCKETS],
}

impl ProcStats {
    fn finish_invocation(&mut self, self_cost: u64) {
        let bucket = match self_cost {
            0 => 0,
            c => ((u64::BITS - c.leading_zeros()) as usize).min(HIST_BUCKETS - 1),
        };
        self.hist[bucket] += 1;
    }
}

/// Per-strategy dispatch counters: how often each of the paper's
/// exception-implementation mechanisms fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrategyCounts {
    /// `cut to` transfers plus cut-class resumptions.
    pub cuts: u64,
    /// Table 1 unwind-walk hops (successful `NextActivation`s).
    pub unwind_hops: u64,
    /// Unwind-class resumptions.
    pub unwind_resumes: u64,
    /// Abnormal returns through a Figure 3/4 branch-table arm.
    pub abnormal_returns: u64,
    /// Normal-class resumptions.
    pub normal_resumes: u64,
}

impl StrategyCounts {
    /// Folds one event into the counters. Every increment is a pure
    /// function of the single event, so a streaming sink (the flight
    /// recorder) and the replay in [`Profile::build`] share this one
    /// classification — there is exactly one definition of what counts
    /// as, say, an unwind hop.
    pub fn record(&mut self, e: &Event) {
        match e {
            Event::Return {
                index, alternates, ..
            } if index < alternates => self.abnormal_returns += 1,
            Event::CutTo { .. } => self.cuts += 1,
            Event::Rts(RtsOp::NextActivation { moved: true, .. }) => self.unwind_hops += 1,
            Event::Rts(RtsOp::Resume { kind, ok: true }) => match kind {
                ResumeKind::Normal => self.normal_resumes += 1,
                ResumeKind::Unwind => self.unwind_resumes += 1,
                ResumeKind::Cut => self.cuts += 1,
            },
            _ => {}
        }
    }
}

/// The aggregated profile of one run.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-procedure metrics, keyed by name.
    pub procs: BTreeMap<Name, ProcStats>,
    /// Raw event counters.
    pub counts: EventCounts,
    /// Per-strategy dispatch counters.
    pub strategies: StrategyCounts,
    /// Table 1 operation counts, keyed by operation name.
    pub rts_ops: BTreeMap<&'static str, u64>,
    /// Total engine time covered by the stream (last timestamp minus
    /// first).
    pub total_cost: u64,
}

/// One shadow frame.
struct ShadowFrame {
    name: Name,
    self_cost: u64,
}

impl Profile {
    /// Replays a recorded stream, attributing cost as described in the
    /// module documentation. `entry` is the procedure the run started
    /// in (events alone cannot name it).
    pub fn build(entry: &Name, events: &[TimedEvent]) -> Profile {
        let mut p = Profile::default();
        let mut stack = vec![ShadowFrame {
            name: entry.clone(),
            self_cost: 0,
        }];
        p.procs.entry(entry.clone()).or_default().entries += 1;
        // Both engine clocks start at zero, so the interval before the
        // first event belongs to the entry procedure.
        let mut prev_ts = 0u64;
        let mut hops: u64 = 0;
        let mut cut_target: Option<Name> = None;

        for t in events {
            // Charge the elapsed interval to the current stack.
            let delta = t.ts.saturating_sub(prev_ts);
            prev_ts = t.ts;
            if delta > 0 {
                if let Some(top) = stack.last_mut() {
                    top.self_cost += delta;
                    p.procs.entry(top.name.clone()).or_default().self_cost += delta;
                }
                let mut seen: Vec<&Name> = Vec::with_capacity(stack.len());
                for f in &stack {
                    if !seen.contains(&&f.name) {
                        seen.push(&f.name);
                        p.procs.entry(f.name.clone()).or_default().total_cost += delta;
                    }
                }
            }

            p.counts.record(&t.event);
            p.strategies.record(&t.event);
            match &t.event {
                Event::Call { callee, .. } => {
                    p.procs.entry(callee.clone()).or_default().entries += 1;
                    stack.push(ShadowFrame {
                        name: callee.clone(),
                        self_cost: 0,
                    });
                }
                Event::TailCall { callee, .. } => {
                    Self::pop(&mut p, &mut stack);
                    p.procs.entry(callee.clone()).or_default().entries += 1;
                    stack.push(ShadowFrame {
                        name: callee.clone(),
                        self_cost: 0,
                    });
                }
                Event::Return {
                    proc,
                    index,
                    alternates,
                } => {
                    let st = p.procs.entry(proc.clone()).or_default();
                    st.returns += 1;
                    if index < alternates {
                        st.abnormal_returns += 1;
                    }
                    Self::pop(&mut p, &mut stack);
                }
                Event::CutTo { proc, target, .. } => {
                    p.procs.entry(proc.clone()).or_default().cuts_out += 1;
                    p.procs.entry(target.clone()).or_default().cuts_in += 1;
                    Self::truncate_to(&mut p, &mut stack, target);
                }
                Event::Yield { .. } => {}
                Event::ContCapture { .. } | Event::ContDeath { .. } | Event::Chaos { .. } => {}
                Event::Rts(op) => {
                    *p.rts_ops.entry(op.name()).or_default() += 1;
                    match op {
                        RtsOp::FirstActivation { .. } => hops = 0,
                        RtsOp::NextActivation { moved: true, .. } => hops += 1,
                        RtsOp::SetCutToCont { target } => cut_target = target.clone(),
                        RtsOp::Resume { kind, ok: true } => match kind {
                            ResumeKind::Normal | ResumeKind::Unwind => {
                                for _ in 0..=hops {
                                    Self::pop(&mut p, &mut stack);
                                }
                            }
                            ResumeKind::Cut => {
                                if let Some(target) = cut_target.take() {
                                    Self::truncate_to(&mut p, &mut stack, &target);
                                }
                            }
                        },
                        _ => {}
                    }
                }
            }
        }

        while !stack.is_empty() {
            Self::pop(&mut p, &mut stack);
        }
        p.total_cost = prev_ts;
        p
    }

    fn pop(p: &mut Profile, stack: &mut Vec<ShadowFrame>) {
        if let Some(f) = stack.pop() {
            p.procs
                .entry(f.name)
                .or_default()
                .finish_invocation(f.self_cost);
        }
    }

    fn truncate_to(p: &mut Profile, stack: &mut Vec<ShadowFrame>, target: &Name) {
        if stack.iter().any(|f| &f.name == target) {
            while stack.last().is_some_and(|f| &f.name != target) {
                Self::pop(p, stack);
            }
        } else {
            while !stack.is_empty() {
                Self::pop(p, stack);
            }
            p.procs.entry(target.clone()).or_default().entries += 1;
            stack.push(ShadowFrame {
                name: target.clone(),
                self_cost: 0,
            });
        }
    }

    /// The `cmm profile` text report.
    pub fn report(&self, clock_label: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "total cost: {} {clock_label}", self.total_cost);
        let c = &self.counts;
        let _ = writeln!(
            out,
            "transfers: {} calls, {} tail calls, {} returns ({} abnormal), {} cuts, {} yields",
            c.calls, c.tail_calls, c.returns, c.abnormal_returns, c.cuts, c.yields
        );
        let s = &self.strategies;
        let _ = writeln!(
            out,
            "strategies: cut x{}, unwind x{} ({} hops), abnormal-return x{}, normal-resume x{}",
            s.cuts, s.unwind_resumes, s.unwind_hops, s.abnormal_returns, s.normal_resumes
        );
        if self.rts_ops.is_empty() {
            let _ = writeln!(out, "runtime interface (Table 1): no calls");
        } else {
            let _ = writeln!(out, "runtime interface (Table 1):");
            for (name, n) in &self.rts_ops {
                let _ = writeln!(out, "  {name:<16} x{n}");
            }
        }
        let _ = writeln!(out, "per procedure:");
        let _ = writeln!(
            out,
            "  {:<20} {:>7} {:>7} {:>5} {:>5} {:>5} {:>10} {:>10}  cost-histogram",
            "name", "entries", "rets", "abn", "cut>", ">cut", "self", "total"
        );
        let mut rows: Vec<(&Name, &ProcStats)> = self.procs.iter().collect();
        rows.sort_by(|a, b| b.1.self_cost.cmp(&a.1.self_cost).then(a.0.cmp(b.0)));
        for (name, st) in rows {
            let mut hist = String::new();
            for (i, n) in st.hist.iter().enumerate() {
                if *n > 0 {
                    if !hist.is_empty() {
                        hist.push(' ');
                    }
                    let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    let _ = write!(hist, "{lo}+:{n}");
                }
            }
            let _ = writeln!(
                out,
                "  {:<20} {:>7} {:>7} {:>5} {:>5} {:>5} {:>10} {:>10}  {}",
                name.as_str(),
                st.entries,
                st.returns,
                st.abnormal_returns,
                st.cuts_out,
                st.cuts_in,
                st.self_cost,
                st.total_cost,
                hist
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, event: Event) -> TimedEvent {
        TimedEvent { ts, event }
    }

    #[test]
    fn call_return_attributes_self_cost() {
        let f = Name::from("f");
        let g = Name::from("g");
        let events = vec![
            ev(
                2,
                Event::Call {
                    caller: f.clone(),
                    callee: g.clone(),
                },
            ),
            ev(
                7,
                Event::Return {
                    proc: g.clone(),
                    index: 0,
                    alternates: 0,
                },
            ),
            ev(
                10,
                Event::Return {
                    proc: f.clone(),
                    index: 0,
                    alternates: 0,
                },
            ),
        ];
        let p = Profile::build(&f, &events);
        assert_eq!(p.procs[&g].self_cost, 5);
        assert_eq!(p.procs[&f].self_cost, 5);
        assert_eq!(p.procs[&f].total_cost, 10);
        assert_eq!(p.procs[&f].entries, 1);
        assert_eq!(p.procs[&g].entries, 1);
        assert_eq!(p.total_cost, 10);
    }

    #[test]
    fn cut_truncates_the_shadow_stack() {
        let f = Name::from("f");
        let g = Name::from("g");
        let events = vec![
            ev(
                1,
                Event::Call {
                    caller: f.clone(),
                    callee: g.clone(),
                },
            ),
            ev(
                4,
                Event::CutTo {
                    proc: g.clone(),
                    target: f.clone(),
                    killed_saves: 1,
                },
            ),
            ev(
                9,
                Event::Return {
                    proc: f.clone(),
                    index: 0,
                    alternates: 0,
                },
            ),
        ];
        let p = Profile::build(&f, &events);
        assert_eq!(p.strategies.cuts, 1);
        assert_eq!(p.procs[&g].cuts_out, 1);
        assert_eq!(p.procs[&f].cuts_in, 1);
        // After the cut, the remaining 5 units belong to f again.
        assert_eq!(p.procs[&f].self_cost, 1 + 5);
        assert_eq!(p.total_cost, 9);
    }

    #[test]
    fn report_is_renderable() {
        let f = Name::from("f");
        let p = Profile::build(&f, &[ev(0, Event::Yield { code: 3 })]);
        let r = p.report("steps");
        assert!(r.contains("per procedure"));
        assert!(r.contains("yields"));
    }
}
