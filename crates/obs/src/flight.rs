//! The flight recorder: a bounded ring-buffer [`TraceSink`] that
//! retains the *last N* events of a run with fixed allocation, plus
//! running tallies over the whole stream.
//!
//! A batch service cannot afford a full
//! [`RecordingSink`](crate::sink::RecordingSink) per job — an
//! adversarial job emits millions of
//! events — but "job 17 ended Wrong" with nothing else is not
//! actionable either. The flight recorder is the middle ground: the
//! ring holds the final control transfers (the part of the stream a
//! post-mortem actually reads), while counters, per-strategy dispatch
//! figures, Table 1 op tallies, and chaos/governor tallies cover the
//! whole run in constant memory. When a job ends in Wrong, a panic, an
//! injected chaos fault, or a governor trip, [`FlightRecorder::dump`]
//! renders the post-mortem artifact.
//!
//! [`SharedFlight`] is the handle form: a clone-able `Rc<RefCell<..>>`
//! sink the batch layer passes into an engine while keeping its own
//! handle, so the recording survives even if the engine panics out
//! from under the sink.

use crate::event::{Event, RtsOp, TimedEvent};
use crate::metrics::StrategyCounts;
use crate::sink::{EventCounts, TraceSink};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Table 1 operation names, in a fixed index order (the
/// [`FlightRecorder::rts_ops`] table).
pub const RTS_OP_NAMES: [&str; 8] = [
    "FirstActivation",
    "NextActivation",
    "SetActivation",
    "SetUnwindCont",
    "SetCutToCont",
    "FindContParam",
    "Resume",
    "GetDescriptor",
];

fn rts_op_index(op: &RtsOp) -> usize {
    match op {
        RtsOp::FirstActivation { .. } => 0,
        RtsOp::NextActivation { .. } => 1,
        RtsOp::SetActivation { .. } => 2,
        RtsOp::SetUnwindCont { .. } => 3,
        RtsOp::SetCutToCont { .. } => 4,
        RtsOp::FindContParam { .. } => 5,
        RtsOp::Resume { .. } => 6,
        RtsOp::GetDescriptor { .. } => 7,
    }
}

/// A bounded last-N event recorder with whole-stream tallies. See the
/// module docs.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    /// Ring capacity (fixed at construction; the ring never grows past
    /// it).
    cap: usize,
    ring: Vec<TimedEvent>,
    /// Next write slot once the ring is full (also the index of the
    /// oldest retained event).
    head: usize,
    /// Events ever observed (retained + overwritten).
    total: u64,
    /// Whole-stream event counters.
    pub counts: EventCounts,
    /// Whole-stream per-strategy dispatch counters.
    pub strategy: StrategyCounts,
    /// Whole-stream Table 1 op tallies, indexed per [`RTS_OP_NAMES`].
    pub rts_ops: [u64; 8],
    /// Chaos interventions by description with the invocation ordinal
    /// stripped: `"fault resume #2"` tallies under `"fault resume"`,
    /// `"limit stack-depth"` under itself. Bounded by the op/resource
    /// vocabulary, not the run length.
    pub chaos_tally: BTreeMap<String, u64>,
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` events (`cap` is clamped to
    /// at least 1 so a dump always has the final event).
    pub fn new(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            ring: Vec::with_capacity(cap),
            head: 0,
            total: 0,
            counts: EventCounts::default(),
            strategy: StrategyCounts::default(),
            rts_ops: [0; 8],
            chaos_tally: BTreeMap::new(),
        }
    }

    /// Folds one event in: tallies always, ring slot overwritten
    /// wraparound-style once full.
    pub fn record(&mut self, now: u64, e: Event) {
        self.total += 1;
        self.counts.record(&e);
        self.strategy.record(&e);
        match &e {
            Event::Rts(op) => self.rts_ops[rts_op_index(op)] += 1,
            Event::Chaos { what } => {
                // Strip the per-injection ordinal (`#n`) so the tally
                // key set stays bounded.
                let key = match what.find(" #") {
                    Some(cut) => &what[..cut],
                    None => what.as_str(),
                };
                *self.chaos_tally.entry(key.to_string()).or_default() += 1;
            }
            _ => {}
        }
        let t = TimedEvent { ts: now, event: e };
        if self.ring.len() < self.cap {
            self.ring.push(t);
        } else {
            self.ring[self.head] = t;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Events ever observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Injected Table 1 faults observed (chaos `fault` events).
    pub fn chaos_faults(&self) -> u64 {
        self.tally_with_prefix("fault ")
    }

    /// Resource-governor limit trips observed (chaos `limit` events).
    pub fn governor_trips(&self) -> u64 {
        self.tally_with_prefix("limit ")
    }

    fn tally_with_prefix(&self, prefix: &str) -> u64 {
        self.chaos_tally
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, n)| n)
            .sum()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() < self.cap {
            out.extend_from_slice(&self.ring);
        } else {
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
        }
        out
    }

    /// The post-mortem text: a header, the whole-stream tallies, and
    /// the retained tail of the event stream.
    pub fn dump(&self, header: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== flight recorder post-mortem ===");
        let _ = writeln!(out, "{header}");
        let c = &self.counts;
        let _ = writeln!(
            out,
            "events: {} total ({} retained, {} dropped)",
            self.total,
            self.ring.len(),
            self.dropped()
        );
        let _ = writeln!(
            out,
            "counts: {} calls, {} tail calls, {} returns ({} abnormal), {} cuts, \
             {} yields, {} rts ops, {} chaos",
            c.calls,
            c.tail_calls,
            c.returns,
            c.abnormal_returns,
            c.cuts,
            c.yields,
            c.rts_ops,
            c.chaos_events
        );
        let s = &self.strategy;
        let _ = writeln!(
            out,
            "strategies: cut x{}, unwind x{} ({} hops), abnormal-return x{}, normal-resume x{}",
            s.cuts, s.unwind_resumes, s.unwind_hops, s.abnormal_returns, s.normal_resumes
        );
        if self.rts_ops.iter().any(|&n| n > 0) {
            let mut line = String::from("table1:");
            for (name, n) in RTS_OP_NAMES.iter().zip(self.rts_ops.iter()) {
                if *n > 0 {
                    let _ = write!(line, " {name} x{n}");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        for (what, n) in &self.chaos_tally {
            let _ = writeln!(out, "chaos: {what} x{n}");
        }
        let _ = writeln!(out, "--- final {} event(s) ---", self.ring.len());
        for t in self.events() {
            let _ = writeln!(out, "{:>12}  {}", t.ts, t.event.render());
        }
        out
    }
}

impl TraceSink for FlightRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn event(&mut self, now: u64, e: Event) {
        self.record(now, e);
    }
}

/// A clone-able handle to one [`FlightRecorder`], usable as the engine
/// sink while the caller keeps a second handle for the post-mortem.
/// `Rc`-based: a recorder serves one job on one worker thread.
#[derive(Clone, Debug)]
pub struct SharedFlight(pub Rc<RefCell<FlightRecorder>>);

impl SharedFlight {
    /// A fresh recorder behind a shared handle.
    pub fn new(cap: usize) -> SharedFlight {
        SharedFlight(Rc::new(RefCell::new(FlightRecorder::new(cap))))
    }

    /// Reads through the handle.
    pub fn with<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> R {
        f(&self.0.borrow())
    }
}

impl TraceSink for SharedFlight {
    const ENABLED: bool = true;

    #[inline]
    fn event(&mut self, now: u64, e: Event) {
        self.0.borrow_mut().record(now, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_ir::Name;

    fn yield_ev(code: u64) -> Event {
        Event::Yield { code }
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent_events() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(i, yield_ev(i));
        }
        assert_eq!(fr.total(), 10);
        assert_eq!(fr.dropped(), 6);
        let tail: Vec<u64> = fr.events().iter().map(|t| t.ts).collect();
        assert_eq!(tail, vec![6, 7, 8, 9]);
        // Tallies cover the whole stream, not just the ring.
        assert_eq!(fr.counts.yields, 10);
    }

    #[test]
    fn ring_boundary_cases() {
        // Exactly at capacity: nothing dropped, order preserved.
        let mut fr = FlightRecorder::new(3);
        for i in 0..3u64 {
            fr.record(i, yield_ev(i));
        }
        assert_eq!(fr.dropped(), 0);
        assert_eq!(
            fr.events().iter().map(|t| t.ts).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // One past capacity: oldest gone.
        fr.record(3, yield_ev(3));
        assert_eq!(
            fr.events().iter().map(|t| t.ts).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Zero capacity clamps to one.
        let mut fr = FlightRecorder::new(0);
        fr.record(1, yield_ev(1));
        fr.record(2, yield_ev(2));
        assert_eq!(fr.events().len(), 1);
        assert_eq!(fr.events()[0].ts, 2);
    }

    #[test]
    fn tallies_classify_chaos_and_table1() {
        let mut fr = FlightRecorder::new(8);
        fr.record(
            0,
            Event::Rts(RtsOp::Resume {
                kind: crate::event::ResumeKind::Unwind,
                ok: true,
            }),
        );
        fr.record(
            1,
            Event::Chaos {
                what: "fault resume #2".into(),
            },
        );
        fr.record(
            2,
            Event::Chaos {
                what: "fault resume #5".into(),
            },
        );
        fr.record(
            3,
            Event::Chaos {
                what: "limit stack-depth".into(),
            },
        );
        assert_eq!(fr.rts_ops[6], 1);
        assert_eq!(fr.strategy.unwind_resumes, 1);
        assert_eq!(fr.chaos_faults(), 2);
        assert_eq!(fr.governor_trips(), 1);
        assert_eq!(fr.chaos_tally["fault resume"], 2);
    }

    #[test]
    fn dump_contains_header_tallies_and_tail() {
        let mut fr = FlightRecorder::new(2);
        fr.record(
            0,
            Event::Call {
                caller: Name::from("f"),
                callee: Name::from("g"),
            },
        );
        for i in 1..5u64 {
            fr.record(i, yield_ev(i));
        }
        let text = fr.dump("job 17 [vm] ended wrong");
        assert!(text.contains("job 17 [vm] ended wrong"));
        assert!(text.contains("5 total (2 retained, 3 dropped)"));
        assert!(text.contains("yield 4"), "{text}");
        assert!(!text.contains("yield 1"), "dropped event resurfaced");
    }

    #[test]
    fn shared_handle_survives_a_panicking_user() {
        let flight = SharedFlight::new(4);
        let mut sink = flight.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sink.event(1, yield_ev(1));
            panic!("engine died");
        }));
        assert!(r.is_err());
        assert_eq!(flight.with(|fr| fr.total()), 1);
    }
}
