//! The structured event vocabulary shared by every engine.
//!
//! One event is emitted per *exception-relevant transition*: calls and
//! returns (normal and abnormal, with the chosen branch-table arm),
//! `cut to` transfers, continuation capture and death, suspensions, and
//! every Table 1 operation the front-end run-time system performs on a
//! suspended thread. Ordinary straight-line execution (assignments,
//! branches) emits nothing — cost shows up only in the timestamps
//! carried by [`TimedEvent`], which are the abstract machine's step
//! counter or the VM's cost-model total.
//!
//! Two engines over the same program must produce the same *exception
//! projection* (see [`projection`]) even though their private detail
//! differs: the abstract machine knows continuation uids and killed
//! callee-saves sets, while the VM knows neither; the VM counts cost in
//! model units, the semantics in transitions. The projection keeps
//! exactly the engine-independent part, and `tests/trace_equivalence.rs`
//! holds all four engines to it.

use cmm_ir::Name;

/// Which continuation class a `Resume` re-enters (§5.2's three `Yield`
/// rules).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResumeKind {
    /// The normal return point of the chosen activation.
    Normal,
    /// An `also unwinds to` continuation chosen by `SetUnwindCont`.
    Unwind,
    /// A continuation value chosen by `SetCutToCont` (callee-saves not
    /// restored).
    Cut,
}

impl ResumeKind {
    /// A short stable label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            ResumeKind::Normal => "normal",
            ResumeKind::Unwind => "unwind",
            ResumeKind::Cut => "cut",
        }
    }
}

/// One Table 1 run-time-interface operation, as observed at the
/// dispatcher layer (`cmm-rt`'s `Thread` or `cmm-vm`'s `VmThread`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtsOp {
    /// `FirstActivation`: the activation that called `yield`, if the
    /// thread is suspended with a non-empty stack.
    FirstActivation {
        /// The procedure of that activation.
        proc: Option<Name>,
    },
    /// `NextActivation`: one hop toward the caller.
    NextActivation {
        /// Whether the walk moved (false at the stack bottom).
        moved: bool,
        /// The procedure of the new activation, when it moved.
        proc: Option<Name>,
    },
    /// `SetActivation`: choose an activation to resume, discarding
    /// everything above it.
    SetActivation {
        /// Whether the choice was accepted.
        ok: bool,
    },
    /// `SetUnwindCont(n)`: choose the `n`-th `also unwinds to`
    /// continuation of the chosen activation.
    SetUnwindCont {
        /// The requested continuation index.
        index: u32,
        /// Whether the site has such a continuation.
        ok: bool,
    },
    /// `SetCutToCont(k)`: choose a continuation *value* to cut to.
    SetCutToCont {
        /// The procedure owning the continuation, when decodable.
        target: Option<Name>,
    },
    /// `FindContParam(n)`: locate the `n`-th parameter slot of the
    /// chosen continuation.
    FindContParam {
        /// The requested parameter index.
        index: u32,
        /// Whether such a parameter exists.
        found: bool,
    },
    /// `Resume`: re-enter the thread at the chosen continuation.
    Resume {
        /// Which continuation class is re-entered.
        kind: ResumeKind,
        /// Whether the resumption succeeded.
        ok: bool,
    },
    /// `GetDescriptor(n)`: read the `n`-th span descriptor of an
    /// activation's call site.
    GetDescriptor {
        /// The requested descriptor index.
        index: u32,
        /// Whether the site carries that many descriptors.
        found: bool,
    },
}

impl RtsOp {
    /// The Table 1 operation name.
    pub fn name(&self) -> &'static str {
        match self {
            RtsOp::FirstActivation { .. } => "FirstActivation",
            RtsOp::NextActivation { .. } => "NextActivation",
            RtsOp::SetActivation { .. } => "SetActivation",
            RtsOp::SetUnwindCont { .. } => "SetUnwindCont",
            RtsOp::SetCutToCont { .. } => "SetCutToCont",
            RtsOp::FindContParam { .. } => "FindContParam",
            RtsOp::Resume { .. } => "Resume",
            RtsOp::GetDescriptor { .. } => "GetDescriptor",
        }
    }
}

/// One exception-relevant transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// A `Call` node / `call` instruction transferred to `callee`.
    Call {
        /// The calling procedure.
        caller: Name,
        /// The procedure entered.
        callee: Name,
    },
    /// A `Jump` node / tail-call transfer: the caller's activation is
    /// replaced, not stacked.
    TailCall {
        /// The jumping procedure.
        caller: Name,
        /// The procedure entered.
        callee: Name,
    },
    /// A `return <index/alternates>`: `index == alternates` is the
    /// normal return, anything smaller an abnormal return through the
    /// Figure 3/4 branch table.
    Return {
        /// The returning procedure.
        proc: Name,
        /// The chosen branch-table arm.
        index: u32,
        /// The call site's alternate count.
        alternates: u32,
    },
    /// A `cut to` transfer (constant-time strategy).
    CutTo {
        /// The cutting procedure.
        proc: Name,
        /// The procedure owning the target continuation.
        target: Name,
        /// Callee-saves bindings killed by the cut (abstract machine
        /// only; the VM reports 0 — excluded from the projection).
        killed_saves: u32,
    },
    /// A procedure entry bound fresh continuation values (abstract
    /// machine only).
    ContCapture {
        /// The procedure whose continuations were captured.
        proc: Name,
        /// The activation uid baked into the continuation values.
        uid: u64,
        /// How many continuations were bound.
        conts: u32,
    },
    /// An activation holding captured continuations was discarded
    /// abnormally — its continuations are now dead (abstract machine
    /// only).
    ContDeath {
        /// The discarded activation's procedure.
        proc: Name,
        /// Its uid.
        uid: u64,
    },
    /// Control reached `yield`: the front-end run-time system takes
    /// over.
    Yield {
        /// The first `yield` argument (the service code).
        code: u64,
    },
    /// A Table 1 operation.
    Rts(RtsOp),
    /// A `cmm-chaos` intervention: an injected Table 1 fault or a
    /// resource-governor limit trip. Instrumentation, not semantics —
    /// excluded from the projection (governor trips are expressed in
    /// engine-family units and need not align across families).
    Chaos {
        /// What was injected or tripped, e.g. `"fault resume #2"` or
        /// `"limit stack-depth"`.
        what: String,
    },
}

impl Event {
    /// Whether this event is part of the engine-independent exception
    /// projection (see the module documentation).
    pub fn in_projection(&self) -> bool {
        !matches!(
            self,
            Event::ContCapture { .. } | Event::ContDeath { .. } | Event::Chaos { .. }
        )
    }

    /// A canonical one-line rendering. Projection-relevant fields only:
    /// engine-private detail (uids, killed callee-saves counts) is kept
    /// out so the same line compares equal across engines.
    pub fn render(&self) -> String {
        match self {
            Event::Call { caller, callee } => format!("call {caller} -> {callee}"),
            Event::TailCall { caller, callee } => format!("tail {caller} -> {callee}"),
            Event::Return {
                proc,
                index,
                alternates,
            } => format!("return {proc} <{index}/{alternates}>"),
            Event::CutTo { proc, target, .. } => format!("cut {proc} -> {target}"),
            Event::ContCapture { proc, conts, .. } => {
                format!("cont-capture {proc} ({conts})")
            }
            Event::ContDeath { proc, .. } => format!("cont-death {proc}"),
            Event::Yield { code } => format!("yield {code}"),
            Event::Rts(op) => match op {
                RtsOp::FirstActivation { proc } => match proc {
                    Some(p) => format!("rts FirstActivation -> {p}"),
                    None => "rts FirstActivation -> none".into(),
                },
                RtsOp::NextActivation { moved, proc } => match (moved, proc) {
                    (true, Some(p)) => format!("rts NextActivation -> {p}"),
                    _ => "rts NextActivation -> bottom".into(),
                },
                RtsOp::SetActivation { ok } => format!("rts SetActivation ok={ok}"),
                RtsOp::SetUnwindCont { index, ok } => {
                    format!("rts SetUnwindCont {index} ok={ok}")
                }
                RtsOp::SetCutToCont { target } => match target {
                    Some(p) => format!("rts SetCutToCont -> {p}"),
                    None => "rts SetCutToCont -> dead".into(),
                },
                RtsOp::FindContParam { index, found } => {
                    format!("rts FindContParam {index} found={found}")
                }
                RtsOp::Resume { kind, ok } => {
                    format!("rts Resume {} ok={ok}", kind.label())
                }
                RtsOp::GetDescriptor { index, found } => {
                    format!("rts GetDescriptor {index} found={found}")
                }
            },
            Event::Chaos { what } => format!("chaos {what}"),
        }
    }
}

/// An event with the emitting engine's timestamp: the abstract
/// machine's transition count or the VM's cost-model total at emission.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimedEvent {
    /// Engine time at emission.
    pub ts: u64,
    /// What happened.
    pub event: Event,
}

/// The engine-independent exception projection of an event stream:
/// the canonical rendering of every projection-relevant event, in
/// order, timestamps dropped. Two engines running the same program
/// under the same dispatcher policy must produce equal projections.
pub fn projection(events: &[TimedEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|t| t.event.in_projection())
        .map(|t| t.event.render())
        .collect()
}

/// The first index at which two projections differ, if any: `Ok(())`
/// when equal, or `Err((index, left-line, right-line))` where a missing
/// line reads `"<end of stream>"`.
#[allow(clippy::type_complexity)]
pub fn first_divergence(a: &[String], b: &[String]) -> Result<(), (usize, String, String)> {
    let end = || "<end of stream>".to_string();
    for i in 0..a.len().max(b.len()) {
        let la = a.get(i);
        let lb = b.get(i);
        if la != lb {
            return Err((
                i,
                la.cloned().unwrap_or_else(end),
                lb.cloned().unwrap_or_else(end),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_drops_engine_private_events() {
        let events = vec![
            TimedEvent {
                ts: 0,
                event: Event::ContCapture {
                    proc: Name::from("f"),
                    uid: 1,
                    conts: 2,
                },
            },
            TimedEvent {
                ts: 1,
                event: Event::Yield { code: 9 },
            },
        ];
        assert_eq!(projection(&events), vec!["yield 9".to_string()]);
    }

    #[test]
    fn cut_rendering_hides_killed_saves() {
        let a = Event::CutTo {
            proc: Name::from("g"),
            target: Name::from("f"),
            killed_saves: 3,
        };
        let b = Event::CutTo {
            proc: Name::from("g"),
            target: Name::from("f"),
            killed_saves: 0,
        };
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn first_divergence_reports_position() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["x".to_string()];
        let (i, la, lb) = first_divergence(&a, &b).unwrap_err();
        assert_eq!((i, la.as_str(), lb.as_str()), (1, "y", "<end of stream>"));
        assert!(first_divergence(&a, &a).is_ok());
    }
}
