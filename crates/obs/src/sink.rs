//! Trace sinks: where engines send their events.
//!
//! Every engine is generic over a sink type, defaulting to [`NopSink`].
//! The contract that makes tracing free when disabled is the associated
//! constant [`TraceSink::ENABLED`]: engines guard every emission —
//! *including payload construction* — with `if S::ENABLED { ... }`, so
//! monomorphizing with `NopSink` deletes the whole branch at compile
//! time. The perf trajectory's instruction counts (and its CI gate)
//! double as the zero-overhead guard: they are measured through the
//! default `NopSink` instantiation and must not move when the tracing
//! layer changes.

use crate::event::{Event, TimedEvent};

/// A consumer of trace events. See the module documentation for the
/// zero-cost contract.
pub trait TraceSink {
    /// Whether this sink wants events at all. Engines skip event
    /// construction entirely when this is `false`, so it must be a
    /// compile-time constant, not a runtime flag.
    const ENABLED: bool;

    /// Receives one event. `now` is the emitting engine's clock: the
    /// abstract machine's transition count or the VM's cost-model
    /// total.
    fn event(&mut self, now: u64, e: Event);
}

/// The default sink: compiled away entirely.
#[derive(Clone, Copy, Default, Debug)]
pub struct NopSink;

impl TraceSink for NopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _now: u64, _e: Event) {}
}

/// Records every event with its timestamp, up to a cap (a runaway
/// program cannot exhaust memory through its trace).
#[derive(Clone, Debug)]
pub struct RecordingSink {
    /// The recorded stream, in emission order.
    pub events: Vec<TimedEvent>,
    /// Maximum events retained.
    pub cap: usize,
    /// Events dropped after the cap was reached.
    pub dropped: u64,
}

impl RecordingSink {
    /// A sink retaining at most `cap` events.
    pub fn with_cap(cap: usize) -> RecordingSink {
        RecordingSink {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }
}

impl Default for RecordingSink {
    /// A generous default cap: plenty for any figure workload or
    /// difftest case, bounded for adversarial ones.
    fn default() -> RecordingSink {
        RecordingSink::with_cap(1_000_000)
    }
}

impl TraceSink for RecordingSink {
    const ENABLED: bool = true;

    fn event(&mut self, now: u64, e: Event) {
        if self.events.len() < self.cap {
            self.events.push(TimedEvent { ts: now, event: e });
        } else {
            self.dropped += 1;
        }
    }
}

/// Aggregate counters over an event stream — what the perf trajectory
/// records next to instruction counts.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct EventCounts {
    /// `Call` transfers.
    pub calls: u64,
    /// `Jump` (tail-call) transfers.
    pub tail_calls: u64,
    /// All returns.
    pub returns: u64,
    /// Returns through a branch-table arm other than the normal one.
    pub abnormal_returns: u64,
    /// `cut to` transfers.
    pub cuts: u64,
    /// Suspensions into the run-time system.
    pub yields: u64,
    /// Table 1 operations.
    pub rts_ops: u64,
    /// Continuation captures (abstract machine only).
    pub cont_captures: u64,
    /// Continuation deaths (abstract machine only).
    pub cont_deaths: u64,
    /// Chaos interventions: injected Table 1 faults and governor limit
    /// trips (zero outside chaos runs).
    pub chaos_events: u64,
}

impl EventCounts {
    /// Folds one event into the counters.
    pub fn record(&mut self, e: &Event) {
        match e {
            Event::Call { .. } => self.calls += 1,
            Event::TailCall { .. } => self.tail_calls += 1,
            Event::Return {
                index, alternates, ..
            } => {
                self.returns += 1;
                if index < alternates {
                    self.abnormal_returns += 1;
                }
            }
            Event::CutTo { .. } => self.cuts += 1,
            Event::ContCapture { .. } => self.cont_captures += 1,
            Event::ContDeath { .. } => self.cont_deaths += 1,
            Event::Yield { .. } => self.yields += 1,
            Event::Rts(_) => self.rts_ops += 1,
            Event::Chaos { .. } => self.chaos_events += 1,
        }
    }

    /// Counters for a recorded stream.
    pub fn of(events: &[TimedEvent]) -> EventCounts {
        let mut c = EventCounts::default();
        for t in events {
            c.record(&t.event);
        }
        c
    }
}

/// Counts events without retaining them: constant memory, suitable for
/// benchmark instrumentation runs.
#[derive(Clone, Copy, Default, Debug)]
pub struct CountingSink {
    /// The running totals.
    pub counts: EventCounts,
}

impl TraceSink for CountingSink {
    const ENABLED: bool = true;

    #[inline]
    fn event(&mut self, _now: u64, e: Event) {
        self.counts.record(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_ir::Name;

    #[test]
    fn recording_sink_caps_and_counts_drops() {
        let mut s = RecordingSink::with_cap(2);
        for i in 0..5 {
            s.event(i, Event::Yield { code: i });
        }
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.dropped, 3);
    }

    #[test]
    fn counts_classify_abnormal_returns() {
        let mut s = CountingSink::default();
        s.event(
            0,
            Event::Return {
                proc: Name::from("g"),
                index: 0,
                alternates: 1,
            },
        );
        s.event(
            1,
            Event::Return {
                proc: Name::from("g"),
                index: 1,
                alternates: 1,
            },
        );
        assert_eq!(s.counts.returns, 2);
        assert_eq!(s.counts.abnormal_returns, 1);
    }
}
