//! # cmm-rt — the C-- run-time interface (the paper's Table 1)
//!
//! "The main service provided by the C-- run-time interface is to present
//! the state of a suspended C-- computation ('thread') as a stack of
//! abstract activations. Operations are provided to walk down the stack;
//! to get information from an activation; to make a particular activation
//! become the topmost one; and to change the resumption point of the
//! topmost activation" (§3.3).
//!
//! | Operation | Here |
//! |---|---|
//! | `Resume(t)`              | [`Thread::resume`] |
//! | `FirstActivation(t,&a)`  | [`Thread::first_activation`] |
//! | `NextActivation(&a)`     | [`Thread::next_activation`] |
//! | `SetActivation(t,a)`     | [`Thread::set_activation`] |
//! | `SetUnwindCont(t,n)`     | [`Thread::set_unwind_cont`] |
//! | `SetCutToCont(t,k)`      | [`Thread::set_cut_to_cont`] |
//! | `FindContParam(t,n)`     | [`Thread::find_cont_param`] |
//! | `GetDescriptor(a,n)`     | [`Thread::get_descriptor`] |
//!
//! A front-end run-time system (such as the Modula-3 exception
//! dispatchers of Appendix A, reimplemented in `cmm-frontend`) interacts
//! with a suspended thread only through this interface; "different front
//! ends may interoperate with the same C-- run-time system."
//!
//! The interface is implemented entirely in terms of the `rts_*`
//! transitions that `cmm-sem` permits while a machine is suspended at a
//! `Yield` node, so every dispatch a front end performs is — by
//! construction — a behaviour allowed by the paper's formal semantics.
//!
//! # Example: a minimal unwinding dispatch
//!
//! ```
//! use cmm_rt::Thread;
//! use cmm_sem::{Status, Value};
//!
//! let m = cmm_parse::parse_module(r#"
//!     f() {
//!         bits32 r;
//!         r = g() also unwinds to k;
//!         return (0);
//!         continuation k(r):
//!         return (r);
//!     }
//!     g() { yield(7) also aborts; return (0); }
//! "#).unwrap();
//! let prog = cmm_cfg::build_program(&m).unwrap();
//! let mut t = Thread::new(&prog);
//! t.start("f", vec![]).unwrap();
//! assert_eq!(t.run(100_000), Status::Suspended);
//!
//! // The dispatcher: walk to the activation that can handle the
//! // exception, select its first unwind continuation, pass a value.
//! let code = t.yield_code().unwrap();
//! let mut a = t.first_activation().unwrap();
//! t.next_activation(&mut a);             // skip g's activation
//! t.set_activation(&a).unwrap();
//! t.set_unwind_cont(0).unwrap();
//! *t.find_cont_param(0).unwrap() = Value::b32(code as u32 * 6);
//! t.resume().unwrap();
//! assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(42)]));
//! ```

pub mod thread;

pub use thread::{Activation, Thread};
