//! Threads and activation handles.

use cmm_cfg::{Bundle, Graph, Node, Program};
use cmm_chaos::{ChaosOp, FaultPlan, InjectedFault};
use cmm_ir::{Name, Ty};
use cmm_obs::{Event, ResumeKind, RtsOp};
use cmm_sem::{
    Frame, Machine, ResolvedMachine, ResolvedProgram, RtsTarget, SemEngine, Status, Value, Wrong,
};
use std::marker::PhantomData;

/// An activation handle: a cursor over the stack of abstract activations
/// of a suspended thread.
///
/// Handles are obtained from [`Thread::first_activation`] and advanced
/// with [`Thread::next_activation`]; they are invalidated by
/// [`Thread::resume`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Activation {
    /// Frames from the top of the stack (0 = the activation that called
    /// into the run-time system).
    index: usize,
}

impl Activation {
    /// Position from the top of the stack.
    pub fn depth(&self) -> usize {
        self.index
    }
}

/// What `Resume` should do, staged by the `Set*` calls.
#[derive(Clone, Debug)]
enum Pending {
    /// `SetActivation` (+ optional `SetUnwindCont`): unwind so the
    /// selected activation is topmost, then resume there.
    Activation {
        pops: usize,
        target: Option<RtsTarget>,
        params: Vec<Value>,
    },
    /// `SetCutToCont`: cut the stack to a continuation value.
    CutTo { cont: Value, params: Vec<Value> },
}

/// A suspended or running C-- computation, manipulated through the
/// run-time interface of Table 1.
///
/// The thread is generic over the execution engine: the reference
/// abstract machine ([`Machine`], the default) or the pre-resolved
/// engine ([`ResolvedMachine`]). Table 1 is implemented entirely in
/// terms of the [`SemEngine`] trait, so a front-end run-time system
/// works unchanged over either.
#[derive(Debug)]
pub struct Thread<'p, M: SemEngine<'p> = Machine<'p>> {
    machine: M,
    pending: Option<Pending>,
    chaos: Option<Box<FaultPlan>>,
    _marker: PhantomData<&'p ()>,
}

impl<'p> Thread<'p> {
    /// Creates a thread over a program, run by the reference machine.
    pub fn new(prog: &'p Program) -> Thread<'p> {
        Thread::over(Machine::new(prog))
    }
}

impl<'p> Thread<'p, ResolvedMachine<'p>> {
    /// Creates a thread run by the pre-resolved engine.
    pub fn new_resolved(rp: &'p ResolvedProgram<'p>) -> Thread<'p, ResolvedMachine<'p>> {
        Thread::over(ResolvedMachine::new(rp))
    }
}

impl<'p> Thread<'p, Machine<'p>> {
    /// The frame behind an activation handle (for inspection; specific
    /// to the reference machine, which exposes its frames directly).
    pub fn frame(&self, a: &Activation) -> Option<&Frame> {
        self.machine.activation(a.index)
    }
}

impl<'p, M: SemEngine<'p>> Thread<'p, M> {
    /// Creates a thread over an already-constructed engine.
    pub fn over(machine: M) -> Thread<'p, M> {
        Thread {
            machine,
            pending: None,
            chaos: None,
            _marker: PhantomData,
        }
    }

    /// Installs a `cmm-chaos` fault plan: each Table 1 operation consults
    /// the plan before doing any real work, and a scheduled fault makes
    /// the operation fail (return `None`/`false`, or
    /// [`Wrong::ChaosFault`]) without touching the thread.
    pub fn set_chaos(&mut self, plan: FaultPlan) {
        self.chaos = Some(Box::new(plan));
    }

    /// The installed fault plan, if any (its log records every fault
    /// actually injected so far).
    pub fn chaos(&self) -> Option<&FaultPlan> {
        self.chaos.as_deref()
    }

    /// Consults the fault plan for `op`. On a scheduled fault, records a
    /// `chaos` trace event and returns the fault for the caller to turn
    /// into the op's failure mode.
    fn trip(&mut self, op: ChaosOp) -> Option<InjectedFault> {
        let fault = self.chaos.as_mut()?.trip(op)?;
        if self.machine.trace_enabled() {
            self.machine.trace(Event::Chaos {
                what: format!("fault {fault}"),
            });
        }
        Some(fault)
    }

    /// Starts executing the named procedure (see [`Machine::start`]).
    ///
    /// # Errors
    ///
    /// Fails if the procedure does not exist.
    pub fn start(&mut self, proc: &str, args: Vec<Value>) -> Result<(), Wrong> {
        self.machine.start(proc, args)
    }

    /// Runs generated code for up to `fuel` transitions.
    pub fn run(&mut self, fuel: u64) -> Status {
        self.machine.run(fuel)
    }

    /// The underlying execution engine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the engine (the run-time system may read and
    /// write memory and global registers while suspended).
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Consumes the thread, returning the engine (used to recover a
    /// trace sink after a run).
    pub fn into_machine(self) -> M {
        self.machine
    }

    /// The values passed to `yield`, valid while suspended.
    pub fn yield_args(&self) -> &[Value] {
        self.machine.yield_args()
    }

    /// The first `yield` argument as an integer — conventionally the
    /// request or exception code.
    pub fn yield_code(&self) -> Option<u64> {
        self.machine.yield_args().first().and_then(Value::bits)
    }

    /// The graph, continuation bundle, and descriptors of the call site
    /// where activation `index` is suspended. Every frame below a
    /// suspension is stopped at a `Call` node, and its bundle is the
    /// node's bundle, so this recovers exactly what the frame holds.
    fn call_site(&self, index: usize) -> Option<(&'p Graph, &'p Bundle, &'p [Name])> {
        let site = self.machine.activation_site(index)?;
        let g = self.machine.program().proc(site.proc.as_str())?;
        let Node::Call {
            bundle,
            descriptors,
            ..
        } = g.node(site.node)
        else {
            return None;
        };
        Some((g, bundle, descriptors))
    }

    // ----- Table 1 -----

    /// `FirstActivation(t, &a)`: "sets `a` to the 'currently executing'
    /// activation of thread `t`" — the activation that called into the
    /// run-time system.
    ///
    /// Returns `None` if the thread is not suspended or has no
    /// activations.
    pub fn first_activation(&mut self) -> Option<Activation> {
        if self.trip(ChaosOp::FirstActivation).is_some() {
            return None;
        }
        let found = matches!(self.machine.status(), Status::Suspended) && self.machine.depth() > 0;
        if self.machine.trace_enabled() {
            let proc = if found {
                self.machine.activation_site(0).map(|s| s.proc)
            } else {
                None
            };
            self.machine
                .trace(Event::Rts(RtsOp::FirstActivation { proc }));
        }
        if found {
            Some(Activation { index: 0 })
        } else {
            None
        }
    }

    /// `NextActivation(&a)`: "mutates `a` to point to the activation to
    /// which `a` will return (normally `a`'s caller)". Returns `false`
    /// at the bottom of the stack (the paper's dispatcher treats that as
    /// an unhandled exception).
    pub fn next_activation(&mut self, a: &mut Activation) -> bool {
        if self.trip(ChaosOp::NextActivation).is_some() {
            return false;
        }
        let moved = if a.index + 1 < self.machine.depth() {
            a.index += 1;
            true
        } else {
            false
        };
        if self.machine.trace_enabled() {
            let proc = if moved {
                self.machine.activation_site(a.index).map(|s| s.proc)
            } else {
                None
            };
            self.machine
                .trace(Event::Rts(RtsOp::NextActivation { moved, proc }));
        }
        moved
    }

    /// The procedure of the activation behind a handle (for inspection
    /// and diagnostics).
    pub fn activation_proc(&self, a: &Activation) -> Option<Name> {
        self.machine.activation_site(a.index).map(|s| s.proc)
    }

    /// `GetDescriptor(a, n)`: "returns a pointer to the n'th descriptor
    /// associated with activation `a`" — here, the address of the data
    /// block named by the n'th `also descriptor` annotation at the call
    /// site where the activation is suspended.
    pub fn get_descriptor(&mut self, a: &Activation, n: usize) -> Option<u64> {
        if self.trip(ChaosOp::GetDescriptor).is_some() {
            return None;
        }
        let addr = (|| {
            let (_, _, descriptors) = self.call_site(a.index)?;
            let name = descriptors.get(n)?;
            self.machine.program().image.symbol(name.as_str())
        })();
        if self.machine.trace_enabled() {
            self.machine.trace(Event::Rts(RtsOp::GetDescriptor {
                index: n as u32,
                found: addr.is_some(),
            }));
        }
        addr
    }

    /// `SetActivation(t, a)`: "arranges for thread `t` to resume
    /// execution with activation `a`". Activations above `a` will be
    /// discarded when the thread resumes; each must be suspended at a
    /// call site annotated `also aborts`.
    ///
    /// Unless a subsequent [`Thread::set_unwind_cont`] selects an unwind
    /// continuation, the thread resumes at the call site's *normal
    /// return* point.
    ///
    /// # Errors
    ///
    /// Fails if the thread is not suspended.
    pub fn set_activation(&mut self, a: &Activation) -> Result<(), Wrong> {
        if let Some(fault) = self.trip(ChaosOp::SetActivation) {
            return Err(chaos_wrong(fault));
        }
        let r = self.set_activation_inner(a);
        if self.machine.trace_enabled() {
            self.machine
                .trace(Event::Rts(RtsOp::SetActivation { ok: r.is_ok() }));
        }
        r
    }

    fn set_activation_inner(&mut self, a: &Activation) -> Result<(), Wrong> {
        self.require_suspended()?;
        if self.machine.activation_site(a.index).is_none() {
            return Err(Wrong::RtsViolation("stale activation handle".into()));
        }
        let count = match self.call_site(a.index) {
            Some((g, bundle, _)) => copyin_len(g, bundle.normal_return()),
            None => 0,
        };
        self.pending = Some(Pending::Activation {
            pops: a.index,
            target: None,
            params: vec![Value::Bits(cmm_ir::Width::W32, 0); count],
        });
        Ok(())
    }

    /// `SetUnwindCont(t, n)`: "arranges for thread `t` to resume
    /// execution by unwinding to the n'th continuation of the activation
    /// with which it is set to resume" — the n'th name in the call
    /// site's `also unwinds to` annotation, counting from zero.
    ///
    /// # Errors
    ///
    /// Fails if no activation has been selected with
    /// [`Thread::set_activation`], or the call site has fewer than `n+1`
    /// unwind continuations.
    pub fn set_unwind_cont(&mut self, n: usize) -> Result<(), Wrong> {
        if let Some(fault) = self.trip(ChaosOp::SetUnwindCont) {
            return Err(chaos_wrong(fault));
        }
        let r = self.set_unwind_cont_inner(n);
        if self.machine.trace_enabled() {
            self.machine.trace(Event::Rts(RtsOp::SetUnwindCont {
                index: n as u32,
                ok: r.is_ok(),
            }));
        }
        r
    }

    fn set_unwind_cont_inner(&mut self, n: usize) -> Result<(), Wrong> {
        let Some(Pending::Activation { pops, .. }) = self.pending.as_ref() else {
            return Err(Wrong::RtsViolation(
                "SetUnwindCont before SetActivation".into(),
            ));
        };
        let pops = *pops;
        let site = self
            .machine
            .activation_site(pops)
            .ok_or_else(|| Wrong::RtsViolation("stale activation handle".into()))?;
        let (g, bundle, _) = self
            .call_site(pops)
            .ok_or_else(|| Wrong::NoSuchProc(site.clone(), site.proc.clone()))?;
        let Some(&node) = bundle.unwinds.get(n) else {
            return Err(Wrong::RtsViolation(format!(
                "call site has {} unwind continuations; {n} requested",
                bundle.unwinds.len()
            )));
        };
        let count = copyin_len(g, node);
        let Some(Pending::Activation { target, params, .. }) = self.pending.as_mut() else {
            unreachable!("pending checked above");
        };
        *target = Some(RtsTarget::Unwind(n));
        *params = vec![Value::Bits(cmm_ir::Width::W32, 0); count];
        Ok(())
    }

    /// `SetCutToCont(t, k)`: "arranges for thread `t` to resume
    /// execution by cutting the stack to continuation `k`". `k` is a
    /// continuation value (typically fetched from memory or passed to
    /// `yield`).
    ///
    /// # Errors
    ///
    /// Fails if the thread is not suspended or `k` is not a live
    /// continuation value.
    pub fn set_cut_to_cont(&mut self, k: Value) -> Result<(), Wrong> {
        if let Some(fault) = self.trip(ChaosOp::SetCutToCont) {
            return Err(chaos_wrong(fault));
        }
        let r = self.set_cut_to_cont_inner(k);
        if self.machine.trace_enabled() {
            self.machine.trace(Event::Rts(RtsOp::SetCutToCont {
                target: r.as_ref().ok().cloned().flatten(),
            }));
        }
        r.map(|_| ())
    }

    fn set_cut_to_cont_inner(&mut self, k: Value) -> Result<Option<Name>, Wrong> {
        self.require_suspended()?;
        let (target, _) = self
            .machine
            .decode_cont(&k)
            .ok_or_else(|| Wrong::RtsViolation("SetCutToCont: not a continuation".into()))?;
        let count = self
            .machine
            .cont_param_count(&target.proc, target.node)
            .unwrap_or(0);
        let target_proc = target.proc;
        self.pending = Some(Pending::CutTo {
            cont: k,
            params: vec![Value::Bits(cmm_ir::Width::W32, 0); count],
        });
        Ok(Some(target_proc))
    }

    /// `FindContParam(t, n)`: "returns a pointer to the location in
    /// which the n'th parameter of the currently-set continuation will
    /// be returned to thread `t`". Write the parameter value through the
    /// returned reference before calling [`Thread::resume`].
    pub fn find_cont_param(&mut self, n: usize) -> Option<&mut Value> {
        if self.trip(ChaosOp::FindContParam).is_some() {
            return None;
        }
        let found = match self.pending.as_ref() {
            Some(Pending::Activation { params, .. }) | Some(Pending::CutTo { params, .. }) => {
                n < params.len()
            }
            None => false,
        };
        if self.machine.trace_enabled() {
            self.machine.trace(Event::Rts(RtsOp::FindContParam {
                index: n as u32,
                found,
            }));
        }
        match self.pending.as_mut()? {
            Pending::Activation { params, .. } | Pending::CutTo { params, .. } => params.get_mut(n),
        }
    }

    /// `Resume(t)`: applies the staged resumption and returns control to
    /// generated code (the thread's status becomes `Running`; call
    /// [`Thread::run`] to continue executing).
    ///
    /// # Errors
    ///
    /// Fails if nothing was staged, if an activation being discarded is
    /// not abortable, or if the continuation is dead or unannotated. On
    /// error the suspension is left intact where possible.
    pub fn resume(&mut self) -> Result<(), Wrong> {
        if let Some(fault) = self.trip(ChaosOp::Resume) {
            return Err(chaos_wrong(fault));
        }
        let kind = match &self.pending {
            Some(Pending::CutTo { .. }) => ResumeKind::Cut,
            Some(Pending::Activation {
                target: Some(RtsTarget::Unwind(_)),
                ..
            }) => ResumeKind::Unwind,
            Some(Pending::Activation {
                target: Some(RtsTarget::Cut(_)),
                ..
            }) => ResumeKind::Cut,
            _ => ResumeKind::Normal,
        };
        let r = self.resume_inner();
        if self.machine.trace_enabled() {
            self.machine.trace(Event::Rts(RtsOp::Resume {
                kind,
                ok: r.is_ok(),
            }));
        }
        r
    }

    fn resume_inner(&mut self) -> Result<(), Wrong> {
        let pending = self
            .pending
            .take()
            .ok_or_else(|| Wrong::RtsViolation("Resume with no resumption set".into()))?;
        match pending {
            Pending::Activation {
                pops,
                target,
                params,
            } => {
                for _ in 0..pops {
                    self.machine.rts_pop_frame()?;
                }
                match target {
                    Some(t) => self.machine.rts_resume(t, params),
                    None => {
                        // Resume at the normal return point: the last
                        // entry of kp_r.
                        let (_, bundle, _) = self
                            .call_site(0)
                            .ok_or_else(|| Wrong::RtsViolation("empty stack".into()))?;
                        let normal = bundle.returns.len().checked_sub(1).ok_or_else(|| {
                            Wrong::RtsViolation("call site has no return continuation".into())
                        })?;
                        self.machine.rts_resume(RtsTarget::Return(normal), params)
                    }
                }
            }
            Pending::CutTo { cont, params } => self.machine.rts_cut_to(&cont, params),
        }
    }

    fn require_suspended(&self) -> Result<(), Wrong> {
        if matches!(self.machine.status(), Status::Suspended) {
            Ok(())
        } else {
            Err(Wrong::RtsViolation("thread is not suspended".into()))
        }
    }

    // ----- conveniences for front-end run-time systems -----

    /// Reads a word of the native pointer type from memory.
    pub fn read_ptr(&self, addr: u64) -> u64 {
        self.machine.load(Ty::NATIVE_PTR, addr).bits().unwrap_or(0)
    }

    /// Reads a 32-bit word from memory.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.machine.load(Ty::B32, addr).bits().unwrap_or(0) as u32
    }

    /// Writes a 32-bit word to memory.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.machine.store(Ty::B32, addr, u64::from(v));
    }
}

fn chaos_wrong(fault: InjectedFault) -> Wrong {
    Wrong::ChaosFault {
        op: fault.op.name().into(),
        invocation: fault.invocation,
    }
}

fn copyin_len(g: &Graph, node: cmm_cfg::NodeId) -> usize {
    match g.node(node) {
        Node::CopyIn { vars, .. } => vars.len(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_cfg::build_program;
    use cmm_parse::parse_module;

    fn prog(src: &str) -> Program {
        build_program(&parse_module(src).unwrap()).unwrap()
    }

    const NEST: &str = r#"
        f() {
            bits32 r;
            r = mid() also unwinds to k1, k2 also descriptor d_f;
            return (0);
            continuation k1(r):
            return (r + 1);
            continuation k2(r):
            return (r + 2);
        }
        mid() {
            bits32 r;
            r = g() also aborts also descriptor d_mid;
            return (r);
        }
        g() { yield(9) also aborts; return (0); }
        data d_f   { bits32 111; }
        data d_mid { bits32 222; }
    "#;

    #[test]
    fn walk_get_descriptors_and_unwind() {
        let p = prog(NEST);
        let mut t = Thread::new(&p);
        t.start("f", vec![]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        assert_eq!(t.yield_code(), Some(9));

        // Walk the stack: the "currently executing" activation is g
        // (suspended at its call to yield), then mid, then f.
        let mut a = t.first_activation().unwrap();
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "g");
        assert_eq!(t.get_descriptor(&a, 0), None);

        assert!(t.next_activation(&mut a));
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "mid");
        let d_mid = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.read_u32(d_mid), 222);

        assert!(t.next_activation(&mut a));
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "f");
        let d_f = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.read_u32(d_f), 111);
        assert!(!t.next_activation(&mut a), "f is the bottom activation");

        // Unwind to f's second continuation with parameter 40.
        t.set_activation(&a).unwrap();
        t.set_unwind_cont(1).unwrap();
        *t.find_cont_param(0).unwrap() = Value::b32(40);
        t.resume().unwrap();
        assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(42)]));
    }

    #[test]
    fn resolved_engine_drives_the_same_dispatch() {
        // The identical Table 1 exchange over the pre-resolved engine.
        let p = prog(NEST);
        let rp = ResolvedProgram::new(&p);
        let mut t = Thread::new_resolved(&rp);
        t.start("f", vec![]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        assert_eq!(t.yield_code(), Some(9));

        let mut a = t.first_activation().unwrap();
        assert_eq!(t.activation_proc(&a).unwrap().as_str(), "g");
        assert!(t.next_activation(&mut a));
        assert_eq!(t.activation_proc(&a).unwrap().as_str(), "mid");
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.read_u32(d), 222);
        assert!(t.next_activation(&mut a));
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.read_u32(d), 111);
        assert!(!t.next_activation(&mut a));

        t.set_activation(&a).unwrap();
        t.set_unwind_cont(1).unwrap();
        *t.find_cont_param(0).unwrap() = Value::b32(40);
        t.resume().unwrap();
        assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(42)]));
    }

    #[test]
    fn set_activation_alone_resumes_normal_return() {
        let p = prog(
            r#"
            f() { bits32 r; r = g(); return (r); }
            g() { bits32 r; r = h(); return (r + 1); }
            h() { yield(1) also aborts; return (5); }
            "#,
        );
        let mut t = Thread::new(&p);
        t.start("f", vec![]).unwrap();
        t.run(100_000);
        // Discard h's activation (its yield call aborts) and resume g at
        // the normal return point of the call to h, supplying the
        // "result" 10.
        let mut a = t.first_activation().unwrap();
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "h");
        assert!(t.next_activation(&mut a));
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "g");
        t.set_activation(&a).unwrap();
        *t.find_cont_param(0).unwrap() = Value::b32(10);
        t.resume().unwrap();
        assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(11)]));
    }

    #[test]
    fn set_cut_to_cont_cuts_the_stack() {
        // The continuation is passed down as a yield argument.
        let p = prog(
            r#"
            f() {
                bits32 r;
                r = mid(k) also cuts to k;
                return (0);
                continuation k(r):
                return (r * 2);
            }
            mid(bits32 kk) {
                bits32 r;
                r = g(kk) also aborts;
                return (r);
            }
            g(bits32 kk) { yield(1, kk) also aborts; return (0); }
            "#,
        );
        let mut t = Thread::new(&p);
        t.start("f", vec![]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        let k = t.yield_args()[1].clone();
        t.set_cut_to_cont(k).unwrap();
        *t.find_cont_param(0).unwrap() = Value::b32(21);
        t.resume().unwrap();
        assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(42)]));
    }

    #[test]
    fn resume_without_setup_fails() {
        let p = prog("f() { yield(1); return; }");
        let mut t = Thread::new(&p);
        t.start("f", vec![]).unwrap();
        t.run(100_000);
        assert!(t.resume().is_err());
    }

    #[test]
    fn unwind_cont_out_of_range_fails() {
        let p = prog(
            r#"
            f() { bits32 r; r = g() also unwinds to k; return (0);
                  continuation k(r): return (r); }
            g() { yield(1) also aborts; return (0); }
            "#,
        );
        let mut t = Thread::new(&p);
        t.start("f", vec![]).unwrap();
        t.run(100_000);
        let mut a = t.first_activation().unwrap();
        t.next_activation(&mut a);
        t.set_activation(&a).unwrap();
        assert!(t.set_unwind_cont(5).is_err());
        assert!(t.set_unwind_cont(0).is_ok());
    }

    #[test]
    fn first_activation_requires_suspension() {
        let p = prog("f() { return; }");
        let mut t = Thread::new(&p);
        assert!(t.first_activation().is_none());
    }

    #[test]
    fn descriptors_missing_returns_none() {
        let p = prog(
            r#"
            f() { bits32 r; r = g(); return (r); }
            g() { yield(1); return (0); }
            "#,
        );
        let mut t = Thread::new(&p);
        t.start("f", vec![]).unwrap();
        t.run(100_000);
        let a = t.first_activation().unwrap();
        assert_eq!(t.get_descriptor(&a, 0), None);
    }

    #[test]
    fn chaos_faults_option_ops_to_none() {
        let p = prog(NEST);
        let mut t = Thread::new(&p);
        t.set_chaos(FaultPlan::failing(ChaosOp::FirstActivation, 1));
        t.start("f", vec![]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        assert!(t.first_activation().is_none(), "fault masks the walk root");
        let log = t.chaos().unwrap().log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, ChaosOp::FirstActivation);
        assert_eq!(log[0].invocation, 1);
        // The schedule trips once; the op works again afterwards.
        assert!(t.first_activation().is_some());
    }

    #[test]
    fn chaos_faults_result_ops_to_chaos_wrong() {
        let p = prog(NEST);
        let mut t = Thread::new(&p);
        t.set_chaos(FaultPlan::failing(ChaosOp::SetUnwindCont, 1));
        t.start("f", vec![]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        let mut a = t.first_activation().unwrap();
        while t.next_activation(&mut a) {}
        t.set_activation(&a).unwrap();
        match t.set_unwind_cont(1) {
            Err(Wrong::ChaosFault { op, invocation }) => {
                assert_eq!(op, "set-unwind-cont");
                assert_eq!(invocation, 1);
            }
            other => panic!("expected an injected fault, got {other:?}"),
        }
        // Recoverable: retry the op, finish the unwind normally.
        t.set_unwind_cont(1).unwrap();
        *t.find_cont_param(0).unwrap() = Value::b32(40);
        t.resume().unwrap();
        assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(42)]));
    }

    #[test]
    fn chaos_counts_invocations_per_op() {
        let p = prog(NEST);
        let mut t = Thread::new(&p);
        t.set_chaos(FaultPlan::failing(ChaosOp::NextActivation, 2));
        t.start("f", vec![]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        let mut a = t.first_activation().unwrap();
        assert!(t.next_activation(&mut a), "invocation 1 is clean");
        assert!(!t.next_activation(&mut a), "invocation 2 is the fault");
        assert!(t.next_activation(&mut a), "invocation 3 is clean again");
        assert_eq!(t.chaos().unwrap().log().len(), 1);
    }

    #[test]
    fn chaos_schedule_is_identical_over_the_resolved_engine() {
        // The same plan, installed on both sem engines, injects at the
        // same dispatch point and leaves the same log.
        fn drive<'p, M: SemEngine<'p>>(mut t: Thread<'p, M>) -> Vec<InjectedFault> {
            t.set_chaos(FaultPlan::seeded(7, 4));
            t.start("f", vec![]).unwrap();
            assert_eq!(t.run(100_000), Status::Suspended);
            if let Some(mut a) = t.first_activation() {
                while t.next_activation(&mut a) {}
                let _ = t.set_activation(&a);
                let _ = t.set_unwind_cont(0);
                if let Some(p0) = t.find_cont_param(0) {
                    *p0 = Value::b32(1);
                }
                let _ = t.resume();
            }
            t.chaos().unwrap().log().to_vec()
        }
        let p = prog(NEST);
        let rp = ResolvedProgram::new(&p);
        let plain = drive(Thread::new(&p));
        let resolved = drive(Thread::new_resolved(&rp));
        assert_eq!(plain, resolved);
        assert!(!plain.is_empty(), "seed 7 should fire at least once");
    }
}
