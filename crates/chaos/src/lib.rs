//! # cmm-chaos — deterministic fault injection and resource governance
//!
//! The paper's Table 1 runtime interface is the one channel through
//! which a front-end run-time system manipulates a suspended thread.
//! This crate makes that channel *hostile on demand*: a [`FaultPlan`] is
//! a seeded, engine-independent schedule that makes any Table 1
//! operation fail at its Nth invocation, and a [`ResourceGovernor`]
//! bounds the resources an engine may consume between yields — memory,
//! activation-stack depth, and per-resume fuel — on top of the ordinary
//! fuel counter.
//!
//! Both pieces are deliberately dependency-free and engine-agnostic:
//!
//! * the *same* `FaultPlan` (same seed, same horizon) installed on the
//!   `cmm-rt` dispatcher and on the `cmm-vm` dispatcher trips the same
//!   operations at the same invocation counts, so all four engines (sem,
//!   sem-resolved, vm, vm-decoded) observe an identical fault schedule
//!   and — if the engines are correct — fail identically;
//! * the governor expresses limits in engine-family terms (frames and
//!   environment bytes for the abstract machines, a stack floor and
//!   mapped pages for the simulated target) so within a family both
//!   engines of a pair trip at exactly the same transition.
//!
//! Every decision is a pure function of the seed: a chaos run is
//! bit-reproducible from `(case seed, fault seed)`.

use std::fmt;

/// The Table 1 operations a [`FaultPlan`] can fail, plus `Run`
/// (fuel-slice interruption points are not faultable but share the
/// counter machinery).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ChaosOp {
    /// `FirstActivation(t, &a)`.
    FirstActivation,
    /// `NextActivation(&a)`.
    NextActivation,
    /// `GetDescriptor(a, n)`.
    GetDescriptor,
    /// `SetActivation(t, a)`.
    SetActivation,
    /// `SetUnwindCont(t, n)`.
    SetUnwindCont,
    /// `SetCutToCont(t, k)`.
    SetCutToCont,
    /// `FindContParam(t, n)`.
    FindContParam,
    /// `Resume(t)`.
    Resume,
}

/// All faultable operations, in schedule order.
pub const CHAOS_OPS: [ChaosOp; 8] = [
    ChaosOp::FirstActivation,
    ChaosOp::NextActivation,
    ChaosOp::GetDescriptor,
    ChaosOp::SetActivation,
    ChaosOp::SetUnwindCont,
    ChaosOp::SetCutToCont,
    ChaosOp::FindContParam,
    ChaosOp::Resume,
];

impl ChaosOp {
    /// Stable lower-case name (used in events, errors, and reproducer
    /// headers).
    pub fn name(self) -> &'static str {
        match self {
            ChaosOp::FirstActivation => "first-activation",
            ChaosOp::NextActivation => "next-activation",
            ChaosOp::GetDescriptor => "get-descriptor",
            ChaosOp::SetActivation => "set-activation",
            ChaosOp::SetUnwindCont => "set-unwind-cont",
            ChaosOp::SetCutToCont => "set-cut-to-cont",
            ChaosOp::FindContParam => "find-cont-param",
            ChaosOp::Resume => "resume",
        }
    }

    fn index(self) -> usize {
        CHAOS_OPS.iter().position(|&o| o == self).unwrap()
    }
}

impl fmt::Display for ChaosOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault: operation plus the 1-based invocation at which
/// it tripped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectedFault {
    /// Which Table 1 operation failed.
    pub op: ChaosOp,
    /// The 1-based invocation count at which it failed.
    pub invocation: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} #{}", self.op, self.invocation)
    }
}

/// `splitmix64` — the workspace-standard seed mixer (also used by the
/// difftest case derivation), reimplemented here so the crate stays
/// dependency-free.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the fault seed for schedule `k` of a sweep rooted at `seed`.
/// Pure mixing, so sweeps are reproducible from `(seed, k)` alone.
pub fn schedule_seed(seed: u64, k: u64) -> u64 {
    let mut s = seed ^ k.wrapping_mul(0xd605_bbb5_8c8a_bc03);
    splitmix64(&mut s)
}

/// A deterministic fault schedule over the Table 1 operations.
///
/// Construction pre-commits, per operation, the invocation count at
/// which that operation fails (if any). Execution-side state is only
/// the per-operation invocation counters and the log of faults actually
/// injected, so installing *clones* of one plan on several engines
/// yields identical schedules on each.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Per-op: fail at this 1-based invocation (`None` = never).
    fail_at: [Option<u64>; CHAOS_OPS.len()],
    /// Per-op invocation counters.
    seen: [u64; CHAOS_OPS.len()],
    /// Every fault injected so far, in trip order.
    log: Vec<InjectedFault>,
}

impl FaultPlan {
    /// A plan that never injects anything (useful as a baseline).
    pub fn quiet() -> FaultPlan {
        FaultPlan {
            seed: 0,
            fail_at: [None; CHAOS_OPS.len()],
            seen: [0; CHAOS_OPS.len()],
            log: Vec::new(),
        }
    }

    /// Derives a schedule from a seed.
    ///
    /// Each operation independently gets a ~50% chance of a scheduled
    /// failure, at an invocation count drawn from `1..=horizon`. Small
    /// horizons bias faults toward the first few dispatches — where the
    /// interesting recovery paths are — while leaving many runs with
    /// late (never-reached) faults so the happy path stays covered.
    pub fn seeded(seed: u64, horizon: u64) -> FaultPlan {
        let mut s = seed;
        let mut fail_at = [None; CHAOS_OPS.len()];
        for slot in &mut fail_at {
            let roll = splitmix64(&mut s);
            let nth = splitmix64(&mut s);
            if roll & 1 == 0 {
                *slot = Some(1 + nth % horizon.max(1));
            }
        }
        FaultPlan {
            seed,
            fail_at,
            seen: [0; CHAOS_OPS.len()],
            log: Vec::new(),
        }
    }

    /// A plan that fails exactly one operation at one invocation —
    /// handy for targeted experiments and unit tests.
    pub fn failing(op: ChaosOp, invocation: u64) -> FaultPlan {
        let mut plan = FaultPlan::quiet();
        plan.fail_at[op.index()] = Some(invocation.max(1));
        plan
    }

    /// Records one invocation of `op`; returns the fault to inject if
    /// this invocation is the scheduled one.
    pub fn trip(&mut self, op: ChaosOp) -> Option<InjectedFault> {
        let i = op.index();
        self.seen[i] += 1;
        if self.fail_at[i] == Some(self.seen[i]) {
            let fault = InjectedFault {
                op,
                invocation: self.seen[i],
            };
            self.log.push(fault);
            Some(fault)
        } else {
            None
        }
    }

    /// Every fault injected so far, in trip order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// The scheduled failure invocation for `op`, if any.
    pub fn scheduled(&self, op: ChaosOp) -> Option<u64> {
        self.fail_at[op.index()]
    }

    /// How many times `op` has been invoked so far.
    pub fn invocations(&self, op: ChaosOp) -> u64 {
        self.seen[op.index()]
    }

    /// Exports the plan's full mid-run state — schedule, per-op
    /// invocation counters, and the injection log — so a checkpointed
    /// thread can park its fault plan alongside the machine state and
    /// pick up the schedule exactly where it left off.
    pub fn state(&self) -> FaultPlanState {
        FaultPlanState {
            seed: self.seed,
            fail_at: self.fail_at,
            seen: self.seen,
            log: self.log.clone(),
        }
    }

    /// Rebuilds a plan from exported state: the restored plan trips at
    /// exactly the invocations the original still had scheduled, and
    /// its log continues from the faults already injected.
    pub fn from_state(st: &FaultPlanState) -> FaultPlan {
        FaultPlan {
            seed: st.seed,
            fail_at: st.fail_at,
            seen: st.seen,
            log: st.log.clone(),
        }
    }

    /// A one-line rendering of the schedule (reproducer headers).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for op in CHAOS_OPS {
            if let Some(n) = self.scheduled(op) {
                parts.push(format!("{op}@{n}"));
            }
        }
        if parts.is_empty() {
            "no scheduled faults".to_string()
        } else {
            parts.join(", ")
        }
    }
}

/// The exported mid-run state of a [`FaultPlan`] (see
/// [`FaultPlan::state`]). All fields are public so a serializer can
/// write them without this crate growing a wire format of its own.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlanState {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Per-op scheduled failure invocation, in [`CHAOS_OPS`] order.
    pub fail_at: [Option<u64>; CHAOS_OPS.len()],
    /// Per-op invocation counters, in [`CHAOS_OPS`] order.
    pub seen: [u64; CHAOS_OPS.len()],
    /// Every fault injected so far, in trip order.
    pub log: Vec<InjectedFault>,
}

/// Which resource limit tripped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LimitTrip {
    /// Activation-stack depth exceeded `max_depth` frames.
    StackDepth,
    /// Live memory exceeded `max_memory_bytes`.
    Memory,
}

impl fmt::Display for LimitTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitTrip::StackDepth => f.write_str("stack-depth"),
            LimitTrip::Memory => f.write_str("memory"),
        }
    }
}

/// Resource limits an engine enforces between yields, alongside the
/// ordinary fuel counter.
///
/// Limits are expressed in engine-family units (documented per field);
/// within one family both engines of a pair must trip at exactly the
/// same transition, which the equivalence tests assert.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResourceGovernor {
    /// Maximum activation-stack depth, in frames (abstract machines:
    /// `stack.len()`; the simulated target bounds its stack via
    /// `stack_floor` instead).
    pub max_depth: Option<usize>,
    /// Maximum live memory: written bytes for the abstract machines,
    /// mapped page bytes for the simulated target.
    pub max_memory_bytes: Option<usize>,
    /// Lowest stack-pointer value the simulated target may call with
    /// (its activation records live in simulated memory, so depth is a
    /// stack floor there).
    pub stack_floor: Option<u64>,
    /// Upper bound on the fuel any single `run` call may consume: the
    /// per-yield slice. `run(fuel)` becomes `run(min(fuel, slice))`.
    pub fuel_slice: Option<u64>,
}

impl ResourceGovernor {
    /// A governor with no limits (never trips).
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::default()
    }

    /// Checks an activation-stack depth (frames) against `max_depth`.
    pub fn check_depth(&self, depth: usize) -> Option<LimitTrip> {
        match self.max_depth {
            Some(max) if depth > max => Some(LimitTrip::StackDepth),
            _ => None,
        }
    }

    /// Checks a live-memory figure (bytes) against `max_memory_bytes`.
    pub fn check_memory(&self, bytes: usize) -> Option<LimitTrip> {
        match self.max_memory_bytes {
            Some(max) if bytes > max => Some(LimitTrip::Memory),
            _ => None,
        }
    }

    /// Checks a stack-pointer value against `stack_floor`.
    pub fn check_sp(&self, sp: u64) -> Option<LimitTrip> {
        match self.stack_floor {
            Some(floor) if sp < floor => Some(LimitTrip::StackDepth),
            _ => None,
        }
    }

    /// The fuel actually granted for one `run` call.
    pub fn slice(&self, fuel: u64) -> u64 {
        match self.fuel_slice {
            Some(s) => fuel.min(s),
            None => fuel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 8);
        let b = FaultPlan::seeded(42, 8);
        assert_eq!(a, b);
        // Essentially always differs across seeds.
        assert_ne!(
            FaultPlan::seeded(1, 8).describe(),
            FaultPlan::seeded(2, 8).describe()
        );
    }

    #[test]
    fn trips_exactly_once_at_the_scheduled_invocation() {
        let mut p = FaultPlan::quiet();
        p.fail_at[ChaosOp::Resume.index()] = Some(3);
        assert_eq!(p.trip(ChaosOp::Resume), None);
        assert_eq!(p.trip(ChaosOp::Resume), None);
        let f = p.trip(ChaosOp::Resume).expect("third invocation trips");
        assert_eq!((f.op, f.invocation), (ChaosOp::Resume, 3));
        assert_eq!(p.trip(ChaosOp::Resume), None);
        assert_eq!(p.log(), &[f]);
    }

    #[test]
    fn clones_replay_the_same_schedule() {
        let plan = FaultPlan::seeded(7, 4);
        let mut a = plan.clone();
        let mut b = plan;
        for _ in 0..10 {
            for op in CHAOS_OPS {
                assert_eq!(a.trip(op), b.trip(op));
            }
        }
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn exported_state_continues_the_schedule() {
        // Trip partway, export, restore: the restored plan must be
        // indistinguishable from the original for the rest of the run.
        let mut p = FaultPlan::seeded(7, 6);
        for op in CHAOS_OPS {
            p.trip(op);
        }
        let mut q = FaultPlan::from_state(&p.state());
        assert_eq!(p, q);
        for _ in 0..8 {
            for op in CHAOS_OPS {
                assert_eq!(p.trip(op), q.trip(op));
            }
        }
        assert_eq!(p.log(), q.log());
    }

    #[test]
    fn schedule_seeds_spread() {
        let s0 = schedule_seed(1, 0);
        let s1 = schedule_seed(1, 1);
        assert_ne!(s0, s1);
        assert_eq!(s0, schedule_seed(1, 0));
    }

    #[test]
    fn governor_checks() {
        let g = ResourceGovernor {
            max_depth: Some(4),
            max_memory_bytes: Some(100),
            stack_floor: Some(0x1000),
            fuel_slice: Some(10),
        };
        assert_eq!(g.check_depth(4), None);
        assert_eq!(g.check_depth(5), Some(LimitTrip::StackDepth));
        assert_eq!(g.check_memory(100), None);
        assert_eq!(g.check_memory(101), Some(LimitTrip::Memory));
        assert_eq!(g.check_sp(0x1000), None);
        assert_eq!(g.check_sp(0xfff), Some(LimitTrip::StackDepth));
        assert_eq!(g.slice(25), 10);
        assert_eq!(g.slice(3), 3);
        let u = ResourceGovernor::unlimited();
        assert_eq!(u.check_depth(usize::MAX), None);
        assert_eq!(u.slice(25), 25);
    }

    #[test]
    fn describe_lists_scheduled_ops() {
        let mut p = FaultPlan::quiet();
        assert_eq!(p.describe(), "no scheduled faults");
        p.fail_at[ChaosOp::Resume.index()] = Some(2);
        p.fail_at[ChaosOp::FirstActivation.index()] = Some(1);
        assert_eq!(p.describe(), "first-activation@1, resume@2");
    }
}
