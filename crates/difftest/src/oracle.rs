//! Multi-oracle differential execution.
//!
//! One generated program is run through every substrate the repository
//! implements:
//!
//! * the `cmm-sem` formal abstract machine on the **unoptimized** CFG —
//!   the reference oracle;
//! * `cmm-sem` again after each optimization pass *individually* and
//!   after the full pipeline (the per-pass oracles localize a
//!   miscompilation to the pass that introduced it);
//! * the `cmm-vm` simulated target, both unoptimized and fully
//!   optimized.
//!
//! Suspensions are driven by a fixed deterministic run-time-system
//! policy (see [`observe_sem`]) implemented identically over `cmm-rt`'s
//! [`Thread`] and `cmm-vm`'s [`VmThread`], so the *sequence of yield
//! codes* is part of the observation: the substrates must agree not only
//! on final results but on every interaction with the run-time system.
//!
//! Outcomes are compared coarsely for failing programs: the semantics
//! reports a structured [`cmm_sem::Wrong`] while the VM reports a fault
//! string, so "went wrong" states compare equal across substrates while
//! the detail text is kept for display.

use crate::genprog::TestCase;
use cmm_cfg::Program;
use cmm_chaos::{schedule_seed, FaultPlan, InjectedFault};
use cmm_obs::{RecordingSink, TimedEvent, TraceSink};
use cmm_opt::OptOptions;
use cmm_rt::Thread;
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, SemEngine, Status, Value};
use cmm_vm::{VmProgram, VmStatus, VmThread};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Latest invocation (per Table 1 op) at which a seeded fault plan may
/// schedule its failure. Small, so most scheduled faults actually fire
/// within a dispatch exchange or two.
pub const CHAOS_HORIZON: u64 = 4;

/// Execution limits shared by every oracle.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Transition budget per `run` of the abstract machine.
    pub sem_fuel: u64,
    /// Instruction budget per `run` of the simulated machine.
    pub vm_fuel: u64,
    /// Suspensions serviced before the run is cut off as [`Outcome::Fuel`].
    pub max_yields: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            sem_fuel: 2_000_000,
            vm_fuel: 20_000_000,
            max_yields: 64,
        }
    }
}

/// How an observed execution ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Normal termination with these result values.
    Halt(Vec<u64>),
    /// The program went wrong (semantics) or faulted (VM). Compared
    /// coarsely; the detail string lives outside the observation.
    Wrong,
    /// A Table 1 operation failed during dispatch (e.g. discarding a
    /// non-abortable activation).
    RtsError,
    /// Fuel or the suspension bound ran out.
    Fuel,
}

/// What an oracle observed: the final outcome plus the sequence of yield
/// codes serviced along the way.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Obs {
    /// How the run ended.
    pub outcome: Outcome,
    /// First `yield` argument of each suspension, in order.
    pub yields: Vec<u64>,
}

impl Obs {
    /// A display form including the substrate-specific detail text.
    pub fn describe(&self, detail: &str) -> String {
        let mut s = match &self.outcome {
            Outcome::Halt(vs) => format!("halt {vs:?}"),
            Outcome::Wrong => "wrong".to_string(),
            Outcome::RtsError => "rts-error".to_string(),
            Outcome::Fuel => "fuel".to_string(),
        };
        if !detail.is_empty() {
            let _ = write!(s, " ({detail})");
        }
        if !self.yields.is_empty() {
            let _ = write!(s, " after yields {:?}", self.yields);
        }
        s
    }
}

/// The deterministic parameter value the dispatcher passes to whatever
/// continuation it resumes for yield code `code`.
pub(crate) fn fill(code: u64) -> u32 {
    (code.wrapping_mul(13).wrapping_add(7) & 0xfff) as u32
}

/// Runs `f(args)` on the formal semantics, servicing suspensions with
/// the fixed dispatcher policy. Returns the observation and a detail
/// string (empty unless something went wrong).
///
/// The policy, executed identically by [`observe_vm`]:
///
/// 1. record the yield code (the first `yield` argument);
/// 2. walk from the first activation one hop toward the caller (staying
///    on the first at the bottom of the stack);
/// 3. `SetActivation` there — discarding the yielder, which must be
///    suspended at an `also aborts` site;
/// 4. if the code is odd, try `SetUnwindCont(0)`, falling back to the
///    normal return point if the site has no unwind continuations
///    (`yield_codes::DIVZERO` is odd, so checked-primitive failures
///    take the unwind edge exactly when the call site is annotated);
/// 5. fill every continuation parameter with [`fill`]`(code)`; `Resume`.
pub fn observe_sem(prog: &Program, args: (u32, u32), limits: &Limits) -> (Obs, String) {
    observe_sem_thread(&mut Thread::new(prog), args, limits)
}

/// [`observe_sem`] over the pre-resolved engine
/// ([`cmm_sem::ResolvedMachine`]) — the same policy, so its observation
/// must be identical to the reference oracle's.
pub fn observe_sem_resolved(prog: &Program, args: (u32, u32), limits: &Limits) -> (Obs, String) {
    let rp = ResolvedProgram::new(prog);
    observe_sem_thread(&mut Thread::new_resolved(&rp), args, limits)
}

pub(crate) fn observe_sem_thread<'p, M: SemEngine<'p>>(
    t: &mut Thread<'p, M>,
    args: (u32, u32),
    limits: &Limits,
) -> (Obs, String) {
    let mut yields = Vec::new();
    let obs = |outcome: Outcome, yields: &[u64]| Obs {
        outcome,
        yields: yields.to_vec(),
    };
    if let Err(w) = t.start("f", vec![Value::b32(args.0), Value::b32(args.1)]) {
        return (obs(Outcome::Wrong, &yields), w.to_string());
    }
    loop {
        match t.run(limits.sem_fuel) {
            Status::Terminated(vals) => {
                let bits = vals.iter().map(|v| v.bits().unwrap_or(u64::MAX)).collect();
                return (obs(Outcome::Halt(bits), &yields), String::new());
            }
            Status::Wrong(w) => return (obs(Outcome::Wrong, &yields), w.to_string()),
            Status::OutOfFuel => return (obs(Outcome::Fuel, &yields), "out of fuel".into()),
            Status::Suspended => {
                if yields.len() >= limits.max_yields {
                    return (obs(Outcome::Fuel, &yields), "suspension bound".into());
                }
                let code = t.yield_code().unwrap_or(0);
                yields.push(code);
                let Some(mut a) = t.first_activation() else {
                    return (
                        obs(Outcome::RtsError, &yields),
                        "no first activation".into(),
                    );
                };
                // Hop once toward the caller; at the bottom of the stack
                // the yielder itself is resumed.
                let _ = t.next_activation(&mut a);
                if let Err(w) = t.set_activation(&a) {
                    return (obs(Outcome::RtsError, &yields), w.to_string());
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = Value::b32(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v.clone();
                    n += 1;
                }
                if let Err(w) = t.resume() {
                    return (obs(Outcome::RtsError, &yields), w.to_string());
                }
            }
            other => {
                return (
                    obs(Outcome::RtsError, &yields),
                    format!("unexpected status {other:?}"),
                );
            }
        }
    }
}

/// Runs `f(args)` on the simulated machine under the same dispatcher
/// policy as [`observe_sem`].
pub fn observe_vm(prog: &VmProgram, args: (u32, u32), limits: &Limits) -> (Obs, String) {
    observe_vm_thread(&mut VmThread::new(prog), args, limits)
}

/// [`observe_vm`] over the pre-decoded engine ([`cmm_vm::DecodedCode`])
/// — the same policy, so its observation must be identical.
pub fn observe_vm_decoded(prog: &VmProgram, args: (u32, u32), limits: &Limits) -> (Obs, String) {
    observe_vm_thread(&mut VmThread::new_decoded(prog), args, limits)
}

/// [`observe_vm`] over the fused engine ([`cmm_vm::FusedCode`]) — the
/// same policy, so its observation must be identical.
pub fn observe_vm_fused(prog: &VmProgram, args: (u32, u32), limits: &Limits) -> (Obs, String) {
    observe_vm_thread(&mut VmThread::new_fused(prog), args, limits)
}

pub(crate) fn observe_vm_thread<S: TraceSink>(
    t: &mut VmThread<'_, S>,
    args: (u32, u32),
    limits: &Limits,
) -> (Obs, String) {
    let mut yields = Vec::new();
    let obs = |outcome: Outcome, yields: &[u64]| Obs {
        outcome,
        yields: yields.to_vec(),
    };
    t.start("f", &[u64::from(args.0), u64::from(args.1)], 1);
    loop {
        match t.run(limits.vm_fuel) {
            VmStatus::Halted(vals) => return (obs(Outcome::Halt(vals), &yields), String::new()),
            VmStatus::Error(e) => return (obs(Outcome::Wrong, &yields), e),
            VmStatus::OutOfFuel => return (obs(Outcome::Fuel, &yields), "out of fuel".into()),
            VmStatus::Suspended => {
                if yields.len() >= limits.max_yields {
                    return (obs(Outcome::Fuel, &yields), "suspension bound".into());
                }
                let code = t.machine.yield_args(1)[0];
                yields.push(code);
                let Some(mut a) = t.first_activation() else {
                    return (
                        obs(Outcome::RtsError, &yields),
                        "no first activation".into(),
                    );
                };
                let _ = t.next_activation(&mut a);
                if let Err(e) = t.set_activation(&a) {
                    return (obs(Outcome::RtsError, &yields), e);
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = u64::from(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v;
                    n += 1;
                }
                if let Err(e) = t.resume() {
                    return (obs(Outcome::RtsError, &yields), e);
                }
            }
            other => {
                return (
                    obs(Outcome::RtsError, &yields),
                    format!("unexpected status {other:?}"),
                );
            }
        }
    }
}

/// [`observe_sem`] with a `cmm-chaos` fault plan installed on the
/// thread; additionally returns the log of faults actually injected.
pub fn observe_sem_chaos(
    prog: &Program,
    args: (u32, u32),
    limits: &Limits,
    plan: &FaultPlan,
) -> (Obs, String, Vec<InjectedFault>) {
    let mut t = Thread::new(prog);
    t.set_chaos(plan.clone());
    let (o, d) = observe_sem_thread(&mut t, args, limits);
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    (o, d, log)
}

/// [`observe_sem_resolved`] under a fault plan.
pub fn observe_sem_resolved_chaos(
    prog: &Program,
    args: (u32, u32),
    limits: &Limits,
    plan: &FaultPlan,
) -> (Obs, String, Vec<InjectedFault>) {
    let rp = ResolvedProgram::new(prog);
    let mut t = Thread::new_resolved(&rp);
    t.set_chaos(plan.clone());
    let (o, d) = observe_sem_thread(&mut t, args, limits);
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    (o, d, log)
}

/// [`observe_vm`] under a fault plan.
pub fn observe_vm_chaos(
    prog: &VmProgram,
    args: (u32, u32),
    limits: &Limits,
    plan: &FaultPlan,
) -> (Obs, String, Vec<InjectedFault>) {
    let mut t = VmThread::new(prog);
    t.set_chaos(plan.clone());
    let (o, d) = observe_vm_thread(&mut t, args, limits);
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    (o, d, log)
}

/// [`observe_vm_decoded`] under a fault plan.
pub fn observe_vm_decoded_chaos(
    prog: &VmProgram,
    args: (u32, u32),
    limits: &Limits,
    plan: &FaultPlan,
) -> (Obs, String, Vec<InjectedFault>) {
    let mut t = VmThread::new_decoded(prog);
    t.set_chaos(plan.clone());
    let (o, d) = observe_vm_thread(&mut t, args, limits);
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    (o, d, log)
}

/// [`observe_vm_fused`] under a fault plan.
pub fn observe_vm_fused_chaos(
    prog: &VmProgram,
    args: (u32, u32),
    limits: &Limits,
    plan: &FaultPlan,
) -> (Obs, String, Vec<InjectedFault>) {
    let mut t = VmThread::new_fused(prog);
    t.set_chaos(plan.clone());
    let (o, d) = observe_vm_thread(&mut t, args, limits);
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    (o, d, log)
}

/// An observation plus the injected-fault log, described for reports.
pub(crate) fn describe_chaos(obs: &Obs, detail: &str, log: &[InjectedFault]) -> String {
    let mut s = obs.describe(detail);
    if !log.is_empty() {
        let faults: Vec<String> = log.iter().map(|f| f.to_string()).collect();
        let _ = write!(s, " faults [{}]", faults.join(", "));
    }
    s
}

/// Runs raw source under `schedules` seeded fault plans, asserting that
/// all five engines — reference semantics, pre-resolved semantics, VM,
/// pre-decoded VM, and fused VM — observe the *same* outcome, yield
/// sequence, and injected-fault log under each plan. Every oracle is
/// panic-isolated.
///
/// Schedule `k` uses `FaultPlan::seeded(schedule_seed(fault_seed, k))`,
/// so the whole sweep is bit-reproducible from `fault_seed`.
///
/// # Errors
///
/// As [`run_source`], plus [`Failure::Diverged`] with an oracle name of
/// the form `vm@chaos3` when engines disagree under schedule 3, and
/// [`Failure::Panicked`] if an engine panics instead of failing softly.
pub fn run_source_chaos(
    src: &str,
    args: (u32, u32),
    limits: &Limits,
    fault_seed: u64,
    schedules: u64,
) -> Result<(), Failure> {
    let module = cmm_parse::parse_module(src).map_err(|e| Failure::Parse(e.to_string()))?;
    let program = cmm_cfg::build_program(&module).map_err(|e| Failure::Build(e.to_string()))?;
    let vm_prog = cmm_vm::compile(&program).map_err(|e| Failure::Codegen(e.to_string()))?;
    for k in 0..schedules {
        let plan = FaultPlan::seeded(schedule_seed(fault_seed, k), CHAOS_HORIZON);
        let (reference, ref_detail, ref_log) = guarded(&format!("sem@chaos{k}"), || {
            observe_sem_chaos(&program, args, limits, &plan)
        })?;
        let ref_desc = describe_chaos(&reference, &ref_detail, &ref_log);
        let compare =
            |name: &str, (o, d, log): (Obs, String, Vec<InjectedFault>)| -> Result<(), Failure> {
                if o == reference && log == ref_log {
                    Ok(())
                } else {
                    Err(Failure::Diverged {
                        oracle: format!("{name}@chaos{k}"),
                        reference: ref_desc.clone(),
                        observed: describe_chaos(&o, &d, &log),
                    })
                }
            };
        let r = guarded(&format!("sem-resolved@chaos{k}"), || {
            observe_sem_resolved_chaos(&program, args, limits, &plan)
        })?;
        compare("sem-resolved", r)?;
        let r = guarded(&format!("vm@chaos{k}"), || {
            observe_vm_chaos(&vm_prog, args, limits, &plan)
        })?;
        compare("vm", r)?;
        let r = guarded(&format!("vm-decoded@chaos{k}"), || {
            observe_vm_decoded_chaos(&vm_prog, args, limits, &plan)
        })?;
        compare("vm-decoded", r)?;
        let r = guarded(&format!("vm-fused@chaos{k}"), || {
            observe_vm_fused_chaos(&vm_prog, args, limits, &plan)
        })?;
        compare("vm-fused", r)?;
    }
    Ok(())
}

/// Re-runs one named oracle over raw source with a recording sink in
/// the engine, returning the observation, its detail text, and the
/// recorded exception-flow event stream.
///
/// Oracle names are the ones [`run_source`] reports in
/// [`Failure::Diverged`] — `reference`, `sem-resolved`, `sem+<pass>`,
/// `vm`, `vm-decoded`, `vm-fused`, `vm+O2`, `vm-decoded+O2`,
/// `vm-fused+O2` — so a divergence can be replayed event-for-event.
/// Injected extra passes cannot be re-traced (their closures are gone
/// by reporting time).
///
/// # Errors
///
/// Returns a message if the source no longer compiles or the oracle
/// name is unknown.
pub fn observe_traced(
    src: &str,
    oracle: &str,
    args: (u32, u32),
    limits: &Limits,
) -> Result<(Obs, String, Vec<TimedEvent>), String> {
    let module = cmm_parse::parse_module(src).map_err(|e| e.to_string())?;
    let mut program = cmm_cfg::build_program(&module).map_err(|e| e.to_string())?;
    let sem_traced = |prog: &Program| {
        let mut t = Thread::over(Machine::with_sink(prog, RecordingSink::default()));
        let (o, d) = observe_sem_thread(&mut t, args, limits);
        (o, d, t.into_machine().into_sink().events)
    };
    match oracle {
        "reference" => Ok(sem_traced(&program)),
        "sem-resolved" => {
            let rp = ResolvedProgram::new(&program);
            let mut t = Thread::over(ResolvedMachine::with_sink(&rp, RecordingSink::default()));
            let (o, d) = observe_sem_thread(&mut t, args, limits);
            Ok((o, d, t.into_machine().into_sink().events))
        }
        name if name.starts_with("sem+") => {
            let pass = &name["sem+".len()..];
            let (_, opts) = pass_variants()
                .into_iter()
                .find(|(n, _)| *n == pass)
                .ok_or_else(|| format!("oracle `{name}` cannot be re-traced"))?;
            cmm_opt::optimize_program(&mut program, &opts);
            Ok(sem_traced(&program))
        }
        "vm" | "vm-decoded" | "vm-fused" | "vm+O2" | "vm-decoded+O2" | "vm-fused+O2" => {
            if oracle.ends_with("+O2") {
                cmm_opt::optimize_program(&mut program, &OptOptions::default());
            }
            let vp = cmm_vm::compile(&program).map_err(|e| e.to_string())?;
            let mut t = if oracle.starts_with("vm-fused") {
                VmThread::with_sink_fused(&vp, RecordingSink::default())
            } else if oracle.starts_with("vm-decoded") {
                VmThread::with_sink_decoded(&vp, RecordingSink::default())
            } else {
                VmThread::with_sink(&vp, RecordingSink::default())
            };
            let (o, d) = observe_vm_thread(&mut t, args, limits);
            Ok((o, d, t.machine.into_sink().events))
        }
        other => Err(format!("oracle `{other}` cannot be re-traced")),
    }
}

/// The optimization configurations the per-pass oracles run, each pass
/// individually and then the full pipeline.
pub fn pass_variants() -> Vec<(&'static str, OptOptions)> {
    vec![
        (
            "constprop",
            OptOptions {
                constprop: true,
                max_iters: 4,
                ..OptOptions::none()
            },
        ),
        (
            "localopt",
            OptOptions {
                localopt: true,
                max_iters: 4,
                ..OptOptions::none()
            },
        ),
        (
            "dce",
            OptOptions {
                dce: true,
                max_iters: 4,
                ..OptOptions::none()
            },
        ),
        (
            "callee-saves",
            OptOptions {
                callee_save_regs: 6,
                ..OptOptions::none()
            },
        ),
        ("O2", OptOptions::default()),
    ]
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub enum Failure {
    /// The rendered program did not parse (a generator bug).
    Parse(String),
    /// The parsed module failed the `cmm-ir` verifier (a generator bug).
    Verify(Vec<String>),
    /// Pretty-printing then re-parsing did not reproduce the module.
    RoundTrip(String),
    /// CFG construction failed.
    Build(String),
    /// VM code generation failed.
    Codegen(String),
    /// The snapshot layer itself failed: a suspended state could not be
    /// captured, a blob did not decode, a decoded blob did not re-encode
    /// byte-identically, or an engine rejected a restore. Always a
    /// `cmm-snap` (or capture/restore) bug.
    Snapshot(String),
    /// An oracle disagreed with the unoptimized-semantics reference.
    Diverged {
        /// Which oracle disagreed, e.g. `sem+dce` or `vm+O2`.
        oracle: String,
        /// The reference observation, described.
        reference: String,
        /// The divergent observation, described.
        observed: String,
    },
    /// An oracle panicked instead of reporting a recoverable status —
    /// always an engine bug. The panic is caught per oracle, so a
    /// crashing engine becomes a reported, shrinkable failure instead of
    /// killing the harness.
    Panicked {
        /// Which oracle panicked.
        oracle: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl Failure {
    /// A coarse classification, stable under shrinking: the minimizer
    /// only accepts candidates reproducing the original classification,
    /// so a shrunk reproducer demonstrates the *same kind* of bug.
    pub fn classify(&self) -> &'static str {
        match self {
            Failure::Parse(_) => "parse",
            Failure::Verify(_) => "verify",
            Failure::RoundTrip(_) => "round-trip",
            Failure::Build(_) => "build",
            Failure::Codegen(_) => "codegen",
            Failure::Snapshot(_) => "snapshot",
            Failure::Diverged { .. } => "diverged",
            Failure::Panicked { .. } => "panicked",
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Parse(e) => write!(f, "generated program does not parse: {e}"),
            Failure::Verify(errs) => write!(
                f,
                "verifier rejected generated program: {}",
                errs.join("; ")
            ),
            Failure::RoundTrip(e) => write!(f, "pretty-print round trip failed: {e}"),
            Failure::Build(e) => write!(f, "CFG construction failed: {e}"),
            Failure::Codegen(e) => write!(f, "VM code generation failed: {e}"),
            Failure::Snapshot(e) => write!(f, "snapshot layer failed: {e}"),
            Failure::Diverged {
                oracle,
                reference,
                observed,
            } => {
                write!(
                    f,
                    "oracle {oracle} diverged: reference {reference}, observed {observed}"
                )
            }
            Failure::Panicked { oracle, message } => {
                write!(f, "oracle {oracle} panicked: {message}")
            }
        }
    }
}

/// Runs one oracle with panics isolated: a panicking engine is reported
/// as [`Failure::Panicked`] rather than unwinding through the harness.
pub(crate) fn guarded<T>(oracle: &str, f: impl FnOnce() -> T) -> Result<T, Failure> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        let message = if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Failure::Panicked {
            oracle: oracle.to_string(),
            message,
        }
    })
}

fn diverged(oracle: String, reference: &Obs, ref_detail: &str, obs: &Obs, detail: &str) -> Failure {
    Failure::Diverged {
        oracle,
        reference: reference.describe(ref_detail),
        observed: obs.describe(detail),
    }
}

/// A named program transformation injected alongside the real passes
/// (used to test that the fuzzer catches miscompilation — see the
/// minimizer tests).
/// (`Sync` so `run_fuzz --jobs N` can evaluate cases on the `cmm-pool`
/// executor; closures capturing only shared state qualify unchanged.)
pub type ExtraPass<'a> = (&'a str, &'a (dyn Fn(&mut Program) + Sync));

/// Runs one case through every oracle; `Ok(())` means all agreed.
pub fn run_case(case: &TestCase, limits: &Limits) -> Result<(), Failure> {
    run_case_with(case, limits, &[])
}

/// [`run_case`] with extra injected passes, each checked like a real one.
pub fn run_case_with(
    case: &TestCase,
    limits: &Limits,
    extra_passes: &[ExtraPass<'_>],
) -> Result<(), Failure> {
    run_source_with(&case.render(), case.args, limits, extra_passes)
}

/// Runs raw C-- source through every oracle (the path corpus replay
/// takes: a checked-in reproducer is source text, not a generator
/// state).
///
/// # Errors
///
/// As [`run_case`].
pub fn run_source(src: &str, args: (u32, u32), limits: &Limits) -> Result<(), Failure> {
    run_source_with(src, args, limits, &[])
}

fn run_source_with(
    src: &str,
    case_args: (u32, u32),
    limits: &Limits,
    extra_passes: &[ExtraPass<'_>],
) -> Result<(), Failure> {
    let module = cmm_parse::parse_module(src).map_err(|e| Failure::Parse(e.to_string()))?;
    let errors = cmm_ir::verify_module(&module);
    if !errors.is_empty() {
        return Err(Failure::Verify(errors));
    }
    let printed = cmm_ir::pretty::module_to_string(&module);
    let reparsed = cmm_parse::parse_module(&printed)
        .map_err(|e| Failure::RoundTrip(format!("pretty output does not re-parse: {e}")))?;
    if reparsed != module {
        return Err(Failure::RoundTrip(
            "pretty output re-parses to a different module".into(),
        ));
    }
    let program = cmm_cfg::build_program(&module).map_err(|e| Failure::Build(e.to_string()))?;

    let (reference, ref_detail) =
        guarded("reference", || observe_sem(&program, case_args, limits))?;

    // The pre-resolved engine over the same unoptimized program: an
    // engine-equivalence oracle rather than a pass oracle.
    let (o, detail) = guarded("sem-resolved", || {
        observe_sem_resolved(&program, case_args, limits)
    })?;
    if o != reference {
        return Err(diverged(
            "sem-resolved".into(),
            &reference,
            &ref_detail,
            &o,
            &detail,
        ));
    }

    for (name, opts) in pass_variants() {
        let (o, detail) = guarded(&format!("sem+{name}"), || {
            let mut p = program.clone();
            cmm_opt::optimize_program(&mut p, &opts);
            observe_sem(&p, case_args, limits)
        })?;
        if o != reference {
            return Err(diverged(
                format!("sem+{name}"),
                &reference,
                &ref_detail,
                &o,
                &detail,
            ));
        }
    }

    for (name, pass) in extra_passes {
        let (o, detail) = guarded(&format!("sem+{name}"), || {
            let mut p = program.clone();
            pass(&mut p);
            observe_sem(&p, case_args, limits)
        })?;
        if o != reference {
            return Err(diverged(
                format!("sem+{name}"),
                &reference,
                &ref_detail,
                &o,
                &detail,
            ));
        }
    }

    let vm_prog = cmm_vm::compile(&program).map_err(|e| Failure::Codegen(e.to_string()))?;
    let (o, detail) = guarded("vm", || observe_vm(&vm_prog, case_args, limits))?;
    if o != reference {
        return Err(diverged("vm".into(), &reference, &ref_detail, &o, &detail));
    }

    let (o, detail) = guarded("vm-decoded", || {
        observe_vm_decoded(&vm_prog, case_args, limits)
    })?;
    if o != reference {
        return Err(diverged(
            "vm-decoded".into(),
            &reference,
            &ref_detail,
            &o,
            &detail,
        ));
    }

    let (o, detail) = guarded("vm-fused", || observe_vm_fused(&vm_prog, case_args, limits))?;
    if o != reference {
        return Err(diverged(
            "vm-fused".into(),
            &reference,
            &ref_detail,
            &o,
            &detail,
        ));
    }

    let mut p = program.clone();
    cmm_opt::optimize_program(&mut p, &OptOptions::default());
    let vm_opt = cmm_vm::compile(&p).map_err(|e| Failure::Codegen(format!("after O2: {e}")))?;
    let (o, detail) = guarded("vm+O2", || observe_vm(&vm_opt, case_args, limits))?;
    if o != reference {
        return Err(diverged(
            "vm+O2".into(),
            &reference,
            &ref_detail,
            &o,
            &detail,
        ));
    }

    let (o, detail) = guarded("vm-decoded+O2", || {
        observe_vm_decoded(&vm_opt, case_args, limits)
    })?;
    if o != reference {
        return Err(diverged(
            "vm-decoded+O2".into(),
            &reference,
            &ref_detail,
            &o,
            &detail,
        ));
    }

    let (o, detail) = guarded("vm-fused+O2", || {
        observe_vm_fused(&vm_opt, case_args, limits)
    })?;
    if o != reference {
        return Err(diverged(
            "vm-fused+O2".into(),
            &reference,
            &ref_detail,
            &o,
            &detail,
        ));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate;
    use crate::rng::Rng;

    #[test]
    fn oracles_agree_on_generated_cases() {
        let limits = Limits::default();
        for seed in 0..40 {
            let case = generate(&mut Rng::new(seed));
            if let Err(f) = run_case(&case, &limits) {
                panic!("seed {seed} failed: {f}\n{}", case.render());
            }
        }
    }

    #[test]
    fn observations_include_yield_sequences() {
        // Some seed in a small range must suspend at least once; the two
        // substrates must agree on the whole sequence.
        let limits = Limits::default();
        let mut saw_yield = false;
        for seed in 0..60 {
            let case = generate(&mut Rng::new(seed));
            let src = case.render();
            let m = cmm_parse::parse_module(&src).unwrap();
            let prog = cmm_cfg::build_program(&m).unwrap();
            let (o, _) = observe_sem(&prog, case.args, &limits);
            saw_yield |= !o.yields.is_empty();
        }
        assert!(saw_yield, "no seed in 0..60 ever suspended");
    }

    #[test]
    fn traced_oracles_project_identically() {
        // The unoptimized engines run the same program, so their
        // exception-event projections must match event-for-event.
        // Wrong-outcome cases are skipped: the engines agree that such
        // runs are wrong but may fault at different trace granularity.
        let limits = Limits::default();
        let mut compared = 0;
        for seed in 0..25 {
            let case = generate(&mut Rng::new(seed));
            let src = case.render();
            let (ro, _, ref_events) =
                observe_traced(&src, "reference", case.args, &limits).unwrap();
            if matches!(ro.outcome, Outcome::Wrong) {
                continue;
            }
            let want = cmm_obs::projection(&ref_events);
            for oracle in ["sem-resolved", "vm", "vm-decoded", "vm-fused"] {
                let (_, _, events) = observe_traced(&src, oracle, case.args, &limits).unwrap();
                let got = cmm_obs::projection(&events);
                if let Err((i, a, b)) = cmm_obs::first_divergence(&want, &got) {
                    panic!("seed {seed} {oracle} event {i}: `{a}` vs `{b}`\n{src}");
                }
            }
            compared += 1;
        }
        assert!(compared > 0, "every seed in 0..25 went wrong");
    }

    #[test]
    fn injected_bad_pass_is_caught() {
        // A "pass" that forces every branch to its true arm is a
        // miscompilation the differential oracles must flag.
        let force_true = |p: &mut Program| {
            for g in p.procs.values_mut() {
                for id in 0..g.nodes.len() {
                    let id = cmm_cfg::NodeId(id as u32);
                    if let cmm_cfg::Node::Branch { t, .. } = g.node(id) {
                        let t = *t;
                        *g.node_mut(id) = cmm_cfg::Node::Branch {
                            cond: cmm_ir::Expr::b32(1),
                            t,
                            f: t,
                        };
                    }
                }
            }
        };
        let limits = Limits::default();
        let caught = (0..60).any(|seed| {
            let case = generate(&mut Rng::new(seed));
            matches!(
                run_case_with(&case, &limits, &[("force-true", &force_true)]),
                Err(Failure::Diverged { .. })
            )
        });
        assert!(caught, "no seed in 0..60 exposed the forced-branch pass");
    }

    #[test]
    fn chaos_sweep_agrees_on_generated_cases() {
        let limits = Limits::default();
        for seed in 0..30 {
            let case = generate(&mut Rng::new(seed));
            if let Err(f) = run_source_chaos(&case.render(), case.args, &limits, seed, 3) {
                panic!("seed {seed} chaos sweep failed: {f}\n{}", case.render());
            }
        }
    }

    #[test]
    fn chaos_faults_actually_fire_on_yielding_cases() {
        // The sweep above is vacuous if no schedule ever trips; find a
        // (case, schedule) pair whose fault log is non-empty and check
        // all four engines observed the identical log.
        let limits = Limits::default();
        for seed in 0..60 {
            let case = generate(&mut Rng::new(seed));
            let src = case.render();
            let m = cmm_parse::parse_module(&src).unwrap();
            let prog = cmm_cfg::build_program(&m).unwrap();
            let vp = cmm_vm::compile(&prog).unwrap();
            for k in 0..5 {
                let plan = FaultPlan::seeded(schedule_seed(seed, k), CHAOS_HORIZON);
                let (o1, _, log) = observe_sem_chaos(&prog, case.args, &limits, &plan);
                if log.is_empty() {
                    continue;
                }
                let (o2, _, l2) = observe_sem_resolved_chaos(&prog, case.args, &limits, &plan);
                let (o3, _, l3) = observe_vm_chaos(&vp, case.args, &limits, &plan);
                let (o4, _, l4) = observe_vm_decoded_chaos(&vp, case.args, &limits, &plan);
                assert_eq!((&o1, &log), (&o2, &l2), "sem-resolved diverged\n{src}");
                assert_eq!((&o1, &log), (&o3, &l3), "vm diverged\n{src}");
                assert_eq!((&o1, &log), (&o4, &l4), "vm-decoded diverged\n{src}");
                return;
            }
        }
        panic!("no (seed, schedule) pair in 0..60 x 0..5 ever injected a fault");
    }

    #[test]
    fn chaos_observations_are_bit_reproducible() {
        // Same (case seed, fault seed) in, same observation out — twice.
        let limits = Limits::default();
        let case = generate(&mut Rng::new(11));
        let src = case.render();
        let m = cmm_parse::parse_module(&src).unwrap();
        let prog = cmm_cfg::build_program(&m).unwrap();
        let vp = cmm_vm::compile(&prog).unwrap();
        for k in 0..5 {
            let plan = FaultPlan::seeded(schedule_seed(99, k), CHAOS_HORIZON);
            assert_eq!(
                observe_sem_chaos(&prog, case.args, &limits, &plan),
                observe_sem_chaos(&prog, case.args, &limits, &plan),
            );
            assert_eq!(
                observe_vm_chaos(&vp, case.args, &limits, &plan),
                observe_vm_chaos(&vp, case.args, &limits, &plan),
            );
        }
    }

    #[test]
    fn panicking_pass_is_isolated_and_classified() {
        // A pass that panics outright must surface as a Panicked
        // failure naming the oracle, not abort the fuzzing run.
        let boom = |_: &mut Program| panic!("intentional test panic");
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let case = generate(&mut Rng::new(0));
        let result = run_case_with(&case, &Limits::default(), &[("boom", &boom)]);
        std::panic::set_hook(prev);
        match result {
            Err(f @ Failure::Panicked { .. }) => {
                assert_eq!(f.classify(), "panicked");
                assert!(f.to_string().contains("sem+boom"), "got: {f}");
                assert!(f.to_string().contains("intentional test panic"), "got: {f}");
            }
            other => panic!("expected a panicked failure, got {other:?}"),
        }
    }
}
