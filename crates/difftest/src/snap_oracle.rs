//! The snapshot-equivalence oracle: run-to-end must deeply equal
//! snapshot-at-every-boundary-plus-resume.
//!
//! For each engine family the oracle runs a program twice under the
//! standard dispatcher policy (see [`crate::oracle::observe_sem`]):
//!
//! * **straight** — each inter-yield segment gets its full fuel budget
//!   in one `run` call, exactly as the regular oracles drive;
//! * **sliced** — fuel is granted `slice` transitions at a time, and at
//!   *every* resumable boundary (each fuel-slice exhaustion and each
//!   suspension) the machine is captured, encoded with `cmm-snap`,
//!   decoded, byte-identity-rechecked, and restored into a **fresh
//!   machine of a different engine** of the same family: the sem run
//!   alternates reference ↔ pre-resolved, the VM run rotates
//!   stepped → decoded → fused. Chaos fault-plan state rides in the
//!   snapshot, so an interrupted fault schedule resumes mid-flight.
//!
//! The two runs must then agree on *everything observable*: outcome,
//! yield sequence, injected-fault log, the exception-event projection
//! (trace events accumulate across segments; the restored clock
//! continues, so the streams concatenate seamlessly), and the deep
//! final state — memory byte-for-byte, and the step count (sem) or the
//! full cost vector and register file (VM, bit-identical instruction
//! counts). Any disagreement is a [`Failure::Diverged`] naming a
//! `*-snap` oracle; any failure of the snapshot machinery itself
//! (capture refused, blob rejected, restore rejected, re-encode not
//! byte-identical) is a [`Failure::Snapshot`].

use crate::oracle::{
    describe_chaos, fill, guarded, observe_sem_thread, observe_vm_thread, Failure, Limits, Obs,
    Outcome,
};
use cmm_cfg::Program;
use cmm_chaos::{FaultPlan, FaultPlanState, InjectedFault};
use cmm_obs::{RecordingSink, TimedEvent};
use cmm_rt::Thread;
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, SemEngine, SemState, Status, Value};
use cmm_snap::{source_digest, EngineId, MachineState, SnapMeta, Snapshot};
use cmm_vm::{Cost, VmProgram, VmStatus, VmThread};

/// Default fuel slice between snapshot boundaries: small enough that
/// non-trivial programs cross many boundaries, large enough to keep the
/// oracle fast.
pub const SNAP_SLICE: u64 = 64;

/// What a snapshot-equivalence check did: how many snapshots were
/// taken (across both families) and their total encoded size.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SnapStats {
    /// Snapshot/restore cycles performed.
    pub snapshots: u64,
    /// Total encoded bytes across those snapshots.
    pub bytes: u64,
}

/// Everything one run of a family produces, for deep comparison.
struct RunOut<Final> {
    obs: Obs,
    detail: String,
    log: Vec<InjectedFault>,
    fin: Final,
    events: Vec<TimedEvent>,
}

/// Deep final state of a sem-family run.
#[derive(PartialEq)]
struct SemFinal {
    mem: Vec<(u64, u8)>,
    steps: u64,
}

/// Deep final state of a VM-family run.
#[derive(PartialEq)]
struct VmFinal {
    mem: Vec<(u32, u8)>,
    cost: Cost,
    regs: [u64; cmm_vm::isa::regs::NUM_REGS],
}

fn snap_err(e: impl std::fmt::Display) -> Failure {
    Failure::Snapshot(e.to_string())
}

/// Encode → decode → re-encode one snapshot, checking byte identity,
/// envelope equality, and the digest. Returns the decoded snapshot.
fn cycle(snap: &Snapshot, stats: &mut SnapStats) -> Result<Snapshot, Failure> {
    let bytes = snap.encode();
    let decoded = Snapshot::decode(&bytes).map_err(|e| snap_err(format!("decode: {e}")))?;
    if &decoded != snap {
        return Err(snap_err(
            "decoded snapshot is not equal to the captured one",
        ));
    }
    if decoded.encode() != bytes {
        return Err(snap_err(
            "re-encoding a decoded snapshot is not byte-identical",
        ));
    }
    decoded.check_digest(snap.digest).map_err(snap_err)?;
    stats.snapshots += 1;
    stats.bytes += bytes.len() as u64;
    Ok(decoded)
}

fn meta(args: (u32, u32), budget: u64, yields_done: usize) -> SnapMeta {
    SnapMeta {
        entry: "f".into(),
        args: vec![u64::from(args.0), u64::from(args.1)],
        fuel_remaining: budget,
        yields_done: yields_done as u64,
        opt: false,
    }
}

// ----- sem family -----

/// A sem-family thread of either engine, so the sliced drive can hand
/// state back and forth between them.
enum SemT<'p> {
    M(Thread<'p, Machine<'p, RecordingSink>>),
    R(Thread<'p, ResolvedMachine<'p, RecordingSink>>),
}

impl<'p> SemT<'p> {
    fn engine(&self) -> EngineId {
        match self {
            SemT::M(_) => EngineId::Sem,
            SemT::R(_) => EngineId::SemResolved,
        }
    }

    fn start(&mut self, args: (u32, u32)) -> Result<(), String> {
        let vals = vec![Value::b32(args.0), Value::b32(args.1)];
        match self {
            SemT::M(t) => t.start("f", vals).map_err(|w| w.to_string()),
            SemT::R(t) => t.start("f", vals).map_err(|w| w.to_string()),
        }
    }

    fn run(&mut self, fuel: u64) -> Status {
        match self {
            SemT::M(t) => t.run(fuel),
            SemT::R(t) => t.run(fuel),
        }
    }

    fn steps(&self) -> u64 {
        match self {
            SemT::M(t) => t.machine().steps,
            SemT::R(t) => t.machine().steps,
        }
    }

    fn yield_code(&self) -> Option<u64> {
        match self {
            SemT::M(t) => t.yield_code(),
            SemT::R(t) => t.yield_code(),
        }
    }

    /// The dispatcher policy of [`crate::oracle::observe_sem`], applied
    /// to one suspension.
    fn service(&mut self, code: u64) -> Result<(), (Outcome, String)> {
        match self {
            SemT::M(t) => service_thread(t, code),
            SemT::R(t) => service_thread(t, code),
        }
    }

    fn capture(&self) -> Result<(SemState, Option<FaultPlanState>), String> {
        match self {
            SemT::M(t) => Ok((t.machine().capture()?, t.chaos().map(|p| p.state()))),
            SemT::R(t) => Ok((t.machine().capture()?, t.chaos().map(|p| p.state()))),
        }
    }

    /// Tear down, yielding the fault log, deep final state, and the
    /// segment's recorded events.
    fn finish(self) -> (Vec<InjectedFault>, SemFinal, Vec<TimedEvent>) {
        match self {
            SemT::M(t) => {
                let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
                let m = t.into_machine();
                let fin = SemFinal {
                    mem: m.mem_snapshot(),
                    steps: m.steps,
                };
                (log, fin, m.into_sink().events)
            }
            SemT::R(t) => {
                let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
                let m = t.into_machine();
                let fin = SemFinal {
                    mem: m.mem_snapshot(),
                    steps: m.steps,
                };
                (log, fin, m.into_sink().events)
            }
        }
    }
}

fn service_thread<'p, M: SemEngine<'p>>(
    t: &mut Thread<'p, M>,
    code: u64,
) -> Result<(), (Outcome, String)> {
    let Some(mut a) = t.first_activation() else {
        return Err((Outcome::RtsError, "no first activation".into()));
    };
    let _ = t.next_activation(&mut a);
    if let Err(w) = t.set_activation(&a) {
        return Err((Outcome::RtsError, w.to_string()));
    }
    if code % 2 == 1 {
        let _ = t.set_unwind_cont(0);
    }
    let v = Value::b32(fill(code));
    let mut n = 0;
    while let Some(p) = t.find_cont_param(n) {
        *p = v.clone();
        n += 1;
    }
    if let Err(w) = t.resume() {
        return Err((Outcome::RtsError, w.to_string()));
    }
    Ok(())
}

/// Snapshot the current engine and restore into the *other* sem engine.
fn sem_swap<'p>(
    cur: SemT<'p>,
    program: &'p Program,
    rp: &'p ResolvedProgram<'p>,
    digest: [u64; 2],
    meta: SnapMeta,
    events: &mut Vec<TimedEvent>,
    stats: &mut SnapStats,
) -> Result<SemT<'p>, Failure> {
    let engine = cur.engine();
    let (state, chaos) = cur.capture().map_err(snap_err)?;
    let (_, _, ev) = cur.finish();
    events.extend(ev);
    let snap = Snapshot {
        engine,
        digest,
        meta,
        governor: None,
        chaos,
        state: MachineState::Sem(state),
    };
    let decoded = cycle(&snap, stats)?;
    let MachineState::Sem(st) = &decoded.state else {
        return Err(snap_err("sem snapshot decoded to a VM state"));
    };
    let next = match engine {
        EngineId::Sem => {
            let mut m = ResolvedMachine::with_sink(rp, RecordingSink::default());
            m.restore(st)
                .map_err(|e| snap_err(format!("restore into sem-resolved: {e}")))?;
            SemT::R(with_chaos(Thread::over(m), &decoded.chaos))
        }
        _ => {
            let mut m = Machine::with_sink(program, RecordingSink::default());
            m.restore(st)
                .map_err(|e| snap_err(format!("restore into sem: {e}")))?;
            SemT::M(with_chaos(Thread::over(m), &decoded.chaos))
        }
    };
    Ok(next)
}

fn with_chaos<'p, M: SemEngine<'p>>(
    mut t: Thread<'p, M>,
    chaos: &Option<FaultPlanState>,
) -> Thread<'p, M> {
    if let Some(cs) = chaos {
        t.set_chaos(FaultPlan::from_state(cs));
    }
    t
}

/// The straight traced run: the regular policy loop, one full-budget
/// `run` per segment, on the reference engine.
fn sem_straight(
    program: &Program,
    args: (u32, u32),
    limits: &Limits,
    plan: Option<&FaultPlan>,
) -> RunOut<SemFinal> {
    let mut t = Thread::over(Machine::with_sink(program, RecordingSink::default()));
    if let Some(p) = plan {
        t.set_chaos(p.clone());
    }
    let (obs, detail) = observe_sem_thread(&mut t, args, limits);
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    let m = t.into_machine();
    let fin = SemFinal {
        mem: m.mem_snapshot(),
        steps: m.steps,
    };
    RunOut {
        obs,
        detail,
        log,
        fin,
        events: m.into_sink().events,
    }
}

/// The sliced run: snapshot + cross-engine restore at every boundary.
#[allow(clippy::too_many_arguments)] // one parameter per oracle knob
fn sem_sliced<'p>(
    program: &'p Program,
    rp: &'p ResolvedProgram<'p>,
    args: (u32, u32),
    limits: &Limits,
    slice: u64,
    plan: Option<&FaultPlan>,
    digest: [u64; 2],
    stats: &mut SnapStats,
) -> Result<RunOut<SemFinal>, Failure> {
    let mut t = Thread::over(Machine::with_sink(program, RecordingSink::default()));
    if let Some(p) = plan {
        t.set_chaos(p.clone());
    }
    let mut cur = SemT::M(t);
    let mut yields: Vec<u64> = Vec::new();
    let mut events: Vec<TimedEvent> = Vec::new();
    let mut budget = limits.sem_fuel;
    let finish = |cur: SemT<'p>,
                  mut events: Vec<TimedEvent>,
                  outcome: Outcome,
                  detail: String,
                  yields: &[u64]| {
        let (log, fin, ev) = cur.finish();
        events.extend(ev);
        Ok(RunOut {
            obs: Obs {
                outcome,
                yields: yields.to_vec(),
            },
            detail,
            log,
            fin,
            events,
        })
    };
    if let Err(w) = cur.start(args) {
        return finish(cur, events, Outcome::Wrong, w, &yields);
    }
    loop {
        let before = cur.steps();
        let status = cur.run(slice.min(budget));
        budget = budget.saturating_sub(cur.steps().saturating_sub(before));
        match status {
            Status::Terminated(vals) => {
                let bits = vals.iter().map(|v| v.bits().unwrap_or(u64::MAX)).collect();
                return finish(cur, events, Outcome::Halt(bits), String::new(), &yields);
            }
            Status::Wrong(w) => {
                return finish(cur, events, Outcome::Wrong, w.to_string(), &yields);
            }
            Status::OutOfFuel => {
                if budget == 0 {
                    return finish(cur, events, Outcome::Fuel, "out of fuel".into(), &yields);
                }
                let m = meta(args, budget, yields.len());
                cur = sem_swap(cur, program, rp, digest, m, &mut events, stats)?;
            }
            Status::Suspended => {
                if yields.len() >= limits.max_yields {
                    return finish(
                        cur,
                        events,
                        Outcome::Fuel,
                        "suspension bound".into(),
                        &yields,
                    );
                }
                let m = meta(args, budget, yields.len());
                cur = sem_swap(cur, program, rp, digest, m, &mut events, stats)?;
                let code = cur.yield_code().unwrap_or(0);
                yields.push(code);
                if let Err((outcome, detail)) = cur.service(code) {
                    return finish(cur, events, outcome, detail, &yields);
                }
                budget = limits.sem_fuel;
            }
            other => {
                return finish(
                    cur,
                    events,
                    Outcome::RtsError,
                    format!("unexpected status {other:?}"),
                    &yields,
                );
            }
        }
    }
}

// ----- VM family -----

fn vm_tier<'p>(vp: &'p VmProgram, tier: EngineId) -> VmThread<'p, RecordingSink> {
    match tier {
        EngineId::VmDecoded => VmThread::with_sink_decoded(vp, RecordingSink::default()),
        EngineId::VmFused => VmThread::with_sink_fused(vp, RecordingSink::default()),
        _ => VmThread::with_sink(vp, RecordingSink::default()),
    }
}

fn next_tier(tier: EngineId) -> EngineId {
    match tier {
        EngineId::Vm => EngineId::VmDecoded,
        EngineId::VmDecoded => EngineId::VmFused,
        _ => EngineId::Vm,
    }
}

fn vm_finish(t: VmThread<'_, RecordingSink>) -> (Vec<InjectedFault>, VmFinal, Vec<TimedEvent>) {
    let log = t.chaos().map(|p| p.log().to_vec()).unwrap_or_default();
    let m = t.into_machine();
    let fin = VmFinal {
        mem: m.mem.snapshot(),
        cost: m.cost,
        regs: m.regs,
    };
    (log, fin, m.into_sink().events)
}

fn vm_straight(
    vp: &VmProgram,
    args: (u32, u32),
    limits: &Limits,
    plan: Option<&FaultPlan>,
) -> RunOut<VmFinal> {
    let mut t = VmThread::with_sink(vp, RecordingSink::default());
    if let Some(p) = plan {
        t.set_chaos(p.clone());
    }
    let (obs, detail) = observe_vm_thread(&mut t, args, limits);
    let (log, fin, events) = vm_finish(t);
    RunOut {
        obs,
        detail,
        log,
        fin,
        events,
    }
}

fn vm_swap<'p>(
    cur: VmThread<'p, RecordingSink>,
    tier: EngineId,
    vp: &'p VmProgram,
    digest: [u64; 2],
    meta: SnapMeta,
    events: &mut Vec<TimedEvent>,
    stats: &mut SnapStats,
) -> Result<(VmThread<'p, RecordingSink>, EngineId), Failure> {
    let state = cur.machine.capture().map_err(snap_err)?;
    let chaos = cur.chaos().map(|p| p.state());
    events.extend(cur.into_machine().into_sink().events);
    let snap = Snapshot {
        engine: tier,
        digest,
        meta,
        governor: None,
        chaos,
        state: MachineState::Vm(state),
    };
    let decoded = cycle(&snap, stats)?;
    let MachineState::Vm(st) = &decoded.state else {
        return Err(snap_err("vm snapshot decoded to a sem state"));
    };
    let next = next_tier(tier);
    let mut t = vm_tier(vp, next);
    t.machine
        .restore(st)
        .map_err(|e| snap_err(format!("restore into {}: {e}", next.name())))?;
    if let Some(cs) = &decoded.chaos {
        t.set_chaos(FaultPlan::from_state(cs));
    }
    Ok((t, next))
}

fn vm_sliced<'p>(
    vp: &'p VmProgram,
    args: (u32, u32),
    limits: &Limits,
    slice: u64,
    plan: Option<&FaultPlan>,
    digest: [u64; 2],
    stats: &mut SnapStats,
) -> Result<RunOut<VmFinal>, Failure> {
    let mut cur = vm_tier(vp, EngineId::Vm);
    if let Some(p) = plan {
        cur.set_chaos(p.clone());
    }
    let mut tier = EngineId::Vm;
    let mut yields: Vec<u64> = Vec::new();
    let mut events: Vec<TimedEvent> = Vec::new();
    let mut budget = limits.vm_fuel;
    let finish = |cur: VmThread<'p, RecordingSink>,
                  mut events: Vec<TimedEvent>,
                  outcome: Outcome,
                  detail: String,
                  yields: &[u64]| {
        let (log, fin, ev) = vm_finish(cur);
        events.extend(ev);
        Ok(RunOut {
            obs: Obs {
                outcome,
                yields: yields.to_vec(),
            },
            detail,
            log,
            fin,
            events,
        })
    };
    cur.start("f", &[u64::from(args.0), u64::from(args.1)], 1);
    loop {
        let before = cur.machine.cost.instructions;
        let status = cur.run(slice.min(budget));
        budget = budget.saturating_sub(cur.machine.cost.instructions.saturating_sub(before));
        match status {
            VmStatus::Halted(vals) => {
                return finish(cur, events, Outcome::Halt(vals), String::new(), &yields);
            }
            VmStatus::Error(e) => {
                return finish(cur, events, Outcome::Wrong, e, &yields);
            }
            VmStatus::OutOfFuel => {
                if budget == 0 {
                    return finish(cur, events, Outcome::Fuel, "out of fuel".into(), &yields);
                }
                let m = meta(args, budget, yields.len());
                (cur, tier) = vm_swap(cur, tier, vp, digest, m, &mut events, stats)?;
            }
            VmStatus::Suspended => {
                if yields.len() >= limits.max_yields {
                    return finish(
                        cur,
                        events,
                        Outcome::Fuel,
                        "suspension bound".into(),
                        &yields,
                    );
                }
                let m = meta(args, budget, yields.len());
                (cur, tier) = vm_swap(cur, tier, vp, digest, m, &mut events, stats)?;
                let code = cur.machine.yield_args(1)[0];
                yields.push(code);
                if let Err((outcome, detail)) = vm_service(&mut cur, code) {
                    return finish(cur, events, outcome, detail, &yields);
                }
                budget = limits.vm_fuel;
            }
            other => {
                return finish(
                    cur,
                    events,
                    Outcome::RtsError,
                    format!("unexpected status {other:?}"),
                    &yields,
                );
            }
        }
    }
}

fn vm_service(t: &mut VmThread<'_, RecordingSink>, code: u64) -> Result<(), (Outcome, String)> {
    let Some(mut a) = t.first_activation() else {
        return Err((Outcome::RtsError, "no first activation".into()));
    };
    let _ = t.next_activation(&mut a);
    if let Err(e) = t.set_activation(&a) {
        return Err((Outcome::RtsError, e));
    }
    if code % 2 == 1 {
        let _ = t.set_unwind_cont(0);
    }
    let v = u64::from(fill(code));
    let mut n = 0;
    while let Some(p) = t.find_cont_param(n) {
        *p = v;
        n += 1;
    }
    if let Err(e) = t.resume() {
        return Err((Outcome::RtsError, e));
    }
    Ok(())
}

// ----- comparison and entry point -----

/// Compares a straight run against its sliced+snapshotted twin on
/// observation, fault log, exception projection, and deep final state.
fn compare<F: PartialEq>(
    family: &str,
    straight: &RunOut<F>,
    sliced: &RunOut<F>,
    describe_fin: impl Fn(&F) -> String,
) -> Result<(), Failure> {
    if sliced.obs != straight.obs || sliced.log != straight.log {
        return Err(Failure::Diverged {
            oracle: format!("{family}-snap"),
            reference: describe_chaos(&straight.obs, &straight.detail, &straight.log),
            observed: describe_chaos(&sliced.obs, &sliced.detail, &sliced.log),
        });
    }
    let want = cmm_obs::projection(&straight.events);
    let got = cmm_obs::projection(&sliced.events);
    if let Err((i, a, b)) = cmm_obs::first_divergence(&want, &got) {
        return Err(Failure::Diverged {
            oracle: format!("{family}-snap@projection"),
            reference: format!("event {i}: {a}"),
            observed: format!("event {i}: {b}"),
        });
    }
    if sliced.fin != straight.fin {
        return Err(Failure::Diverged {
            oracle: format!("{family}-snap@state"),
            reference: describe_fin(&straight.fin),
            observed: describe_fin(&sliced.fin),
        });
    }
    Ok(())
}

fn describe_sem_final(f: &SemFinal) -> String {
    format!("steps {}, {} memory bytes", f.steps, f.mem.len())
}

fn describe_vm_final(f: &VmFinal) -> String {
    format!(
        "cost {:?}, {} memory bytes, regs fnv {:#x}",
        f.cost,
        f.mem.len(),
        f.regs.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &r| {
            (h ^ r).wrapping_mul(0x0000_0100_0000_01b3)
        })
    )
}

/// Runs the snapshot-equivalence oracle on raw C-- source: for both
/// engine families, the straight run and the
/// snapshot-at-every-boundary run (with cross-engine restores, under an
/// optional chaos fault plan) must agree on observation, fault log,
/// trace projection, and deep final state. See the module docs.
///
/// # Errors
///
/// [`Failure::Parse`]/[`Failure::Build`]/[`Failure::Codegen`] if the
/// source does not compile, [`Failure::Snapshot`] if the snapshot
/// machinery itself fails, [`Failure::Diverged`] (oracle `sem-snap`,
/// `vm-snap`, or a `@projection`/`@state` refinement) if the runs
/// disagree, [`Failure::Panicked`] if an engine panics.
pub fn run_source_snap(
    src: &str,
    args: (u32, u32),
    limits: &Limits,
    slice: u64,
    plan: Option<&FaultPlan>,
) -> Result<SnapStats, Failure> {
    if slice == 0 {
        return Err(Failure::Snapshot("slice must be positive".into()));
    }
    let module = cmm_parse::parse_module(src).map_err(|e| Failure::Parse(e.to_string()))?;
    let program = cmm_cfg::build_program(&module).map_err(|e| Failure::Build(e.to_string()))?;
    let vm_prog = cmm_vm::compile(&program).map_err(|e| Failure::Codegen(e.to_string()))?;
    let digest = source_digest(src, false);
    let rp = ResolvedProgram::new(&program);
    let mut stats = SnapStats::default();

    let straight = guarded("sem-snap/straight", || {
        sem_straight(&program, args, limits, plan)
    })?;
    let sliced = guarded("sem-snap/sliced", || {
        sem_sliced(&program, &rp, args, limits, slice, plan, digest, &mut stats)
    })??;
    compare("sem", &straight, &sliced, describe_sem_final)?;

    let straight = guarded("vm-snap/straight", || {
        vm_straight(&vm_prog, args, limits, plan)
    })?;
    let sliced = guarded("vm-snap/sliced", || {
        vm_sliced(&vm_prog, args, limits, slice, plan, digest, &mut stats)
    })??;
    compare("vm", &straight, &sliced, describe_vm_final)?;

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate;
    use crate::oracle::CHAOS_HORIZON;
    use crate::rng::Rng;
    use cmm_chaos::schedule_seed;

    #[test]
    fn snapshot_equivalence_on_generated_cases() {
        let limits = Limits::default();
        let mut snapped = 0u64;
        for seed in 0..25 {
            let case = generate(&mut Rng::new(seed));
            match run_source_snap(&case.render(), case.args, &limits, SNAP_SLICE, None) {
                Ok(stats) => snapped += stats.snapshots,
                Err(f) => panic!("seed {seed} failed: {f}\n{}", case.render()),
            }
        }
        assert!(snapped > 0, "no case in 0..25 ever crossed a boundary");
    }

    #[test]
    fn snapshot_equivalence_under_chaos() {
        let limits = Limits::default();
        let mut faulted = false;
        for seed in 0..20 {
            let case = generate(&mut Rng::new(seed));
            let plan = FaultPlan::seeded(schedule_seed(seed, 0), CHAOS_HORIZON);
            match run_source_snap(&case.render(), case.args, &limits, SNAP_SLICE, Some(&plan)) {
                Ok(_) => {}
                Err(f) => panic!("seed {seed} chaos snap failed: {f}\n{}", case.render()),
            }
            // The sweep is vacuous unless some plan actually fires.
            let m = cmm_parse::parse_module(&case.render()).unwrap();
            let p = cmm_cfg::build_program(&m).unwrap();
            let (_, _, log) = crate::oracle::observe_sem_chaos(&p, case.args, &limits, &plan);
            faulted |= !log.is_empty();
        }
        assert!(faulted, "no seed in 0..20 ever injected a fault");
    }

    #[test]
    fn tiny_slices_agree_too() {
        // Boundary density maximized: a slice of 1 snapshots at every
        // single transition of a small case.
        let limits = Limits::default();
        let case = generate(&mut Rng::new(3));
        let stats = run_source_snap(&case.render(), case.args, &limits, 1, None)
            .unwrap_or_else(|f| panic!("slice=1 failed: {f}\n{}", case.render()));
        assert!(stats.snapshots > 0);
    }

    #[test]
    fn zero_slice_is_rejected() {
        assert!(matches!(
            run_source_snap("f() { return (0); }", (0, 0), &Limits::default(), 0, None),
            Err(Failure::Snapshot(_))
        ));
    }
}
