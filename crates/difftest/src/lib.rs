//! # cmm-difftest — differential fuzzing of the C-- substrates
//!
//! The repository implements the paper's intermediate language three
//! times over: a formal semantics (`cmm-sem`), an optimizer (`cmm-opt`),
//! and a simulated native target (`cmm-vm`), with the run-time interface
//! of Table 1 implemented over both executable substrates (`cmm-rt` and
//! `cmm-vm::runtime`). That redundancy is this crate's test oracle: any
//! program, however strange, must behave identically everywhere.
//!
//! The pipeline:
//!
//! 1. [`genprog`] generates structured random programs exercising the
//!    paper's exceptional-control-flow features — weak continuations,
//!    `cut to`, `also unwinds to` / `also returns to` / `also aborts`,
//!    tail calls, `yield`, and fallible/checked primitives — that are
//!    well formed by construction (re-checked with `cmm-ir`'s verifier)
//!    and terminate structurally;
//! 2. [`oracle`] runs each program through the reference semantics, each
//!    optimization pass individually, the full pipeline, and the VM,
//!    comparing final results, "went wrong" states, and the sequence of
//!    yield codes serviced by a fixed deterministic run-time policy;
//! 3. [`shrink`] delta-debugs any divergence down to a minimal
//!    reproducer, which [`run_fuzz`] writes to a corpus directory as a
//!    standalone `.cmm` file.
//!
//! Everything is reproducible from `(seed, index)`: see [`case_for`].

pub mod genprog;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod snap_oracle;

pub use genprog::{generate, shrink_candidates, TestCase};
pub use oracle::{
    observe_sem, observe_sem_chaos, observe_sem_resolved, observe_sem_resolved_chaos,
    observe_traced, observe_vm, observe_vm_chaos, observe_vm_decoded, observe_vm_decoded_chaos,
    observe_vm_fused, observe_vm_fused_chaos, pass_variants, run_case, run_case_with, run_source,
    run_source_chaos, ExtraPass, Failure, Limits, Obs, Outcome,
};
pub use rng::Rng;
pub use shrink::shrink;
pub use snap_oracle::{run_source_snap, SnapStats, SNAP_SLICE};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Configuration for a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of cases to generate and check.
    pub cases: usize,
    /// Base seed; case `i` is derived from `(seed, i)` independently of
    /// the other cases.
    pub seed: u64,
    /// Minimize failing cases before reporting them.
    pub shrink: bool,
    /// Where to write reproducers for failing cases, if anywhere.
    pub corpus_dir: Option<PathBuf>,
    /// Per-oracle execution limits.
    pub limits: Limits,
    /// Maximum oracle evaluations the minimizer may spend per failure.
    pub shrink_budget: usize,
    /// Stop after this many failures.
    pub max_failures: usize,
    /// Additionally run each case under seeded Table 1 fault schedules
    /// (`cmm fuzz --chaos`), asserting all four engines observe the same
    /// outcomes and injected-fault logs.
    pub chaos: bool,
    /// Base seed for the fault schedules; schedule `k` of a case uses
    /// `schedule_seed(fault_seed, k)`.
    pub fault_seed: u64,
    /// Fault schedules per case when `chaos` is on.
    pub schedules: u64,
    /// Additionally run the snapshot-equivalence oracle on each case
    /// (`cmm fuzz --snap`): a straight run must deeply equal a run that
    /// is snapshotted, serialized, and restored into a different engine
    /// of the same family at every fuel-slice boundary — plain and
    /// under one seeded fault schedule.
    pub snap: bool,
    /// Fuel slice between snapshot boundaries when `snap` is on.
    pub snap_slice: u64,
    /// Worker threads for case checking (`cmm fuzz --jobs N`). `1`
    /// runs fully sequentially. Any value produces a bit-identical
    /// report: cases are *checked* in parallel on the `cmm-pool`
    /// executor, but failures are folded, shrunk, and written to the
    /// corpus in index order by the calling thread.
    pub jobs: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 1000,
            seed: 0,
            shrink: true,
            corpus_dir: None,
            limits: Limits::default(),
            shrink_budget: 4000,
            max_failures: 1,
            chaos: false,
            fault_seed: 0,
            schedules: 5,
            snap: false,
            snap_slice: snap_oracle::SNAP_SLICE,
            jobs: 1,
        }
    }
}

/// One failing case and what became of it.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The case's index within the run.
    pub index: u64,
    /// The case as generated.
    pub case: TestCase,
    /// Why it failed.
    pub failure: Failure,
    /// The minimized case, when shrinking was enabled.
    pub shrunk: Option<TestCase>,
    /// Where the reproducer was written, when a corpus was configured.
    pub corpus_path: Option<PathBuf>,
    /// Where the divergence event-stream artifact was written, when the
    /// failure was a divergence and a corpus was configured.
    pub events_path: Option<PathBuf>,
}

/// The result of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases_run: usize,
    /// Failures found (at most `max_failures`).
    pub failures: Vec<FailureReport>,
}

impl FuzzReport {
    /// Whether every case passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The test case for `(seed, index)`. Each index gets a decorrelated
/// generator stream, so a single failing case can be regenerated in
/// isolation without replaying the run.
pub fn case_for(seed: u64, index: u64) -> TestCase {
    let mut derive = Rng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    generate(&mut derive.split())
}

/// Runs the fuzzer.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_with(cfg, &[])
}

/// [`run_fuzz`] with extra injected passes (see [`oracle::run_case_with`]).
pub fn run_fuzz_with(cfg: &FuzzConfig, extra_passes: &[ExtraPass<'_>]) -> FuzzReport {
    let mut report = FuzzReport::default();
    // The full per-case check: the normal oracle stack, then (in chaos
    // mode) the cross-engine fault-schedule sweep.
    let check = |case: &TestCase| -> Result<(), Failure> {
        oracle::run_case_with(case, &cfg.limits, extra_passes)?;
        if cfg.chaos {
            oracle::run_source_chaos(
                &case.render(),
                case.args,
                &cfg.limits,
                cfg.fault_seed,
                cfg.schedules,
            )?;
        }
        if cfg.snap {
            let src = case.render();
            snap_oracle::run_source_snap(&src, case.args, &cfg.limits, cfg.snap_slice, None)?;
            let plan = cmm_chaos::FaultPlan::seeded(
                cmm_chaos::schedule_seed(cfg.fault_seed, 0),
                oracle::CHAOS_HORIZON,
            );
            snap_oracle::run_source_snap(
                &src,
                case.args,
                &cfg.limits,
                cfg.snap_slice,
                Some(&plan),
            )?;
        }
        Ok(())
    };
    // Cases are *checked* in waves on the `cmm-pool` executor (inline
    // when `jobs <= 1`); everything order-sensitive — the `cases_run`
    // count, the `max_failures` cutoff, shrinking, corpus writes —
    // happens in this thread's index-ordered fold over each finished
    // wave, so the report is bit-identical for every `jobs` value. A
    // wave may check a few cases past the cutoff; their results are
    // discarded by the fold exactly as the sequential loop would never
    // have reached them.
    let pool = cmm_pool::PoolConfig {
        workers: cfg.jobs,
        queue_cap: 256,
    };
    let wave = if cfg.jobs <= 1 { 1 } else { cfg.jobs * 8 };
    let total = cfg.cases as u64;
    let mut next = 0u64;
    'run: while next < total {
        let hi = (next + wave as u64).min(total);
        let outcomes = cmm_pool::run_jobs(&pool, (next..hi).collect(), |_, i| {
            check(&case_for(cfg.seed, i))
        });
        for (k, outcome) in outcomes.into_iter().enumerate() {
            let index = next + k as u64;
            let case = case_for(cfg.seed, index);
            report.cases_run += 1;
            let result = match outcome {
                cmm_pool::JobOutcome::Done(r) => r,
                // Every oracle is individually panic-isolated, so a
                // panic escaping `check` itself is a harness bug;
                // report it in the oracle layer's vocabulary instead
                // of unwinding through the fuzz loop.
                cmm_pool::JobOutcome::Panicked(message) => Err(Failure::Panicked {
                    oracle: "harness".into(),
                    message,
                }),
            };
            let Err(failure) = result else {
                continue;
            };
            let shrunk = if cfg.shrink {
                // Only candidates reproducing the original classification
                // count: shrinking must not wander from, say, a panic to an
                // unrelated divergence.
                let class = failure.classify();
                Some(shrink::shrink(
                    &case,
                    &mut |c| check(c).is_err_and(|f| f.classify() == class),
                    cfg.shrink_budget,
                ))
            } else {
                None
            };
            let reported = shrunk.as_ref().unwrap_or(&case);
            let chaos = cfg.chaos.then_some((cfg.fault_seed, cfg.schedules));
            let snap = cfg.snap.then_some(cfg.snap_slice);
            let corpus_path = cfg.corpus_dir.as_deref().and_then(|dir| {
                write_reproducer(dir, cfg.seed, index, reported, &failure, chaos, snap).ok()
            });
            // Shrinking may move the divergence to a different oracle, so
            // the artifact names whichever oracle fails on the *reported*
            // case.
            let diverged_oracle =
                match oracle::run_source(&reported.render(), reported.args, &cfg.limits) {
                    Err(Failure::Diverged { oracle, .. }) => Some(oracle),
                    _ => match &failure {
                        Failure::Diverged { oracle, .. } => Some(oracle.clone()),
                        _ => None,
                    },
                };
            let events_path = match (cfg.corpus_dir.as_deref(), diverged_oracle) {
                (Some(dir), Some(oracle)) => write_divergence_events(
                    dir,
                    cfg.seed,
                    index,
                    &reported.render(),
                    reported.args,
                    &cfg.limits,
                    &oracle,
                )
                .ok(),
                _ => None,
            };
            report.failures.push(FailureReport {
                index,
                case,
                failure,
                shrunk,
                corpus_path,
                events_path,
            });
            if report.failures.len() >= cfg.max_failures {
                break 'run;
            }
        }
        next = hi;
    }
    report
}

/// Writes a standalone reproducer file `case-s<seed>-i<index>.cmm` into
/// `dir`, creating it if necessary. The header comment records the
/// failure and how to re-run the case; a chaos-sweep failure records its
/// `(fault_seed, schedules)` so [`replay_corpus`] re-runs the same fault
/// schedules, and a snapshot-oracle failure records its fuel slice so
/// replay re-runs the snapshot-equivalence check too.
#[allow(clippy::too_many_arguments)]
pub fn write_reproducer(
    dir: &Path,
    seed: u64,
    index: u64,
    case: &TestCase,
    failure: &Failure,
    chaos: Option<(u64, u64)>,
    snap: Option<u64>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("case-s{seed}-i{index}.cmm"));
    let mut text = String::new();
    let _ = writeln!(
        text,
        "/* cmm-difftest reproducer (seed {seed}, case {index})"
    );
    let _ = writeln!(text, " *");
    for line in failure.to_string().lines() {
        let _ = writeln!(text, " * {line}");
    }
    let _ = writeln!(text, " *");
    let chaos_flags = match chaos {
        Some((fault_seed, schedules)) => {
            format!(" --chaos --fault-seed {fault_seed} --schedules {schedules}")
        }
        None => String::new(),
    };
    let snap_flags = match snap {
        Some(slice) => format!(" --snap --snap-slice {slice}"),
        None => String::new(),
    };
    let _ = writeln!(
        text,
        " * Reproduce with: cmm fuzz --seed {seed} --cases {} --shrink{chaos_flags}{snap_flags}",
        index + 1
    );
    let _ = writeln!(text, " * Entry point: f({}, {})", case.args.0, case.args.1);
    if let Some((fault_seed, schedules)) = chaos {
        let _ = writeln!(
            text,
            " * Chaos: fault-seed {fault_seed}, schedules {schedules}"
        );
    }
    if let Some(slice) = snap {
        let _ = writeln!(text, " * Snap: slice {slice}");
    }
    let _ = writeln!(text, " */");
    text.push_str(&case.render());
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Writes the divergence event-stream artifact
/// `case-s<seed>-i<index>.events.txt` next to the reproducer: the
/// reference oracle and the diverging oracle re-run with recording
/// sinks, the first diverging event of their exception projections, and
/// both full event logs. This is the observability counterpart of the
/// reproducer — the `.cmm` file says *what* to re-run, the `.events.txt`
/// says *where* the two substrates parted ways.
///
/// # Errors
///
/// Returns the I/O error if the directory or file cannot be written.
pub fn write_divergence_events(
    dir: &Path,
    seed: u64,
    index: u64,
    src: &str,
    args: (u32, u32),
    limits: &Limits,
    oracle_name: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("case-s{seed}-i{index}.events.txt"));
    let mut text = String::new();
    let _ = writeln!(
        text,
        "cmm-difftest divergence events (seed {seed}, case {index}, oracle {oracle_name})"
    );
    let _ = writeln!(
        text,
        "replay: cmm fuzz --seed {seed} --cases {} --shrink",
        index + 1
    );
    let reference = oracle::observe_traced(src, "reference", args, limits);
    let observed = oracle::observe_traced(src, oracle_name, args, limits);
    match (&reference, &observed) {
        (Ok((_, _, re)), Ok((_, _, oe))) => {
            let rp = cmm_obs::projection(re);
            let op = cmm_obs::projection(oe);
            match cmm_obs::first_divergence(&rp, &op) {
                Ok(()) => {
                    let _ = writeln!(
                        text,
                        "exception projections agree; the divergence is in results or yields only"
                    );
                }
                Err((i, l, r)) => {
                    let _ = writeln!(text, "first diverging event, at projection index {i}:");
                    let _ = writeln!(text, "  reference:    {l}");
                    let _ = writeln!(text, "  {oracle_name}: {r}");
                }
            }
        }
        _ => {
            let _ = writeln!(text, "(one of the traced re-runs failed; logs follow)");
        }
    }
    for (label, run) in [("reference", &reference), (oracle_name, &observed)] {
        match run {
            Ok((obs, detail, events)) => {
                let _ = writeln!(text, "\n== {label}: {} ==", obs.describe(detail));
                for t in events {
                    let _ = writeln!(text, "{:>10}  {}", t.ts, t.event.render());
                }
            }
            Err(e) => {
                let _ = writeln!(text, "\n== {label}: re-trace failed: {e} ==");
            }
        }
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

/// One checked-in reproducer that diverged (or stopped parsing) on
/// replay.
#[derive(Clone, Debug)]
pub struct ReplayFailure {
    /// The corpus file.
    pub path: PathBuf,
    /// Why it failed.
    pub failure: Failure,
}

/// The result of replaying a corpus directory.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Corpus files replayed.
    pub files_run: usize,
    /// Files that no longer pass the oracle stack.
    pub failures: Vec<ReplayFailure>,
}

impl ReplayReport {
    /// Whether every corpus file still passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Replays every `.cmm` reproducer in `dir` (sorted by file name)
/// through the full oracle stack — reference semantics, every pass
/// variant, and both VM engines. Entry arguments are recovered from the
/// reproducer header written by [`write_reproducer`]
/// (`* Entry point: f(A, B)`), defaulting to `f(0, 0)` for hand-written
/// corpus files without one. A `* Chaos: fault-seed F, schedules K`
/// header additionally replays the case under the same K fault
/// schedules through all four engines. A `* Snap: slice N` header
/// additionally replays the case through the snapshot-equivalence
/// oracle at that fuel slice — plain, and (when a chaos header is also
/// present) under the first of its fault schedules.
///
/// A file that fails to parse is itself a failure: a stale corpus must
/// be loud, not silently skipped.
///
/// # Errors
///
/// Returns the I/O error if the directory or a file cannot be read.
pub fn replay_corpus(dir: &Path, limits: &Limits) -> std::io::Result<ReplayReport> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cmm"))
        .collect();
    files.sort();
    let mut report = ReplayReport::default();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let args = entry_args(&text).unwrap_or((0, 0));
        report.files_run += 1;
        let replayed = oracle::run_source(&text, args, limits)
            .and_then(|()| match chaos_header(&text) {
                Some((fault_seed, schedules)) => {
                    oracle::run_source_chaos(&text, args, limits, fault_seed, schedules)
                }
                None => Ok(()),
            })
            .and_then(|()| match snap_header(&text) {
                Some(slice) => {
                    snap_oracle::run_source_snap(&text, args, limits, slice, None)?;
                    if let Some((fault_seed, _)) = chaos_header(&text) {
                        let plan = cmm_chaos::FaultPlan::seeded(
                            cmm_chaos::schedule_seed(fault_seed, 0),
                            oracle::CHAOS_HORIZON,
                        );
                        snap_oracle::run_source_snap(&text, args, limits, slice, Some(&plan))?;
                    }
                    Ok(())
                }
                None => Ok(()),
            });
        if let Err(failure) = replayed {
            report.failures.push(ReplayFailure { path, failure });
        }
    }
    Ok(report)
}

/// Parses the `* Entry point: f(A, B)` header line of a reproducer.
fn entry_args(text: &str) -> Option<(u32, u32)> {
    let line = text.lines().find(|l| l.contains("Entry point: f("))?;
    let open = line.find("f(")? + 2;
    let close = line[open..].find(')')? + open;
    let mut parts = line[open..close].split(',');
    let a = parts.next()?.trim().parse().ok()?;
    let b = parts.next()?.trim().parse().ok()?;
    Some((a, b))
}

/// Parses the `* Snap: slice N` header line.
fn snap_header(text: &str) -> Option<u64> {
    let line = text.lines().find(|l| l.contains("Snap: slice "))?;
    let rest = &line[line.find("slice ")? + "slice ".len()..];
    rest.trim().parse().ok()
}

/// Parses the `* Chaos: fault-seed F, schedules K` header line.
fn chaos_header(text: &str) -> Option<(u64, u64)> {
    let line = text.lines().find(|l| l.contains("Chaos: fault-seed "))?;
    let rest = &line[line.find("fault-seed ")? + "fault-seed ".len()..];
    let mut parts = rest.split(',');
    let fault_seed = parts.next()?.trim().parse().ok()?;
    let sched_part = parts.next()?.trim();
    let schedules = sched_part.strip_prefix("schedules ")?.trim().parse().ok()?;
    Some((fault_seed, schedules))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_derivation_is_stable_and_independent() {
        assert_eq!(case_for(0, 7), case_for(0, 7));
        assert_ne!(case_for(0, 7), case_for(0, 8));
        assert_ne!(case_for(0, 7), case_for(1, 7));
    }

    #[test]
    fn a_clean_run_reports_no_failures() {
        let cfg = FuzzConfig {
            cases: 25,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert_eq!(report.cases_run, 25);
        assert!(
            report.ok(),
            "{:?}",
            report.failures.first().map(|f| f.failure.to_string())
        );
    }

    #[test]
    fn entry_args_reads_the_reproducer_header() {
        assert_eq!(
            entry_args("/* x\n * Entry point: f(3, 41)\n */"),
            Some((3, 41))
        );
        assert_eq!(entry_args("f() { return (0); }"), None);
    }

    #[test]
    fn replay_accepts_a_passing_reproducer_and_rejects_a_stale_one() {
        let dir = std::env::temp_dir().join("cmm-difftest-replay-selftest");
        let _ = std::fs::remove_dir_all(&dir);
        let case = case_for(5, 2);
        let failure = Failure::Build("synthetic".into());
        write_reproducer(&dir, 5, 2, &case, &failure, None, None).unwrap();
        std::fs::write(dir.join("case-stale.cmm"), "not a program at all").unwrap();
        let report = replay_corpus(&dir, &Limits::default()).unwrap();
        assert_eq!(report.files_run, 2);
        assert_eq!(report.failures.len(), 1, "only the stale file fails");
        assert!(report.failures[0].path.ends_with("case-stale.cmm"));
        assert!(matches!(report.failures[0].failure, Failure::Parse(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergence_event_artifact_contains_both_logs() {
        let dir = std::env::temp_dir().join("cmm-difftest-events-selftest");
        let _ = std::fs::remove_dir_all(&dir);
        let case = case_for(1, 0);
        let src = case.render();
        let path =
            write_divergence_events(&dir, 1, 0, &src, case.args, &Limits::default(), "vm").unwrap();
        assert!(path.ends_with("case-s1-i0.events.txt"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("replay: cmm fuzz --seed 1"), "{text}");
        assert!(text.contains("== reference:"), "{text}");
        assert!(text.contains("== vm:"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reproducers_are_valid_cmm_with_a_header() {
        let dir = std::env::temp_dir().join("cmm-difftest-selftest");
        let _ = std::fs::remove_dir_all(&dir);
        let case = case_for(3, 1);
        let failure = Failure::Build("synthetic".into());
        let path = write_reproducer(&dir, 3, 1, &case, &failure, None, None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("/* cmm-difftest reproducer"));
        cmm_parse::parse_module(&text).expect("reproducer parses (comment included)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_header_round_trips() {
        assert_eq!(
            chaos_header("/* x\n * Chaos: fault-seed 7, schedules 3\n */"),
            Some((7, 3))
        );
        assert_eq!(chaos_header("/* no chaos here */"), None);
    }

    #[test]
    fn snap_header_round_trips() {
        let dir = std::env::temp_dir().join("cmm-difftest-snap-header-selftest");
        let _ = std::fs::remove_dir_all(&dir);
        let case = case_for(5, 2);
        let failure = Failure::Snapshot("synthetic".into());
        let path = write_reproducer(&dir, 5, 2, &case, &failure, None, Some(16)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("--snap --snap-slice 16"), "{text}");
        assert_eq!(snap_header(&text), Some(16));
        assert_eq!(snap_header("/* no snap here */"), None);
        // The replayed corpus must actually run the snapshot oracle.
        let report = replay_corpus(&dir, &Limits::default()).unwrap();
        assert!(report.ok(), "{:?}", report.failures);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrinking_preserves_the_failure_classification() {
        // Property (satellite of the chaos PR): the minimized case must
        // reproduce the *same classification* of failure as the case it
        // was shrunk from, for every failure in a sweep against a
        // deliberately broken pass.
        let force_true = |p: &mut cmm_cfg::Program| {
            for g in p.procs.values_mut() {
                for id in 0..g.nodes.len() {
                    let id = cmm_cfg::NodeId(id as u32);
                    if let cmm_cfg::Node::Branch { t, .. } = g.node(id) {
                        let t = *t;
                        *g.node_mut(id) = cmm_cfg::Node::Branch {
                            cond: cmm_ir::Expr::b32(1),
                            t,
                            f: t,
                        };
                    }
                }
            }
        };
        let cfg = FuzzConfig {
            cases: 80,
            shrink: true,
            shrink_budget: 400,
            max_failures: 3,
            ..FuzzConfig::default()
        };
        let passes: &[ExtraPass<'_>] = &[("force-true", &force_true)];
        let report = run_fuzz_with(&cfg, passes);
        assert!(
            !report.failures.is_empty(),
            "no case in 0..80 exposed the forced-branch pass"
        );
        for f in &report.failures {
            let shrunk = f.shrunk.as_ref().expect("shrinking was enabled");
            let refail = oracle::run_case_with(shrunk, &cfg.limits, passes)
                .expect_err("shrunk case must still fail");
            assert_eq!(
                refail.classify(),
                f.failure.classify(),
                "shrunk case slid from {} to {}",
                f.failure,
                refail
            );
        }
    }

    #[test]
    fn parallel_fuzzing_is_bit_identical_to_sequential() {
        // The --jobs satellite's contract: the report — cases run,
        // failure indices, failure text, shrunk reproducers, corpus
        // files — is a pure function of the config, not of the worker
        // count. Exercised against a deliberately broken pass so the
        // run actually finds, shrinks, and writes failures.
        let force_true = |p: &mut cmm_cfg::Program| {
            for g in p.procs.values_mut() {
                for id in 0..g.nodes.len() {
                    let id = cmm_cfg::NodeId(id as u32);
                    if let cmm_cfg::Node::Branch { t, .. } = g.node(id) {
                        let t = *t;
                        *g.node_mut(id) = cmm_cfg::Node::Branch {
                            cond: cmm_ir::Expr::b32(1),
                            t,
                            f: t,
                        };
                    }
                }
            }
        };
        let passes: &[ExtraPass<'_>] = &[("force-true", &force_true)];
        let corpus = |tag: &str| std::env::temp_dir().join(format!("cmm-difftest-jobs-{tag}"));
        let run = |jobs: usize, tag: &str| {
            let dir = corpus(tag);
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = FuzzConfig {
                cases: 60,
                shrink: true,
                shrink_budget: 200,
                max_failures: 2,
                corpus_dir: Some(dir.clone()),
                jobs,
                ..FuzzConfig::default()
            };
            let report = run_fuzz_with(&cfg, passes);
            let mut files: Vec<(String, String)> = std::fs::read_dir(&dir)
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .map(|e| {
                            (
                                e.file_name().to_string_lossy().into_owned(),
                                std::fs::read_to_string(e.path()).unwrap(),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            files.sort();
            let _ = std::fs::remove_dir_all(&dir);
            (report, files)
        };
        let (seq, seq_files) = run(1, "j1");
        let (par, par_files) = run(4, "j4");
        assert!(!seq.failures.is_empty(), "broken pass must be caught");
        assert_eq!(seq.cases_run, par.cases_run);
        assert_eq!(seq.failures.len(), par.failures.len());
        for (a, b) in seq.failures.iter().zip(&par.failures) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.case.render(), b.case.render());
            assert_eq!(a.failure.to_string(), b.failure.to_string());
            assert_eq!(
                a.shrunk.as_ref().map(|c| c.render()),
                b.shrunk.as_ref().map(|c| c.render())
            );
        }
        assert_eq!(seq_files, par_files, "corpus bytes differ across -j");
    }
}
