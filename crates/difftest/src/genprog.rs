//! Structured random generation of C-- test programs.
//!
//! A [`TestCase`] is a *tree*, not a string: generation and shrinking both
//! operate on the tree, and [`TestCase::render`] turns it into concrete
//! C-- syntax. Every rendered program is well formed (checked by the
//! `cmm-ir` verifier as a post-condition in the fuzz driver) and
//! structurally terminating:
//!
//! * the driver procedure `f` runs a counted loop (`i` iterations, at
//!   most [`MAX_LOOP`]);
//! * generated statements contain no free `goto`s — the only back edge
//!   is the loop's own, and every continuation handler decrements `i`
//!   before re-entering the loop (or returns), so each handler entry and
//!   each full loop body makes progress;
//! * callees never recurse.
//!
//! The exceptional-control-flow features of the paper all appear:
//! weak continuations, `cut to` through annotated call sites,
//! `also unwinds to` / `also returns to` / `also aborts` annotations,
//! tail calls (`jump`), `yield` into the run-time system, fast fallible
//! primitives (`%divu`, shifts — may make the program "go wrong"), and
//! slow-but-solid `%%` checked primitives.

use crate::rng::Rng;
use std::fmt::Write as _;

/// Assignable `bits32` variables of the driver procedure `f`.
///
/// `a` and `b` are the formals; `c`, `d`, `t` are locals. The loop
/// counter `i` is read-only for generated code so termination cannot be
/// broken, and `t` doubles as every continuation's parameter.
pub const VARS: [&str; 5] = ["a", "b", "c", "d", "t"];

/// Binary operators the expression generator may emit, with their
/// concrete spellings. The last four can fail (`%divu`-style unspecified
/// behaviour — the semantics goes wrong), which is deliberate: the
/// substrates must *agree* on failing programs too.
pub const BIN_OPS: [&str; 13] = [
    "+", "-", "*", "&", "|", "^", "==", "!=", "<", ">", "<<", "/", "%",
];

/// Index of the first fallible operator in [`BIN_OPS`].
pub const FIRST_FALLIBLE: usize = 10;

/// Checked (`%%`) primitives the generator may call.
pub const CHECKED_PRIMS: [&str; 3] = ["%%divu", "%%modu", "%%shl"];

/// Maximum loop iterations of the driver procedure.
pub const MAX_LOOP: u32 = 4;

/// Number of `bits32` slots in the scratch data block `cells`.
pub const CELLS: u32 = 8;

/// A pure `bits32` expression over [`VARS`] and the `cells` data block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GenExpr {
    /// A literal constant.
    Lit(u32),
    /// One of [`VARS`] by index.
    Var(u8),
    /// `bits32[cells + (e % CELLS) * 4]` — a masked in-bounds load.
    Load(Box<GenExpr>),
    /// A binary operator from [`BIN_OPS`] by index.
    Bin(u8, Box<GenExpr>, Box<GenExpr>),
}

/// What a generated callee `g<i>` does with its argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CalleeKind {
    /// `return (x * 3 + 1);`
    Plain,
    /// `jump h(x);` — a tail call.
    Tail,
    /// `return <0/1> (..)` on a data-dependent condition, else
    /// `return <1/1> (..)`; the call site says `also returns to kr`.
    AltRet,
    /// `cut to kk(..)` on a data-dependent condition; the continuation
    /// arrives as the second argument and the call site says
    /// `also cuts to kc`.
    Cut,
    /// `yield(..) also aborts;` then return — exercises the run-time
    /// system walking over this activation.
    YieldAbort,
}

/// A generated callee: one per call site, so each site's annotations can
/// match its callee's behaviour exactly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Callee {
    /// Behaviour.
    pub kind: CalleeKind,
    /// Small constant folded into conditions and arithmetic so call
    /// sites differ; also supplies the optional-annotation bits.
    pub tweak: u32,
}

impl Callee {
    /// Whether the call site additionally says `also aborts`
    /// (semantically required for nothing here, but the annotation must
    /// be *allowed* everywhere, so fuzz it).
    pub fn site_aborts(&self) -> bool {
        self.tweak & 1 == 1
    }

    /// Whether the call site additionally says `also unwinds to ku`.
    pub fn site_unwinds(&self) -> bool {
        self.tweak & 2 == 2
    }
}

/// A generated statement of the driver's loop body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GenStmt {
    /// `v = e;`
    Assign(u8, GenExpr),
    /// `bits32[cells + (addr % CELLS) * 4] = e;`
    Store(GenExpr, GenExpr),
    /// `if c { .. } else { .. }`
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    /// `v = h(e);` — call the fixed helper.
    CallH(u8, GenExpr),
    /// `v = g<idx>(e, ..) also ..;` — call generated callee `idx`.
    CallG(u8, usize, GenExpr),
    /// `v = %%prim(e1, e2) [also unwinds to ku];`
    Checked(u8, u8, GenExpr, GenExpr, bool),
    /// `yield(e & 15) [also unwinds to ku] also aborts;`
    Yield(GenExpr, bool),
}

/// What a continuation handler does after receiving its parameter `t`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Handler {
    /// `true`: accumulate and re-enter the loop (after decrementing the
    /// counter); `false`: return from `f` immediately.
    pub resume: bool,
    /// Which of [`VARS`] accumulates the parameter.
    pub acc: u8,
}

/// The three continuations of the driver, in fixed order.
pub const CONT_NAMES: [&str; 3] = ["kc", "kr", "ku"];

/// A complete generated test case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestCase {
    /// Arguments passed to `f`.
    pub args: (u32, u32),
    /// Loop iterations (1..=[`MAX_LOOP`]).
    pub loop_n: u32,
    /// The loop body.
    pub body: Vec<GenStmt>,
    /// Callees, indexed by [`GenStmt::CallG`].
    pub callees: Vec<Callee>,
    /// Handlers for `kc` (cut), `kr` (alternate return), `ku` (unwind).
    pub handlers: [Handler; 3],
}

// ----- generation -----

/// Generates a random test case.
pub fn generate(rng: &mut Rng) -> TestCase {
    let mut callees = Vec::new();
    let len = rng.range(1, 8) as usize;
    let body = gen_block(rng, len, 0, &mut callees);
    TestCase {
        args: (gen_lit(rng), gen_lit(rng)),
        loop_n: rng.range(1, MAX_LOOP),
        body,
        callees,
        handlers: [gen_handler(rng), gen_handler(rng), gen_handler(rng)],
    }
}

fn gen_handler(rng: &mut Rng) -> Handler {
    Handler {
        resume: rng.chance(3, 4),
        acc: rng.below(4) as u8,
    }
}

fn gen_block(rng: &mut Rng, len: usize, depth: usize, callees: &mut Vec<Callee>) -> Vec<GenStmt> {
    (0..len).map(|_| gen_stmt(rng, depth, callees)).collect()
}

fn gen_stmt(rng: &mut Rng, depth: usize, callees: &mut Vec<Callee>) -> GenStmt {
    let roll = rng.below(100);
    match roll {
        0..=29 => GenStmt::Assign(rng.below(VARS.len()) as u8, gen_expr(rng, 2)),
        30..=41 => GenStmt::Store(gen_expr(rng, 1), gen_expr(rng, 2)),
        42..=56 if depth < 2 => {
            let t_len = rng.range(1, 3) as usize;
            let e_len = rng.range(0, 2) as usize;
            let cond = gen_expr(rng, 2);
            let then_ = gen_block(rng, t_len, depth + 1, callees);
            let else_ = gen_block(rng, e_len, depth + 1, callees);
            GenStmt::If(cond, then_, else_)
        }
        42..=56 => GenStmt::Assign(rng.below(VARS.len()) as u8, gen_expr(rng, 2)),
        57..=66 => GenStmt::CallH(rng.below(VARS.len()) as u8, gen_expr(rng, 1)),
        67..=81 => {
            let kind = *rng.pick(&[
                CalleeKind::Plain,
                CalleeKind::Tail,
                CalleeKind::AltRet,
                CalleeKind::Cut,
                CalleeKind::Cut,
                CalleeKind::YieldAbort,
            ]);
            callees.push(Callee {
                kind,
                tweak: rng.next_u32() & 0xff,
            });
            GenStmt::CallG(
                rng.below(VARS.len()) as u8,
                callees.len() - 1,
                gen_expr(rng, 1),
            )
        }
        82..=91 => GenStmt::Checked(
            rng.below(VARS.len()) as u8,
            rng.below(CHECKED_PRIMS.len()) as u8,
            gen_expr(rng, 1),
            gen_expr(rng, 1),
            rng.chance(1, 2),
        ),
        _ => GenStmt::Yield(gen_expr(rng, 1), rng.chance(1, 2)),
    }
}

fn gen_lit(rng: &mut Rng) -> u32 {
    let small = rng.next_u32() & 0xff;
    *rng.pick(&[
        0u32,
        1,
        2,
        3,
        5,
        7,
        8,
        15,
        16,
        100,
        0x7fff_ffff,
        0xffff_ffff,
        small,
    ])
}

fn gen_expr(rng: &mut Rng, fuel: usize) -> GenExpr {
    if fuel == 0 || rng.chance(2, 5) {
        return if rng.chance(1, 2) {
            GenExpr::Lit(gen_lit(rng))
        } else {
            GenExpr::Var(rng.below(VARS.len()) as u8)
        };
    }
    if rng.chance(1, 8) {
        return GenExpr::Load(Box::new(gen_expr(rng, fuel - 1)));
    }
    // Fallible operators are rarer but present: "going wrong" must be
    // preserved by every oracle.
    let op = if rng.chance(1, 8) {
        rng.range(FIRST_FALLIBLE as u32, BIN_OPS.len() as u32 - 1) as u8
    } else {
        rng.below(FIRST_FALLIBLE) as u8
    };
    GenExpr::Bin(
        op,
        Box::new(gen_expr(rng, fuel - 1)),
        Box::new(gen_expr(rng, fuel - 1)),
    )
}

// ----- rendering -----

impl GenExpr {
    fn render(&self, out: &mut String) {
        match self {
            GenExpr::Lit(v) => {
                let _ = write!(out, "{v}");
            }
            GenExpr::Var(v) => out.push_str(VARS[*v as usize]),
            GenExpr::Load(a) => {
                out.push_str("bits32[cells + ((");
                a.render(out);
                let _ = write!(out, ") % {CELLS}) * 4]");
            }
            GenExpr::Bin(op, a, b) => {
                out.push('(');
                a.render(out);
                let _ = write!(out, " {} ", BIN_OPS[*op as usize]);
                b.render(out);
                out.push(')');
            }
        }
    }

    fn to_src(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

impl TestCase {
    /// The scratch-cell store/load address for an index expression.
    fn addr(e: &GenExpr) -> String {
        format!("cells + (({}) % {CELLS}) * 4", e.to_src())
    }

    /// Number of statements, counted recursively (`if` counts as one
    /// plus its arms) — the size metric shrinking minimizes.
    pub fn stmt_count(&self) -> usize {
        fn count(b: &[GenStmt]) -> usize {
            b.iter()
                .map(|s| match s {
                    GenStmt::If(_, t, e) => 1 + count(t) + count(e),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Callee indices actually referenced from the body.
    fn used_callees(&self) -> Vec<usize> {
        fn walk(b: &[GenStmt], used: &mut Vec<usize>) {
            for s in b {
                match s {
                    GenStmt::CallG(_, idx, _) if !used.contains(idx) => used.push(*idx),
                    GenStmt::If(_, t, e) => {
                        walk(t, used);
                        walk(e, used);
                    }
                    _ => {}
                }
            }
        }
        let mut used = Vec::new();
        walk(&self.body, &mut used);
        used.sort_unstable();
        used
    }

    /// Which continuations (by [`CONT_NAMES`] index) the body can reach.
    fn used_conts(&self) -> [bool; 3] {
        let mut used = [false; 3];
        fn walk(case: &TestCase, b: &[GenStmt], used: &mut [bool; 3]) {
            for s in b {
                match s {
                    GenStmt::CallG(_, idx, _) => {
                        let callee = &case.callees[*idx];
                        match callee.kind {
                            CalleeKind::Cut => used[0] = true,
                            CalleeKind::AltRet => used[1] = true,
                            CalleeKind::YieldAbort => used[2] |= callee.site_unwinds(),
                            _ => {}
                        }
                    }
                    GenStmt::Checked(_, _, _, _, unwind) => used[2] |= unwind,
                    GenStmt::Yield(_, unwind) => used[2] |= unwind,
                    GenStmt::If(_, t, e) => {
                        walk(case, t, used);
                        walk(case, e, used);
                    }
                    _ => {}
                }
            }
        }
        walk(self, &self.body, &mut used);
        used
    }

    fn render_stmt(&self, s: &GenStmt, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match s {
            GenStmt::Assign(v, e) => {
                let _ = writeln!(out, "{pad}{} = {};", VARS[*v as usize], e.to_src());
            }
            GenStmt::Store(addr, e) => {
                let _ = writeln!(out, "{pad}bits32[{}] = {};", Self::addr(addr), e.to_src());
            }
            GenStmt::If(c, t, e) => {
                let _ = writeln!(out, "{pad}if {} {{", c.to_src());
                for s in t {
                    self.render_stmt(s, out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}} else {{");
                for s in e {
                    self.render_stmt(s, out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            GenStmt::CallH(v, e) => {
                let _ = writeln!(out, "{pad}{} = h({});", VARS[*v as usize], e.to_src());
            }
            GenStmt::CallG(v, idx, e) => {
                let callee = &self.callees[*idx];
                let mut anns = String::new();
                let args = match callee.kind {
                    CalleeKind::Cut => {
                        anns.push_str(" also cuts to kc");
                        format!("{}, kc", e.to_src())
                    }
                    CalleeKind::AltRet => {
                        anns.push_str(" also returns to kr");
                        e.to_src()
                    }
                    _ => e.to_src(),
                };
                if callee.site_unwinds() && matches!(callee.kind, CalleeKind::YieldAbort) {
                    anns.push_str(" also unwinds to ku");
                }
                if callee.site_aborts() {
                    anns.push_str(" also aborts");
                }
                let _ = writeln!(out, "{pad}{} = g{idx}({args}){anns};", VARS[*v as usize]);
            }
            GenStmt::Checked(v, prim, e1, e2, unwind) => {
                let ann = if *unwind { " also unwinds to ku" } else { "" };
                let _ = writeln!(
                    out,
                    "{pad}{} = {}({}, {}){ann};",
                    VARS[*v as usize],
                    CHECKED_PRIMS[*prim as usize],
                    e1.to_src(),
                    e2.to_src()
                );
            }
            GenStmt::Yield(e, unwind) => {
                let ann = if *unwind { " also unwinds to ku" } else { "" };
                let _ = writeln!(out, "{pad}yield(({}) & 15){ann} also aborts;", e.to_src());
            }
        }
    }

    fn render_callee(&self, idx: usize, out: &mut String) {
        let callee = &self.callees[idx];
        let k = callee.tweak;
        match callee.kind {
            CalleeKind::Plain => {
                let _ = writeln!(out, "g{idx}(bits32 x) {{ return ((x * 3) + {k}); }}");
            }
            CalleeKind::Tail => {
                let _ = writeln!(out, "g{idx}(bits32 x) {{ jump h(x + {k}); }}");
            }
            CalleeKind::AltRet => {
                let _ = writeln!(
                    out,
                    "g{idx}(bits32 x) {{\n    if (x & 1) == {} {{ return <0/1> (x ^ {k}); }} else {{ return <1/1> (x + 3); }}\n}}",
                    k & 1
                );
            }
            CalleeKind::Cut => {
                let _ = writeln!(
                    out,
                    "g{idx}(bits32 x, bits32 kk) {{\n    if x > {} {{ cut to kk(x - {}); }} else {{ return (x + 1); }}\n}}",
                    k & 31,
                    k & 7
                );
            }
            CalleeKind::YieldAbort => {
                let _ = writeln!(
                    out,
                    "g{idx}(bits32 x) {{ yield((x + {}) & 15) also aborts; return (x + 9); }}",
                    k & 15
                );
            }
        }
    }

    /// Renders the case as a complete C-- module.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let zeros = vec!["0"; CELLS as usize].join(", ");
        let _ = writeln!(out, "data cells {{ bits32 {zeros}; }}");
        let _ = writeln!(out, "h(bits32 x) {{ return ((x * 2) + 1); }}");
        for idx in self.used_callees() {
            self.render_callee(idx, &mut out);
        }
        let _ = writeln!(out, "f(bits32 a, bits32 b) {{");
        let _ = writeln!(out, "    bits32 c, d, t, i;");
        let _ = writeln!(out, "    c = 0; d = 0; t = 0;");
        let _ = writeln!(out, "    i = {};", self.loop_n);
        let _ = writeln!(out, "  loop:");
        let _ = writeln!(
            out,
            "    if i == 0 {{ return ((((a + b) + c) + d) + t); }} else {{"
        );
        for s in &self.body {
            self.render_stmt(s, &mut out, 2);
        }
        let _ = writeln!(out, "        i = i - 1;");
        let _ = writeln!(out, "        goto loop;");
        let _ = writeln!(out, "    }}");
        let used = self.used_conts();
        for (ci, name) in CONT_NAMES.iter().enumerate() {
            if !used[ci] {
                continue;
            }
            let h = self.handlers[ci];
            let _ = writeln!(out, "    continuation {name}(t):");
            if h.resume {
                let _ = writeln!(
                    out,
                    "    {0} = {0} + t;\n    i = i - 1;\n    goto loop;",
                    VARS[h.acc as usize]
                );
            } else {
                let _ = writeln!(out, "    return ((t + {}) + 1000);", VARS[h.acc as usize]);
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

// ----- shrinking candidates -----

/// Simpler variants of an expression, largest simplification first.
fn expr_cands(e: &GenExpr) -> Vec<GenExpr> {
    let mut out = Vec::new();
    match e {
        GenExpr::Lit(0) => {}
        GenExpr::Lit(v) => {
            out.push(GenExpr::Lit(0));
            if *v > 1 {
                out.push(GenExpr::Lit(v / 2));
            }
        }
        GenExpr::Var(_) => out.push(GenExpr::Lit(0)),
        GenExpr::Load(a) => {
            out.push(GenExpr::Lit(0));
            out.push((**a).clone());
            for a2 in expr_cands(a) {
                out.push(GenExpr::Load(Box::new(a2)));
            }
        }
        GenExpr::Bin(op, a, b) => {
            out.push(GenExpr::Lit(0));
            out.push((**a).clone());
            out.push((**b).clone());
            for a2 in expr_cands(a) {
                out.push(GenExpr::Bin(*op, Box::new(a2), b.clone()));
            }
            for b2 in expr_cands(b) {
                out.push(GenExpr::Bin(*op, a.clone(), Box::new(b2)));
            }
        }
    }
    out
}

/// Simpler variants of a statement (same statement kind, simpler
/// operands). Kind changes are handled by removal/splicing in
/// [`shrink_candidates`].
fn stmt_cands(s: &GenStmt) -> Vec<GenStmt> {
    match s {
        GenStmt::Assign(v, e) => expr_cands(e)
            .into_iter()
            .map(|e2| GenStmt::Assign(*v, e2))
            .collect(),
        GenStmt::Store(a, e) => {
            let mut out: Vec<GenStmt> = expr_cands(a)
                .into_iter()
                .map(|a2| GenStmt::Store(a2, e.clone()))
                .collect();
            out.extend(
                expr_cands(e)
                    .into_iter()
                    .map(|e2| GenStmt::Store(a.clone(), e2)),
            );
            out
        }
        GenStmt::If(c, t, e) => expr_cands(c)
            .into_iter()
            .map(|c2| GenStmt::If(c2, t.clone(), e.clone()))
            .collect(),
        GenStmt::CallH(v, e) => expr_cands(e)
            .into_iter()
            .map(|e2| GenStmt::CallH(*v, e2))
            .collect(),
        GenStmt::CallG(v, idx, e) => expr_cands(e)
            .into_iter()
            .map(|e2| GenStmt::CallG(*v, *idx, e2))
            .collect(),
        GenStmt::Checked(v, p, e1, e2, u) => {
            let mut out: Vec<GenStmt> = expr_cands(e1)
                .into_iter()
                .map(|a| GenStmt::Checked(*v, *p, a, e2.clone(), *u))
                .collect();
            out.extend(
                expr_cands(e2)
                    .into_iter()
                    .map(|b| GenStmt::Checked(*v, *p, e1.clone(), b, *u)),
            );
            out
        }
        GenStmt::Yield(e, u) => expr_cands(e)
            .into_iter()
            .map(|e2| GenStmt::Yield(e2, *u))
            .collect(),
    }
}

/// Every one-step-simpler block: statement removals first (largest
/// reductions), then `if`-arm splices, then in-place simplifications,
/// then recursion into `if` arms.
fn block_cands(b: &[GenStmt]) -> Vec<Vec<GenStmt>> {
    let mut out = Vec::new();
    let replace = |i: usize, with: Vec<GenStmt>| -> Vec<GenStmt> {
        let mut nb: Vec<GenStmt> = b[..i].to_vec();
        nb.extend(with);
        nb.extend_from_slice(&b[i + 1..]);
        nb
    };
    for i in 0..b.len() {
        out.push(replace(i, vec![]));
    }
    for (i, s) in b.iter().enumerate() {
        if let GenStmt::If(_, t, e) = s {
            out.push(replace(i, t.clone()));
            out.push(replace(i, e.clone()));
        }
    }
    for (i, s) in b.iter().enumerate() {
        for s2 in stmt_cands(s) {
            out.push(replace(i, vec![s2]));
        }
        if let GenStmt::If(c, t, e) = s {
            for t2 in block_cands(t) {
                out.push(replace(i, vec![GenStmt::If(c.clone(), t2, e.clone())]));
            }
            for e2 in block_cands(e) {
                out.push(replace(i, vec![GenStmt::If(c.clone(), t.clone(), e2)]));
            }
        }
    }
    out
}

/// All one-step-simpler variants of a case, in decreasing order of how
/// much they simplify. The delta debugger in `shrink` takes the first
/// variant that still fails and iterates to a fixpoint.
pub fn shrink_candidates(case: &TestCase) -> Vec<TestCase> {
    let mut out = Vec::new();
    for body in block_cands(&case.body) {
        out.push(TestCase {
            body,
            ..case.clone()
        });
    }
    if case.loop_n > 1 {
        out.push(TestCase {
            loop_n: 1,
            ..case.clone()
        });
    }
    if case.args != (0, 0) {
        out.push(TestCase {
            args: (0, 0),
            ..case.clone()
        });
        out.push(TestCase {
            args: (case.args.0, 0),
            ..case.clone()
        });
        out.push(TestCase {
            args: (0, case.args.1),
            ..case.clone()
        });
    }
    for ci in 0..3 {
        if case.handlers[ci].resume {
            let mut handlers = case.handlers;
            handlers[ci].resume = false;
            out.push(TestCase {
                handlers,
                ..case.clone()
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(seed: u64) -> TestCase {
        generate(&mut Rng::new(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(case(11).render(), case(11).render());
        // Different seeds give different programs essentially always.
        assert_ne!(case(1).render(), case(2).render());
    }

    #[test]
    fn generated_programs_parse_and_verify() {
        for seed in 0..200 {
            let src = case(seed).render();
            let m = cmm_parse::parse_module(&src)
                .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{src}"));
            let errors = cmm_ir::verify_module(&m);
            assert!(errors.is_empty(), "seed {seed}: {errors:?}\n{src}");
        }
    }

    #[test]
    fn generated_programs_build_to_cfg() {
        for seed in 0..100 {
            let src = case(seed).render();
            let m = cmm_parse::parse_module(&src).unwrap();
            cmm_cfg::build_program(&m)
                .unwrap_or_else(|e| panic!("seed {seed} does not build: {e}\n{src}"));
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler_or_equal() {
        let c = case(5);
        for cand in shrink_candidates(&c) {
            assert!(cand.stmt_count() <= c.stmt_count());
            assert_ne!(cand, c);
        }
    }

    #[test]
    fn stmt_count_counts_nested_statements() {
        let c = TestCase {
            args: (0, 0),
            loop_n: 1,
            body: vec![GenStmt::If(
                GenExpr::Lit(1),
                vec![GenStmt::Assign(0, GenExpr::Lit(2))],
                vec![],
            )],
            callees: vec![],
            handlers: [Handler {
                resume: false,
                acc: 0,
            }; 3],
        };
        assert_eq!(c.stmt_count(), 2);
    }
}
