//! Delta-debugging minimization of failing cases.
//!
//! Greedy first-improvement descent: [`crate::genprog::shrink_candidates`]
//! proposes one-step-simpler variants in decreasing order of how much
//! they simplify, the first variant that still fails becomes the new
//! current case, and the loop repeats to a fixpoint. The predicate the
//! fuzzer supplies is "still fails with the *same classification*"
//! (diverged, panicked, …): looser than "fails identically", so the
//! minimizer can still slide between bugs of one kind, but tight enough
//! that a panic reproducer never wanders off to an unrelated
//! divergence.

use crate::genprog::{shrink_candidates, TestCase};

/// Shrinks `case` while `still_failing` holds, spending at most `budget`
/// predicate evaluations. Returns the smallest failing case found (the
/// input itself if nothing simpler fails).
pub fn shrink(
    case: &TestCase,
    still_failing: &mut dyn FnMut(&TestCase) -> bool,
    mut budget: usize,
) -> TestCase {
    let mut current = case.clone();
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if still_failing(&cand) {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::{generate, GenStmt};
    use crate::rng::Rng;

    #[test]
    fn shrinks_to_a_single_relevant_statement() {
        // Pretend the bug is "the body contains a Store"; the minimizer
        // should strip everything else.
        let mut found = None;
        for seed in 0..200 {
            let case = generate(&mut Rng::new(seed));
            fn has_store(b: &[GenStmt]) -> bool {
                b.iter().any(|s| match s {
                    GenStmt::Store(..) => true,
                    GenStmt::If(_, t, e) => has_store(t) || has_store(e),
                    _ => false,
                })
            }
            if has_store(&case.body) && case.stmt_count() > 3 {
                found = Some(case);
                break;
            }
        }
        let case = found.expect("some seed generates a store");
        let shrunk = shrink(&case, &mut |c| has_store_case(c), 10_000);
        assert_eq!(shrunk.stmt_count(), 1, "{:?}", shrunk.body);
        assert!(has_store_case(&shrunk));

        fn has_store_case(c: &TestCase) -> bool {
            fn has_store(b: &[GenStmt]) -> bool {
                b.iter().any(|s| match s {
                    GenStmt::Store(..) => true,
                    GenStmt::If(_, t, e) => has_store(t) || has_store(e),
                    _ => false,
                })
            }
            has_store(&c.body)
        }
    }

    #[test]
    fn budget_bounds_predicate_evaluations() {
        let case = generate(&mut Rng::new(9));
        let mut calls = 0usize;
        let _ = shrink(
            &case,
            &mut |_| {
                calls += 1;
                true // always "fails": would descend forever without a budget
            },
            25,
        );
        assert!(calls <= 25, "{calls}");
    }
}
