//! A small, self-contained deterministic PRNG.
//!
//! The fuzzer must be reproducible from a single `u64` seed and must not
//! pull in external crates, so we use SplitMix64 (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014) — a
//! tiny generator with good statistical quality for this purpose.

/// SplitMix64 generator state.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform value in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % u64::from(hi - lo + 1)) as u32
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// A uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// A child generator split off deterministically (used to give each
    /// fuzz case an independent stream derived from seed and index).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_fair() {
        let mut r = Rng::new(3);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference value for seed 0 from the SplitMix64 paper's
        // published implementation.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
    }
}
