//! Fuel-boundary equivalence: within each engine family, both engines
//! must report the *same* status at every fuel level — including the
//! edge where the budget runs out one transition short of completion.
//!
//! For each paper-figure workload we find the minimal completing fuel N
//! empirically, then compare the engines at N−1, N, and N+1. This pins
//! the exact transition at which `OutOfFuel` is reported, which is also
//! the transition the chaos governor's `fuel_slice` clips to.

use cmm_cfg::{build_program, Program};
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, Status, Value};
use cmm_vm::{VmMachine, VmProgram, VmStatus};

/// The Figures 3/4 loop of always-normal calls (plain and branch-table
/// variants) and the §4.2 callee-saves workload (cut and unwind
/// variants) — the four workloads the benchmark trajectory tracks.
fn workloads() -> Vec<(&'static str, String, u64)> {
    let fig34 = |table: bool| {
        let call = if table {
            "r = g(n) also returns to kexn;"
        } else {
            "r = g(n);"
        };
        let ret = if table {
            "return <1/1> (x);"
        } else {
            "return (x);"
        };
        let cont = if table {
            "continuation kexn(r):\n            return (0 - 1);"
        } else {
            ""
        };
        format!(
            r#"
            f(bits32 n) {{
                bits32 acc, r;
                acc = 0;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    {call}
                    acc = acc + r;
                    n = n - 1;
                    goto loop;
                }}
                {cont}
            }}
            g(bits32 x) {{ {ret} }}
            "#
        )
    };
    let sec42 = |cuts: bool| {
        let ann = if cuts {
            "also cuts to k"
        } else {
            "also unwinds to k"
        };
        format!(
            r#"
            f(bits32 n) {{
                bits32 acc, x, y, w, r;
                acc = 0;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    y = n * 3;
                    w = n + 7;
                    r = g(n, k) {ann};
                    acc = acc + r + y + w;
                    n = n - 1;
                    goto loop;
                }}
                continuation k(r):
                return (r + y + w);
            }}
            g(bits32 a, bits32 kk) {{
                return (a);
            }}
            "#
        )
    };
    vec![
        ("fig34_plain", fig34(false), 40),
        ("fig34_table", fig34(true), 40),
        ("sec42_cuts", sec42(true), 25),
        ("sec42_unwinds", sec42(false), 25),
    ]
}

fn prog(src: &str) -> Program {
    build_program(&cmm_parse::parse_module(src).unwrap()).unwrap()
}

/// Smallest fuel at which `probe` reports a completed status.
fn minimal_fuel(mut probe: impl FnMut(u64) -> bool) -> u64 {
    let mut hi = 1u64;
    while !probe(hi) {
        hi *= 2;
        assert!(hi < 1 << 32, "workload never completes");
    }
    let mut lo = 1u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[test]
fn sem_engines_agree_at_every_fuel_boundary() {
    for (name, src, n) in workloads() {
        let p = prog(&src);
        let rp = ResolvedProgram::new(&p);
        let run_ref = |fuel: u64| -> Status {
            let mut m = Machine::new(&p);
            m.start("f", vec![Value::b32(n as u32)]).unwrap();
            m.run(fuel)
        };
        let run_res = |fuel: u64| -> Status {
            let mut m = ResolvedMachine::new(&rp);
            m.start("f", vec![Value::b32(n as u32)]).unwrap();
            m.run(fuel)
        };
        let fuel = minimal_fuel(|f| !matches!(run_ref(f), Status::OutOfFuel));
        assert!(fuel > 1, "{name}: completes implausibly fast");
        for f in [fuel - 1, fuel, fuel + 1] {
            let a = run_ref(f);
            let b = run_res(f);
            assert_eq!(a, b, "{name}: sem engines diverge at fuel {f}");
            let complete = f >= fuel;
            assert_eq!(
                !matches!(a, Status::OutOfFuel),
                complete,
                "{name}: wrong completion at fuel {f}"
            );
        }
    }
}

#[test]
fn vm_engines_agree_at_every_fuel_boundary() {
    for (name, src, n) in workloads() {
        let vp: VmProgram = cmm_vm::compile(&prog(&src)).unwrap();
        let run_step = |fuel: u64| -> VmStatus {
            let mut m = VmMachine::new(&vp);
            m.start("f", &[n], 1);
            m.run(fuel)
        };
        let run_decoded = |fuel: u64| -> VmStatus {
            let mut m = VmMachine::new_decoded(&vp);
            m.start("f", &[n], 1);
            m.run(fuel)
        };
        let run_fused = |fuel: u64| -> VmStatus {
            let mut m = VmMachine::new_fused(&vp);
            m.start("f", &[n], 1);
            m.run(fuel)
        };
        let fuel = minimal_fuel(|f| !matches!(run_step(f), VmStatus::OutOfFuel));
        assert!(fuel > 1, "{name}: completes implausibly fast");
        for f in [fuel - 1, fuel, fuel + 1] {
            let a = run_step(f);
            let b = run_decoded(f);
            assert_eq!(a, b, "{name}: vm engines diverge at fuel {f}");
            let c = run_fused(f);
            assert_eq!(a, c, "{name}: fused engine diverges at fuel {f}");
            let complete = f >= fuel;
            assert_eq!(
                !matches!(a, VmStatus::OutOfFuel),
                complete,
                "{name}: wrong completion at fuel {f}"
            );
        }
    }
}

/// The fused engine's fuel accounting is exact at **every** budget, not
/// just the completion edge: a window head reached with less fuel than
/// the window needs must delegate to the decoded loop rather than run
/// ahead, so status, cost, and pc match the decoded engine at all
/// budgets from 1 to completion.
#[test]
fn fused_engine_matches_decoded_at_every_fuel_level() {
    for (name, src, n) in workloads() {
        let vp: VmProgram = cmm_vm::compile(&prog(&src)).unwrap();
        let total = {
            let mut m = VmMachine::new_decoded(&vp);
            m.start("f", &[n], 1);
            assert!(
                !matches!(m.run(1 << 24), VmStatus::OutOfFuel),
                "{name}: never completes"
            );
            m.cost.instructions
        };
        for fuel in 1..=total {
            let mut dec = VmMachine::new_decoded(&vp);
            dec.start("f", &[n], 1);
            let a = dec.run(fuel);
            let mut fus = VmMachine::new_fused(&vp);
            fus.start("f", &[n], 1);
            let b = fus.run(fuel);
            assert_eq!(a, b, "{name}: status diverges at fuel {fuel}");
            assert_eq!(fus.cost, dec.cost, "{name}: cost diverges at fuel {fuel}");
            assert_eq!(fus.pc, dec.pc, "{name}: pc diverges at fuel {fuel}");
        }
    }
}

/// The governor's fuel slice reproduces the same boundary: a slice of
/// N−1 cannot complete in one `run` call no matter how much fuel the
/// caller grants.
#[test]
fn governor_fuel_slice_respects_the_boundary() {
    let (_, src, n) = workloads().remove(0);
    let p = prog(&src);
    let run_with = |fuel: u64, slice: Option<u64>| -> Status {
        let mut m = Machine::new(&p);
        if let Some(s) = slice {
            m.set_governor(cmm_chaos::ResourceGovernor {
                fuel_slice: Some(s),
                ..cmm_chaos::ResourceGovernor::unlimited()
            });
        }
        m.start("f", vec![Value::b32(n as u32)]).unwrap();
        m.run(fuel)
    };
    let fuel = minimal_fuel(|f| !matches!(run_with(f, None), Status::OutOfFuel));
    assert_eq!(run_with(u64::MAX, Some(fuel - 1)), Status::OutOfFuel);
    assert!(!matches!(run_with(u64::MAX, Some(fuel)), Status::OutOfFuel));
}
