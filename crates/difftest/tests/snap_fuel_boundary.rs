//! Snapshots at the exact fuel boundary: for each paper workload we
//! find the minimal completing fuel N empirically, then drive every
//! engine at budgets N−1, N, and N+1.
//!
//! * At N−1 the machine is interrupted one transition short of
//!   completion — the latest possible snapshot point. The captured
//!   state must survive the full wire cycle (encode → decode →
//!   byte-identity) and a resumed fresh machine must finish in
//!   **exactly one** more transition with the straight run's results.
//! * At N and N+1 the run completes, so there is no boundary to
//!   snapshot — `capture` on a terminated machine must refuse rather
//!   than serialize a meaningless state.
//!
//! This pins the same transition `fuel_boundary.rs` pins for plain
//! runs, now through the snapshot machinery: fuel accounting across
//! capture/restore is exact, not merely close.

use cmm_cfg::{build_program, Program};
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, Status, Value};
use cmm_snap::{source_digest, EngineId, MachineState, SnapMeta, Snapshot};
use cmm_vm::{VmMachine, VmProgram, VmStatus};

/// The Figures 3/4 loop (plain and branch-table variants) and the §4.2
/// callee-saves workload (cut and unwind variants), as in
/// `fuel_boundary.rs`.
fn workloads() -> Vec<(&'static str, String, u64)> {
    let fig34 = |table: bool| {
        let call = if table {
            "r = g(n) also returns to kexn;"
        } else {
            "r = g(n);"
        };
        let ret = if table {
            "return <1/1> (x);"
        } else {
            "return (x);"
        };
        let cont = if table {
            "continuation kexn(r):\n            return (0 - 1);"
        } else {
            ""
        };
        format!(
            r#"
            f(bits32 n) {{
                bits32 acc, r;
                acc = 0;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    {call}
                    acc = acc + r;
                    n = n - 1;
                    goto loop;
                }}
                {cont}
            }}
            g(bits32 x) {{ {ret} }}
            "#
        )
    };
    let sec42 = |cuts: bool| {
        let ann = if cuts {
            "also cuts to k"
        } else {
            "also unwinds to k"
        };
        format!(
            r#"
            f(bits32 n) {{
                bits32 acc, x, y, w, r;
                acc = 0;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    y = n * 3;
                    w = n + 7;
                    r = g(n, k) {ann};
                    acc = acc + r + y + w;
                    n = n - 1;
                    goto loop;
                }}
                continuation k(r):
                return (r + y + w);
            }}
            g(bits32 a, bits32 kk) {{
                return (a);
            }}
            "#
        )
    };
    vec![
        ("fig34_plain", fig34(false), 40),
        ("fig34_table", fig34(true), 40),
        ("sec42_cuts", sec42(true), 25),
        ("sec42_unwinds", sec42(false), 25),
    ]
}

fn prog(src: &str) -> Program {
    build_program(&cmm_parse::parse_module(src).unwrap()).unwrap()
}

/// Smallest fuel at which `probe` reports a completed status.
fn minimal_fuel(mut probe: impl FnMut(u64) -> bool) -> u64 {
    let mut hi = 1u64;
    while !probe(hi) {
        hi *= 2;
        assert!(hi < 1 << 32, "workload never completes");
    }
    let mut lo = 1u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Wrap a captured state in a full envelope and put it through the
/// wire: encode → decode → equality → re-encode byte identity.
fn wire_cycle(src: &str, engine: EngineId, n: u64, state: MachineState) -> Snapshot {
    let snap = Snapshot {
        engine,
        digest: source_digest(src, false),
        meta: SnapMeta {
            entry: "f".into(),
            args: vec![n],
            fuel_remaining: 1,
            yields_done: 0,
            opt: false,
        },
        governor: None,
        chaos: None,
        state,
    };
    let bytes = snap.encode();
    let decoded = Snapshot::decode(&bytes).expect("decode own encoding");
    assert_eq!(decoded, snap, "decoded snapshot differs from captured");
    assert_eq!(decoded.encode(), bytes, "re-encode not byte-identical");
    decoded
}

#[test]
fn sem_engines_snapshot_exactly_at_the_boundary() {
    for (name, src, n) in workloads() {
        let p = prog(&src);
        let rp = ResolvedProgram::new(&p);
        let args = vec![Value::b32(n as u32)];

        let straight = |fuel: u64| -> Status {
            let mut m = Machine::new(&p);
            m.start("f", args.clone()).unwrap();
            m.run(fuel)
        };
        let fuel = minimal_fuel(|f| !matches!(straight(f), Status::OutOfFuel));
        let Status::Terminated(want) = straight(fuel) else {
            panic!("{name}: straight run did not terminate at minimal fuel");
        };

        for engine in [EngineId::Sem, EngineId::SemResolved] {
            // N−1: interrupted one transition short; snapshot + resume
            // completes in exactly one more transition.
            let state = match engine {
                EngineId::Sem => {
                    let mut m = Machine::new(&p);
                    m.start("f", args.clone()).unwrap();
                    assert!(matches!(m.run(fuel - 1), Status::OutOfFuel));
                    m.capture().unwrap()
                }
                _ => {
                    let mut m = ResolvedMachine::new(&rp);
                    m.start("f", args.clone()).unwrap();
                    assert!(matches!(m.run(fuel - 1), Status::OutOfFuel));
                    m.capture().unwrap()
                }
            };
            let decoded = wire_cycle(&src, engine, n, MachineState::Sem(state));
            let MachineState::Sem(st) = &decoded.state else {
                panic!("sem snapshot decoded to a VM state");
            };
            let (status, steps) = match engine {
                EngineId::Sem => {
                    let mut m = Machine::new(&p);
                    m.restore(st).unwrap();
                    (m.run(1), m.steps)
                }
                _ => {
                    let mut m = ResolvedMachine::new(&rp);
                    m.restore(st).unwrap();
                    (m.run(1), m.steps)
                }
            };
            assert_eq!(
                status,
                Status::Terminated(want.clone()),
                "{name}/{engine:?}: one transition of resumed fuel must finish"
            );
            assert_eq!(steps, fuel, "{name}/{engine:?}: total steps drifted");

            // N and N+1: the run completes, so there is no resumable
            // boundary left — capture must refuse.
            for f in [fuel, fuel + 1] {
                let refused = match engine {
                    EngineId::Sem => {
                        let mut m = Machine::new(&p);
                        m.start("f", args.clone()).unwrap();
                        assert!(!matches!(m.run(f), Status::OutOfFuel));
                        m.capture().is_err()
                    }
                    _ => {
                        let mut m = ResolvedMachine::new(&rp);
                        m.start("f", args.clone()).unwrap();
                        assert!(!matches!(m.run(f), Status::OutOfFuel));
                        m.capture().is_err()
                    }
                };
                assert!(
                    refused,
                    "{name}/{engine:?}: capturing a terminated machine at fuel {f} must refuse"
                );
            }
        }
    }
}

#[test]
fn vm_tiers_snapshot_exactly_at_the_boundary() {
    for (name, src, n) in workloads() {
        let vp: VmProgram = cmm_vm::compile(&prog(&src)).unwrap();
        let fresh = |e: EngineId| -> VmMachine<'_> {
            match e {
                EngineId::Vm => VmMachine::new(&vp),
                EngineId::VmDecoded => VmMachine::new_decoded(&vp),
                EngineId::VmFused => VmMachine::new_fused(&vp),
                _ => unreachable!(),
            }
        };

        let straight = |fuel: u64| -> VmStatus {
            let mut m = fresh(EngineId::Vm);
            m.start("f", &[n], 1);
            m.run(fuel)
        };
        let fuel = minimal_fuel(|f| !matches!(straight(f), VmStatus::OutOfFuel));
        let VmStatus::Halted(want) = straight(fuel) else {
            panic!("{name}: straight run did not halt at minimal fuel");
        };
        let want_cost = {
            let mut m = fresh(EngineId::Vm);
            m.start("f", &[n], 1);
            m.run(fuel);
            m.cost
        };

        for engine in [EngineId::Vm, EngineId::VmDecoded, EngineId::VmFused] {
            let mut m = fresh(engine);
            m.start("f", &[n], 1);
            assert!(matches!(m.run(fuel - 1), VmStatus::OutOfFuel));
            assert_eq!(
                m.cost.instructions,
                fuel - 1,
                "{name}/{engine:?}: interrupted instruction count drifted"
            );
            let state = m.capture().unwrap();
            let decoded = wire_cycle(&src, engine, n, MachineState::Vm(state));
            let MachineState::Vm(st) = &decoded.state else {
                panic!("VM snapshot decoded to a sem state");
            };
            // Resume on the same tier with exactly one instruction of
            // fuel: it must halt with the straight run's results and
            // bit-identical total cost.
            let mut r = fresh(engine);
            r.restore(st).unwrap();
            assert_eq!(
                r.run(1),
                VmStatus::Halted(want.clone()),
                "{name}/{engine:?}: one instruction of resumed fuel must finish"
            );
            assert_eq!(r.cost, want_cost, "{name}/{engine:?}: total cost drifted");

            // Completed machines have no boundary left to capture.
            for f in [fuel, fuel + 1] {
                let mut m = fresh(engine);
                m.start("f", &[n], 1);
                assert!(!matches!(m.run(f), VmStatus::OutOfFuel));
                assert!(
                    m.capture().is_err(),
                    "{name}/{engine:?}: capturing a halted machine at fuel {f} must refuse"
                );
            }
        }
    }
}
