//! The checked-in corpus must replay clean, and the chaos regression
//! guard in it must not be vacuous: its seeded schedules have to inject
//! faults into the dispatch exchange, or the file guards nothing.

use cmm_difftest::oracle::{observe_sem_chaos, run_source_chaos, Limits, CHAOS_HORIZON};
use cmm_difftest::replay_corpus;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/difftest; the corpus lives at the
    // repository root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn checked_in_corpus_replays_clean() {
    let report = replay_corpus(&corpus_dir(), &Limits::default()).unwrap();
    assert!(report.files_run >= 4, "corpus went missing?");
    if let Some(f) = report.failures.first() {
        panic!("{} fails replay: {}", f.path.display(), f.failure);
    }
}

#[test]
fn chaos_guard_reproducer_fires_faults() {
    let src = std::fs::read_to_string(corpus_dir().join("chaos-dispatch-faults.cmm")).unwrap();
    let limits = Limits::default();
    // The header says fault-seed 0, schedules 5; the sweep must pass...
    run_source_chaos(&src, (3, 4), &limits, 0, 5).unwrap();
    // ...and at least one of those schedules must actually inject.
    let m = cmm_parse::parse_module(&src).unwrap();
    let prog = cmm_cfg::build_program(&m).unwrap();
    let fired: usize = (0..5)
        .map(|k| {
            let plan = cmm_chaos::FaultPlan::seeded(cmm_chaos::schedule_seed(0, k), CHAOS_HORIZON);
            let (_, _, log) = observe_sem_chaos(&prog, (3, 4), &limits, &plan);
            log.len()
        })
        .sum();
    assert!(
        fired > 0,
        "no schedule injects a fault — the guard is vacuous"
    );
}

#[test]
fn snap_guard_reproducer_crosses_boundaries() {
    // The header says slice 16; the replay above already ran it through
    // the snapshot oracle, but the guard is vacuous unless that slice
    // actually produces snapshots on this workload.
    let src = std::fs::read_to_string(corpus_dir().join("snap-cross-engine-resume.cmm")).unwrap();
    let stats = cmm_difftest::run_source_snap(&src, (3, 4), &Limits::default(), 16, None).unwrap();
    assert!(
        stats.snapshots > 0,
        "slice 16 never crosses a boundary — the snap guard guards nothing"
    );
}
