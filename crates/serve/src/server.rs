//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one flat JSON object on one line; each response is
//! one JSON object on one line, `{"ok":1,...}` on success and
//! `{"ok":0,"error":"..."}` on failure. The protocol is deliberately
//! session-oriented and sequential — requests on a connection are
//! served in order against one shared [`Service`], so a tenant's
//! submit → tick → resume exchange reads like the in-process API.
//!
//! [`handle_line`] is the whole protocol; the TCP listener is a thin
//! loop around it, which is why the protocol tests need no sockets and
//! the socket test only checks framing.
//!
//! # Operations
//!
//! | op          | fields                                             |
//! |-------------|----------------------------------------------------|
//! | `submit`    | `tenant name source entry args results engine fuel max_yields opt chaos` |
//! | `resume`    | `id reply`                                         |
//! | `tick`      | `quanta` (default 1)                               |
//! | `poll`      | `id`                                               |
//! | `engine`    | `id engine` — migrate a parked thread              |
//! | `awaiting`  | —                                                  |
//! | `stats`     | —                                                  |
//! | `metrics`   | `timing` (0/1) — registry JSON, escaped            |
//! | `events`    | — event log, escaped                               |
//! | `shutdown`  | — acknowledge and stop the server                  |

use crate::json::{escape, get, parse_object, JsonValue};
use crate::service::{Service, SubmitReq, ThreadState};
use cmm_snap::EngineId;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// Handles one request line against the service. Returns the response
/// line (no trailing newline) and whether the server should shut down.
pub fn handle_line(svc: &mut Service, line: &str) -> (String, bool) {
    match dispatch(svc, line) {
        Ok(Reply::Body(body)) => (ok_line(&body), false),
        Ok(Reply::Shutdown) => (ok_line(""), true),
        Err(e) => (format!("{{\"ok\":0,\"error\":\"{}\"}}", escape(&e)), false),
    }
}

fn ok_line(body: &str) -> String {
    if body.is_empty() {
        "{\"ok\":1}".to_string()
    } else {
        format!("{{\"ok\":1,{body}}}")
    }
}

enum Reply {
    Body(String),
    Shutdown,
}

fn dispatch(svc: &mut Service, line: &str) -> Result<Reply, String> {
    let fields = parse_object(line)?;
    let op = str_field(&fields, "op")?;
    match op {
        "submit" => {
            let defaults = SubmitReq::default();
            let req = SubmitReq {
                tenant: opt_str(&fields, "tenant")?
                    .unwrap_or(&defaults.tenant)
                    .into(),
                name: opt_str(&fields, "name")?.unwrap_or(&defaults.name).into(),
                source: str_field(&fields, "source")?.into(),
                entry: opt_str(&fields, "entry")?.unwrap_or(&defaults.entry).into(),
                args: match get(&fields, "args") {
                    Some(JsonValue::Arr(a)) => a.clone(),
                    Some(_) => return Err("`args` must be an array of numbers".into()),
                    None => Vec::new(),
                },
                results: opt_num(&fields, "results")?.unwrap_or(defaults.results as u64) as usize,
                engine: match opt_str(&fields, "engine")? {
                    Some(name) => parse_engine(name)?,
                    None => defaults.engine,
                },
                fuel: opt_num(&fields, "fuel")?.unwrap_or(defaults.fuel),
                max_yields: opt_num(&fields, "max_yields")?.unwrap_or(defaults.max_yields),
                opt: opt_num(&fields, "opt")?.unwrap_or(1) != 0,
                chaos: opt_num(&fields, "chaos")?,
            };
            let id = svc.submit(req)?;
            Ok(Reply::Body(format!("\"id\":{id}")))
        }
        "resume" => {
            svc.resume(num_field(&fields, "id")?, num_field(&fields, "reply")?)?;
            Ok(Reply::Body(String::new()))
        }
        "tick" => {
            let quanta = opt_num(&fields, "quanta")?.unwrap_or(1).max(1);
            let (mut dispatched, mut completed, mut yielded, mut advance) = (0, 0, 0, 0u64);
            for _ in 0..quanta {
                let r = svc.tick();
                dispatched += r.dispatched;
                completed += r.completed;
                yielded += r.yielded;
                advance += r.advance;
                if r.dispatched == 0 {
                    break;
                }
            }
            Ok(Reply::Body(format!(
                "\"dispatched\":{dispatched},\"completed\":{completed},\
                 \"yielded\":{yielded},\"advance\":{advance}"
            )))
        }
        "poll" => {
            let id = num_field(&fields, "id")?;
            let v = svc.poll(id).ok_or_else(|| format!("no thread t{id}"))?;
            let (state, extra) = match &v.state {
                ThreadState::Runnable => ("runnable".to_string(), String::new()),
                ThreadState::AwaitingTenant { code } => {
                    ("awaiting".to_string(), format!(",\"code\":{code}"))
                }
                ThreadState::Done { outcome } => (
                    "done".to_string(),
                    format!(",\"outcome\":\"{}\"", escape(outcome)),
                ),
            };
            Ok(Reply::Body(format!(
                "\"id\":{},\"state\":\"{state}\"{extra},\"engine\":\"{}\",\
                 \"yields\":{},\"instructions\":{},\"fuel_remaining\":{},\
                 \"slices\":{},\"migrations\":{}",
                v.id,
                v.engine.name(),
                v.yields.len(),
                v.instructions,
                v.fuel_remaining,
                v.slices,
                v.migrations,
            )))
        }
        "engine" => {
            let id = num_field(&fields, "id")?;
            let engine = parse_engine(str_field(&fields, "engine")?)?;
            svc.set_engine(id, engine)?;
            Ok(Reply::Body(String::new()))
        }
        "awaiting" => {
            let awaiting = svc.awaiting();
            let ids: Vec<String> = awaiting.iter().map(|(id, _)| id.to_string()).collect();
            let codes: Vec<String> = awaiting.iter().map(|(_, c)| c.to_string()).collect();
            Ok(Reply::Body(format!(
                "\"ids\":[{}],\"codes\":[{}]",
                ids.join(","),
                codes.join(",")
            )))
        }
        "stats" => {
            let s = svc.stats();
            let (queue_wait, turnaround) = svc.latency_quantiles();
            Ok(Reply::Body(format!(
                "\"submitted\":{},\"completed\":{},\"yields\":{},\"resumes\":{},\
                 \"slices\":{},\"migrations\":{},\"parked\":{},\"parked_high_water\":{},\
                 \"quanta\":{},\"vclock\":{},\"instructions\":{},\
                 \"queue_wait_p50\":{},\"queue_wait_p99\":{},\
                 \"turnaround_p50\":{},\"turnaround_p99\":{}",
                s.submitted,
                s.completed,
                s.yields,
                s.resumes,
                s.slices,
                s.migrations,
                s.parked,
                s.parked_high_water,
                s.quanta,
                s.vclock,
                s.instructions,
                queue_wait.0,
                queue_wait.2,
                turnaround.0,
                turnaround.2,
            )))
        }
        "metrics" => {
            let timing = opt_num(&fields, "timing")?.unwrap_or(0) != 0;
            let reg = svc
                .registry()
                .ok_or("service was started without metrics")?;
            Ok(Reply::Body(format!(
                "\"metrics\":\"{}\"",
                escape(&reg.to_json(timing))
            )))
        }
        "events" => Ok(Reply::Body(format!(
            "\"events\":\"{}\"",
            escape(&svc.events_text())
        ))),
        "shutdown" => Ok(Reply::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

fn parse_engine(name: &str) -> Result<EngineId, String> {
    EngineId::parse(name)
}

fn str_field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Result<&'a str, String> {
    opt_str(fields, key)?.ok_or_else(|| format!("missing field `{key}`"))
}

fn opt_str<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Result<Option<&'a str>, String> {
    match get(fields, key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

fn num_field(fields: &[(String, JsonValue)], key: &str) -> Result<u64, String> {
    opt_num(fields, key)?.ok_or_else(|| format!("missing field `{key}`"))
}

fn opt_num(fields: &[(String, JsonValue)], key: &str) -> Result<Option<u64>, String> {
    match get(fields, key) {
        None => Ok(None),
        Some(v) => v
            .as_num()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

/// Serves the protocol on `listener` until a client sends `shutdown`.
/// Connections are handled sequentially — the service is a shared
/// single-threaded state machine by design (parallelism lives inside
/// [`Service::tick`], not across clients).
///
/// # Errors
///
/// Propagates accept/read/write I/O errors; per-request protocol
/// errors go to the client as `{"ok":0,...}` lines instead.
pub fn serve_on(listener: TcpListener, mut svc: Service) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = handle_line(&mut svc, &line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            if shutdown {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    const SRC: &str = "f(bits32 n) { yield(n | 1) also aborts; return (n + 1); }";

    fn roundtrip(svc: &mut Service, line: &str) -> String {
        let (response, _) = handle_line(svc, line);
        response
    }

    /// A whole session over the protocol: submit, drive to the yield,
    /// resume, drive to completion, poll the outcome.
    #[test]
    fn a_session_runs_end_to_end_over_the_protocol() {
        let mut svc = Service::new(ServeConfig {
            metrics: true,
            ..ServeConfig::default()
        });
        let r = roundtrip(
            &mut svc,
            &format!(
                "{{\"op\":\"submit\",\"tenant\":\"a\",\"source\":\"{}\",\"args\":[4]}}",
                escape(SRC)
            ),
        );
        assert_eq!(r, "{\"ok\":1,\"id\":0}", "{r}");
        let r = roundtrip(&mut svc, "{\"op\":\"tick\",\"quanta\":10}");
        assert!(r.contains("\"yielded\":1"), "{r}");
        let r = roundtrip(&mut svc, "{\"op\":\"awaiting\"}");
        assert_eq!(r, "{\"ok\":1,\"ids\":[0],\"codes\":[5]}");
        let r = roundtrip(&mut svc, "{\"op\":\"poll\",\"id\":0}");
        assert!(
            r.contains("\"state\":\"awaiting\"") && r.contains("\"code\":5"),
            "{r}"
        );
        let r = roundtrip(&mut svc, "{\"op\":\"resume\",\"id\":0,\"reply\":9}");
        assert_eq!(r, "{\"ok\":1}");
        let r = roundtrip(&mut svc, "{\"op\":\"tick\",\"quanta\":10}");
        assert!(r.contains("\"completed\":1"), "{r}");
        let r = roundtrip(&mut svc, "{\"op\":\"poll\",\"id\":0}");
        assert!(
            r.contains("\"state\":\"done\"") && r.contains("halt"),
            "{r}"
        );
        let r = roundtrip(&mut svc, "{\"op\":\"stats\"}");
        assert!(
            r.contains("\"completed\":1") && r.contains("\"yields\":1"),
            "{r}"
        );
        let r = roundtrip(&mut svc, "{\"op\":\"metrics\"}");
        assert!(r.contains("cmm_serve_requests_total"), "{r}");
        let r = roundtrip(&mut svc, "{\"op\":\"events\"}");
        assert!(r.contains("submit t0") && r.contains("yield t0"), "{r}");
    }

    /// Malformed requests and bad ops come back as error lines, never
    /// a panic or a dropped connection.
    #[test]
    fn protocol_errors_are_reported_in_band() {
        let mut svc = Service::new(ServeConfig::default());
        for bad in [
            "not json at all",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"submit\"}",
            "{\"op\":\"resume\",\"id\":99,\"reply\":0}",
            "{\"op\":\"poll\",\"id\":99}",
            "{\"op\":\"submit\",\"source\":\"f() { return; }\",\"engine\":\"jit\"}",
            "{\"op\":\"metrics\"}",
        ] {
            let r = roundtrip(&mut svc, bad);
            assert!(r.starts_with("{\"ok\":0,\"error\":\""), "{bad} -> {r}");
        }
    }

    /// The real socket path: framing, sequencing, and shutdown over
    /// 127.0.0.1.
    #[test]
    fn the_tcp_loop_frames_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener.local_addr().unwrap();
        let svc = Service::new(ServeConfig::default());
        let server = std::thread::spawn(move || serve_on(listener, svc));

        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut say = |line: &str| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response.trim_end().to_string()
        };
        let r = say(&format!(
            "{{\"op\":\"submit\",\"source\":\"{}\",\"args\":[2]}}",
            escape(SRC)
        ));
        assert_eq!(r, "{\"ok\":1,\"id\":0}");
        let r = say("{\"op\":\"tick\",\"quanta\":10}");
        assert!(r.contains("\"yielded\":1"), "{r}");
        assert_eq!(say("{\"op\":\"shutdown\"}"), "{\"ok\":1}");
        server.join().unwrap().expect("server exits cleanly");
    }
}
