//! A minimal flat-JSON reader for the service's line protocol.
//!
//! Requests on the wire are single-line JSON objects whose values are
//! strings, unsigned integers, or arrays of unsigned integers — the
//! full shape the protocol needs and nothing more. The workspace has
//! no JSON dependency (every emitter hand-rolls its output), so the
//! service hand-rolls its *reader* too, and keeps it total: any
//! malformed line becomes an `Err` with a position, never a panic.

/// A decoded protocol value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JsonValue {
    /// A string (escapes decoded).
    Str(String),
    /// An unsigned integer. The protocol has no fractional or negative
    /// quantities: thread ids, fuel, words, and codes are all `u64`.
    Num(u64),
    /// An array of unsigned integers (procedure arguments).
    Arr(Vec<u64>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one flat JSON object into `(key, value)` pairs, preserving
/// the order keys appear on the wire. Duplicate keys are allowed;
/// [`get`] returns the last, matching the common JSON convention.
///
/// # Errors
///
/// Fails with a byte position and description on any malformed input,
/// including trailing garbage after the closing brace.
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected `,` or `}`")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after object"));
    }
    Ok(out)
}

/// The last value bound to `key`, if any.
pub fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Escapes `s` for embedding in a JSON string literal — the emit-side
/// twin of the parser, shared by every response the server writes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.next() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                Ok(JsonValue::Arr(items))
            }
            Some(b'0'..=b'9') => Ok(JsonValue::Num(self.number()?)),
            _ => Err(self.err("expected a string, number, or array")),
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a digit"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(b) => {
                    // Re-assemble the UTF-8 sequence this byte starts.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let f = parse_object(
            r#"{"op": "submit", "tenant": "a", "args": [1, 2, 3], "fuel": 500, "empty": []}"#,
        )
        .unwrap();
        assert_eq!(get(&f, "op").unwrap().as_str(), Some("submit"));
        assert_eq!(get(&f, "tenant").unwrap().as_str(), Some("a"));
        assert_eq!(get(&f, "args"), Some(&JsonValue::Arr(vec![1, 2, 3])));
        assert_eq!(get(&f, "fuel").unwrap().as_num(), Some(500));
        assert_eq!(get(&f, "empty"), Some(&JsonValue::Arr(vec![])));
        assert_eq!(get(&f, "missing"), None);
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a \"quoted\" line\nwith\ttabs \\ and unicode: π";
        let wire = format!("{{\"s\": \"{}\"}}", escape(original));
        let f = parse_object(&wire).unwrap();
        assert_eq!(get(&f, "s").unwrap().as_str(), Some(original));
        // Standard \uXXXX escapes decode too.
        let f = parse_object(r#"{"s": "Aé"}"#).unwrap();
        assert_eq!(get(&f, "s").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn malformed_lines_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "{]",
            r#"{"a"}"#,
            r#"{"a": }"#,
            r#"{"a": -1}"#,
            r#"{"a": 1.5}"#,
            r#"{"a": [1,]}"#,
            r#"{"a": ["x"]}"#,
            r#"{"a": 1} trailing"#,
            r#"{"a": "unterminated}"#,
            r#"{"a": "\q"}"#,
            "{\"a\": 99999999999999999999999}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted: {bad}");
        }
    }
}
