//! The execution service: thousands of suspended C-- threads
//! multiplexed over a bounded worker pool.
//!
//! # Model
//!
//! Tenants [`submit`](Service::submit) programs; each submission is a
//! *service thread* — not an OS thread but a C-- computation that the
//! scheduler advances in fuel-bounded slices (the **quantum**). A
//! thread that yields is parked: its machine state is captured as a
//! `cmm-snap` blob and the yield code is reported to the tenant, who
//! later [`resume`](Service::resume)s it with a reply word. A thread
//! whose quantum expires is parked the same way and goes straight back
//! on the run queue. Between slices a thread *is* its blob — which
//! makes work migration free: the next slice may run on any pool
//! worker and any engine tier of the blob's family (sem ↔
//! sem-resolved, vm ↔ vm-decoded ↔ vm-fused).
//!
//! # Determinism
//!
//! One [`tick`](Service::tick) dispatches a window of runnable threads
//! in queue order, executes their slices on the worker pool (results
//! come back in submission order regardless of worker count), and
//! folds the results back into the scheduler sequentially. Time is the
//! engines' virtual cost-model clock: the tick advances the service
//! clock by the deterministic list-schedule makespan of the slice
//! costs over the configured lanes. Everything observable — the event
//! log, outcomes, queue-wait and turnaround histograms, every
//! `Deterministic`-class metric — is therefore byte-identical at any
//! worker count; wall-clock time appears only in `Timing`-class
//! metrics.

use cmm_chaos::{FaultPlan, FaultPlanState, ResourceGovernor};
use cmm_obs::{
    Counter, Gauge, Histogram, Metric, MetricClass, MetricsRegistry, NopSink, TraceSink,
};
use cmm_opt::OptOptions;
use cmm_pool::{
    run_jobs, virtual_makespan, EngineFamily, PipelineCache, PoolConfig, SourceKey, SourceLang,
};
use cmm_rt::Thread;
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, SemEngine, SnapStatus, Status, Value};
use cmm_snap::{
    fold_digest, source_digest, EngineId, Family, MachineState, SnapMeta, Snapshot, FOLD_INIT,
};
use cmm_vm::{VmSnapStatus, VmStatus, VmThread};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Fault-schedule horizon for chaos-seeded threads — the same horizon
/// the batch runner and the difftest oracles use, so a serve thread
/// with `chaos = Some(s)` sees exactly the fault plan a batch job with
/// `chaos=s` would.
pub const CHAOS_HORIZON: u64 = 4;

/// The fixed dispatcher's continuation-parameter fill value — the
/// reply word the deterministic load generator (and any tenant that
/// wants to replay an oracle run) sends for yield code `code`.
pub fn dispatcher_fill(code: u64) -> u32 {
    (code.wrapping_mul(13).wrapping_add(7) & 0xfff) as u32
}

/// Which engine tier a parked thread's next slice runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationPolicy {
    /// Every slice runs on the tier the thread was submitted with
    /// (explicit [`Service::set_engine`] calls still migrate it).
    Pinned,
    /// Each slice advances one tier through the blob's family — the
    /// adversarial schedule: every slice boundary is a migration.
    Rotate,
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing slices. `0`/`1` run inline. Workers
    /// change wall-clock time and **nothing else**: the virtual
    /// schedule is computed over [`lanes`](ServeConfig::lanes).
    pub workers: usize,
    /// Pool injector-queue bound.
    pub queue_cap: usize,
    /// Fuel granted per scheduling slice.
    pub quantum: u64,
    /// Virtual execution lanes the deterministic clock schedules over.
    /// This — not `workers` — is what the makespan advance uses, so
    /// the event log and every latency figure are byte-identical at
    /// any `-j`.
    pub lanes: usize,
    /// Max threads dispatched per tick; `0` means `4 × lanes`.
    pub window: usize,
    /// Per-tenant cap on live (not yet finished) threads; submissions
    /// over the cap are rejected.
    pub max_live_per_tenant: usize,
    /// Tier selection for parked threads.
    pub migration: MigrationPolicy,
    /// Mount the `cmm_serve_*` metrics in a registry.
    pub metrics: bool,
    /// Per-thread activation-stack depth cap (governor).
    pub max_depth: Option<usize>,
    /// Per-thread mapped-memory cap in bytes (governor).
    pub max_memory_bytes: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_cap: 256,
            quantum: 2_000,
            lanes: 8,
            window: 0,
            max_live_per_tenant: 4_096,
            migration: MigrationPolicy::Pinned,
            metrics: false,
            max_depth: None,
            max_memory_bytes: None,
        }
    }
}

/// A tenant's submission.
#[derive(Clone, Debug)]
pub struct SubmitReq {
    /// Tenant identity (resource caps are per tenant).
    pub tenant: String,
    /// Display name for events and diagnostics.
    pub name: String,
    /// Raw C-- source. Compilation is shared through the service's
    /// [`PipelineCache`], keyed by content digest — tenants submitting
    /// the same program share one compilation.
    pub source: String,
    /// Entry procedure.
    pub entry: String,
    /// Entry arguments (machine words).
    pub args: Vec<u64>,
    /// Result count the entry returns.
    pub results: usize,
    /// Engine tier to start on.
    pub engine: EngineId,
    /// Total fuel budget across all slices.
    pub fuel: u64,
    /// Max yields serviced before the thread is cut off.
    pub max_yields: u64,
    /// Build with optimization.
    pub opt: bool,
    /// Chaos fault-schedule seed.
    pub chaos: Option<u64>,
}

impl Default for SubmitReq {
    fn default() -> SubmitReq {
        SubmitReq {
            tenant: "default".into(),
            name: "job".into(),
            source: String::new(),
            entry: "f".into(),
            args: Vec::new(),
            results: 1,
            engine: EngineId::Vm,
            fuel: 2_000_000,
            max_yields: 64,
            opt: true,
            chaos: None,
        }
    }
}

/// Where a service thread stands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// On the run queue (fresh, or parked with fuel to spend).
    Runnable,
    /// Parked at a yield; the tenant owes a [`Service::resume`].
    AwaitingTenant {
        /// The yield code reported to the tenant.
        code: u64,
    },
    /// Finished; the outcome string is final.
    Done {
        /// `halt [..]`, `wrong`, `fuel`, `rts-error`, `compile-error`,
        /// `snap-error`, or `panicked`.
        outcome: String,
    },
}

/// A point-in-time view of one thread, for `poll`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadView {
    /// Thread id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Submission name.
    pub name: String,
    /// Engine tier the next (or last) slice runs on.
    pub engine: EngineId,
    /// Scheduler state.
    pub state: ThreadState,
    /// Yield codes reported so far.
    pub yields: Vec<u64>,
    /// Virtual work done so far (cost-model instructions).
    pub instructions: u64,
    /// Fuel left of the total budget.
    pub fuel_remaining: u64,
    /// Scheduling slices run.
    pub slices: u64,
    /// Tier migrations this thread has crossed.
    pub migrations: u64,
}

/// Deterministic aggregate figures, maintained whether or not metrics
/// are mounted.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ServeStats {
    /// Threads accepted.
    pub submitted: u64,
    /// Threads finished (any outcome).
    pub completed: u64,
    /// Yield responses delivered to tenants.
    pub yields: u64,
    /// Tenant resumes applied.
    pub resumes: u64,
    /// Slices executed.
    pub slices: u64,
    /// Slices whose engine tier differed from the tier that captured
    /// the blob they resumed.
    pub migrations: u64,
    /// Threads currently parked as snapshot blobs.
    pub parked: u64,
    /// High-water mark of `parked`.
    pub parked_high_water: u64,
    /// Scheduling quanta run.
    pub quanta: u64,
    /// The virtual clock (ns; 1 instruction = 1 ns).
    pub vclock: u64,
    /// Total virtual work executed.
    pub instructions: u64,
}

/// What one [`Service::tick`] did.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TickReport {
    /// Threads dispatched this quantum.
    pub dispatched: usize,
    /// Threads that finished this quantum.
    pub completed: usize,
    /// Threads that yielded to their tenant this quantum.
    pub yielded: usize,
    /// Virtual nanoseconds the quantum took (list-schedule makespan).
    pub advance: u64,
}

struct ThreadRec {
    id: u64,
    tenant: String,
    name: String,
    source: String,
    entry: String,
    args: Vec<u64>,
    results: usize,
    /// Tier the next slice runs on.
    engine: EngineId,
    /// Tier that captured the current blob (migration detection).
    blob_engine: EngineId,
    opt: bool,
    chaos: Option<u64>,
    fuel: u64,
    max_yields: u64,
    state: ThreadState,
    blob: Option<Vec<u8>>,
    /// Reply word staged by `resume`, applied at the next slice.
    reply: Option<u64>,
    /// Virtual instant the thread became runnable (queue-wait basis).
    ready_vns: u64,
    /// Virtual instant the thread was submitted (turnaround basis).
    submit_vns: u64,
    yields: Vec<u64>,
    instructions: u64,
    slices: u64,
    migrations: u64,
    /// Chaos fault-plan state at completion (fault-log inspection).
    final_chaos: Option<FaultPlanState>,
}

/// `cmm_serve_*` registry handles. Label sets are registered up front
/// so the exported key set never depends on which outcomes a
/// particular run happened to produce.
struct Meters {
    requests: BTreeMap<&'static str, Counter>,
    threads: BTreeMap<&'static str, Counter>,
    slices: BTreeMap<&'static str, Counter>,
    yields: Counter,
    migrations: Counter,
    parked: Gauge,
    parked_high_water: Gauge,
    tick_wall_ns: Histogram,
}

const REQUEST_OPS: [&str; 5] = ["submit", "resume", "tick", "poll", "set-engine"];
const OUTCOMES: [&str; 7] = [
    "halt",
    "wrong",
    "fuel",
    "rts-error",
    "compile-error",
    "snap-error",
    "panicked",
];

impl Meters {
    fn mount(reg: &MetricsRegistry, queue_wait: &Histogram, turnaround: &Histogram) -> Meters {
        let requests = REQUEST_OPS
            .iter()
            .map(|&op| {
                let c = reg.counter(
                    "cmm_serve_requests_total",
                    &[("op", op)],
                    "Service requests by operation",
                    MetricClass::Deterministic,
                );
                (op, c)
            })
            .collect();
        let threads = OUTCOMES
            .iter()
            .map(|&o| {
                let c = reg.counter(
                    "cmm_serve_threads_total",
                    &[("outcome", o)],
                    "Finished service threads by outcome class",
                    MetricClass::Deterministic,
                );
                (o, c)
            })
            .collect();
        let slices = EngineId::ALL
            .iter()
            .map(|&e| {
                let c = reg.counter(
                    "cmm_serve_slices_total",
                    &[("engine", e.name())],
                    "Scheduling slices executed, by engine tier",
                    MetricClass::Deterministic,
                );
                (e.name(), c)
            })
            .collect();
        reg.mount(
            "cmm_serve_queue_wait_vns",
            &[],
            "Virtual ns runnable threads waited for a slice",
            MetricClass::Deterministic,
            Metric::Histogram(queue_wait.clone()),
        );
        reg.mount(
            "cmm_serve_turnaround_vns",
            &[],
            "Virtual ns from submission to completion",
            MetricClass::Deterministic,
            Metric::Histogram(turnaround.clone()),
        );
        Meters {
            requests,
            threads,
            slices,
            yields: reg.counter(
                "cmm_serve_yields_total",
                &[],
                "Yield responses delivered to tenants",
                MetricClass::Deterministic,
            ),
            migrations: reg.counter(
                "cmm_serve_migrations_total",
                &[],
                "Slices resumed on a different tier than captured their blob",
                MetricClass::Deterministic,
            ),
            parked: reg.gauge(
                "cmm_serve_parked_threads",
                &[],
                "Threads currently parked as snapshot blobs",
                MetricClass::Deterministic,
            ),
            parked_high_water: reg.gauge(
                "cmm_serve_parked_threads_high_water",
                &[],
                "High-water mark of parked threads",
                MetricClass::Deterministic,
            ),
            tick_wall_ns: reg.histogram(
                "cmm_serve_tick_wall_ns",
                &[],
                "Wall-clock ns per scheduling quantum",
                MetricClass::Timing,
            ),
        }
    }

    fn request(&self, op: &str) {
        if let Some(c) = self.requests.get(op) {
            c.inc();
        }
    }
}

/// The persistent execution service. See the module docs.
pub struct Service {
    config: ServeConfig,
    cache: PipelineCache,
    threads: BTreeMap<u64, ThreadRec>,
    run_queue: VecDeque<u64>,
    next_id: u64,
    stats: ServeStats,
    events: Vec<String>,
    /// Virtual ns runnable threads waited before their slice ran.
    queue_wait: Histogram,
    /// Virtual ns from submission to completion.
    turnaround: Histogram,
    registry: Option<MetricsRegistry>,
    meters: Option<Meters>,
}

impl Service {
    /// Creates a service. With `config.metrics` a [`MetricsRegistry`]
    /// is mounted (including the compilation cache's counters) and
    /// reachable through [`registry`](Service::registry).
    pub fn new(config: ServeConfig) -> Service {
        let cache = PipelineCache::default();
        let queue_wait = Histogram::new();
        let turnaround = Histogram::new();
        let (registry, meters) = if config.metrics {
            let reg = MetricsRegistry::new();
            cache.mount_metrics(&reg);
            let meters = Meters::mount(&reg, &queue_wait, &turnaround);
            (Some(reg), Some(meters))
        } else {
            (None, None)
        };
        Service {
            config,
            cache,
            threads: BTreeMap::new(),
            run_queue: VecDeque::new(),
            next_id: 0,
            stats: ServeStats::default(),
            events: Vec::new(),
            queue_wait,
            turnaround,
            registry,
            meters,
        }
    }

    /// The mounted metrics registry, when the service was created with
    /// `metrics: true`.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_ref()
    }

    /// Deterministic aggregate figures.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Queue-wait and turnaround quantiles, each as `(p50, p90, p99)`
    /// in virtual ns.
    pub fn latency_quantiles(&self) -> ((u64, u64, u64), (u64, u64, u64)) {
        (
            self.queue_wait.snapshot().p50_p90_p99(),
            self.turnaround.snapshot().p50_p90_p99(),
        )
    }

    /// The event log so far: one line per scheduling decision and
    /// tenant-visible response, in virtual-time order. Byte-identical
    /// at every worker count.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// The event log as one newline-terminated string.
    pub fn events_text(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(e);
            s.push('\n');
        }
        s
    }

    /// FNV-1a fold over the event log — a compact deterministic
    /// fingerprint of the whole schedule.
    pub fn event_digest(&self) -> u64 {
        let mut h = FOLD_INIT;
        for e in &self.events {
            h = fold_digest(h, e.as_bytes());
            h = fold_digest(h, b"\n");
        }
        h
    }

    /// Live (not finished) threads owned by `tenant`.
    fn live_of(&self, tenant: &str) -> usize {
        self.threads
            .values()
            .filter(|r| r.tenant == tenant && !matches!(r.state, ThreadState::Done { .. }))
            .count()
    }

    /// Accepts a submission and queues its first slice.
    ///
    /// # Errors
    ///
    /// Rejects empty sources, zero fuel, and submissions over the
    /// tenant's live-thread cap. Compile errors are *not* detected
    /// here: compilation happens (once, cached) on the worker pool and
    /// surfaces as a `compile-error` outcome.
    pub fn submit(&mut self, req: SubmitReq) -> Result<u64, String> {
        if let Some(m) = &self.meters {
            m.request("submit");
        }
        if req.source.is_empty() {
            return Err("empty source".into());
        }
        if req.fuel == 0 {
            return Err("fuel must be >= 1".into());
        }
        if self.live_of(&req.tenant) >= self.config.max_live_per_tenant {
            return Err(format!(
                "tenant `{}` is at its live-thread cap ({})",
                req.tenant, self.config.max_live_per_tenant
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.events.push(format!(
            "submit t{id} tenant={} name={} engine={}",
            req.tenant,
            req.name,
            req.engine.name()
        ));
        let rec = ThreadRec {
            id,
            tenant: req.tenant,
            name: req.name,
            source: req.source,
            entry: req.entry,
            args: req.args,
            results: req.results,
            engine: req.engine,
            blob_engine: req.engine,
            opt: req.opt,
            chaos: req.chaos,
            fuel: req.fuel,
            max_yields: req.max_yields,
            state: ThreadState::Runnable,
            blob: None,
            reply: None,
            ready_vns: self.stats.vclock,
            submit_vns: self.stats.vclock,
            yields: Vec::new(),
            instructions: 0,
            slices: 0,
            migrations: 0,
            final_chaos: None,
        };
        self.threads.insert(id, rec);
        self.run_queue.push_back(id);
        self.stats.submitted += 1;
        Ok(id)
    }

    /// Answers a parked thread's yield with `reply` and requeues it.
    ///
    /// # Errors
    ///
    /// The thread must exist and be awaiting its tenant.
    pub fn resume(&mut self, id: u64, reply: u64) -> Result<(), String> {
        if let Some(m) = &self.meters {
            m.request("resume");
        }
        let vclock = self.stats.vclock;
        let rec = self
            .threads
            .get_mut(&id)
            .ok_or_else(|| format!("no thread t{id}"))?;
        match rec.state {
            ThreadState::AwaitingTenant { .. } => {}
            ThreadState::Runnable => return Err(format!("t{id} is not awaiting its tenant")),
            ThreadState::Done { .. } => return Err(format!("t{id} already finished")),
        }
        rec.state = ThreadState::Runnable;
        rec.reply = Some(reply);
        rec.ready_vns = vclock;
        self.run_queue.push_back(id);
        self.stats.resumes += 1;
        self.events.push(format!("resume t{id} reply={reply}"));
        Ok(())
    }

    /// Migrates a parked thread to another tier of its family; its
    /// next slice resumes the blob there.
    ///
    /// # Errors
    ///
    /// The thread must exist, must not be finished, and `engine` must
    /// be in the same family as the thread's current blob (the
    /// structured family-mismatch diagnostic names both engines, both
    /// families, and the blob digest).
    pub fn set_engine(&mut self, id: u64, engine: EngineId) -> Result<(), String> {
        if let Some(m) = &self.meters {
            m.request("set-engine");
        }
        let rec = self
            .threads
            .get_mut(&id)
            .ok_or_else(|| format!("no thread t{id}"))?;
        if matches!(rec.state, ThreadState::Done { .. }) {
            return Err(format!("t{id} already finished"));
        }
        if let Some(blob) = &rec.blob {
            let snapshot = Snapshot::decode(blob).map_err(|e| e.to_string())?;
            snapshot.check_engine(engine)?;
        } else if engine.family() != rec.engine.family() {
            // No blob yet: check against the submitted tier so a fresh
            // thread cannot be moved across families either.
            return Err(format!(
                "cannot move t{id} from {} (family {}) to `{}` (family {}): \
                 engine families differ",
                rec.engine.name(),
                rec.engine.family().name(),
                engine.name(),
                engine.family().name(),
            ));
        }
        rec.engine = engine;
        Ok(())
    }

    /// A point-in-time view of thread `id`.
    pub fn poll(&self, id: u64) -> Option<ThreadView> {
        if let Some(m) = &self.meters {
            m.request("poll");
        }
        let rec = self.threads.get(&id)?;
        Some(ThreadView {
            id: rec.id,
            tenant: rec.tenant.clone(),
            name: rec.name.clone(),
            engine: rec.engine,
            state: rec.state.clone(),
            yields: rec.yields.clone(),
            instructions: rec.instructions,
            fuel_remaining: rec.fuel,
            slices: rec.slices,
            migrations: rec.migrations,
        })
    }

    /// Threads currently awaiting their tenant, as `(id, yield code)`
    /// in id order.
    pub fn awaiting(&self) -> Vec<(u64, u64)> {
        self.threads
            .values()
            .filter_map(|r| match r.state {
                ThreadState::AwaitingTenant { code } => Some((r.id, code)),
                _ => None,
            })
            .collect()
    }

    /// The current parked blob of thread `id`, if it is parked.
    pub fn parked_blob(&self, id: u64) -> Option<&[u8]> {
        self.threads.get(&id)?.blob.as_deref()
    }

    /// The chaos fault-plan state a finished thread ended with.
    pub fn final_chaos(&self, id: u64) -> Option<&FaultPlanState> {
        self.threads.get(&id)?.final_chaos.as_ref()
    }

    /// True when nothing is runnable *and* no tenant reply is pending
    /// — every thread is finished.
    pub fn idle(&self) -> bool {
        self.run_queue.is_empty()
            && self
                .threads
                .values()
                .all(|r| matches!(r.state, ThreadState::Done { .. }))
    }

    /// Runs one scheduling quantum: dispatch up to a window of
    /// runnable threads, execute their slices on the worker pool, park
    /// or finish each, advance the virtual clock by the slice
    /// makespan.
    pub fn tick(&mut self) -> TickReport {
        if let Some(m) = &self.meters {
            m.request("tick");
        }
        let t0 = Instant::now();
        let window = if self.config.window == 0 {
            self.config.lanes.max(1) * 4
        } else {
            self.config.window
        };
        let mut jobs: Vec<SliceJob> = Vec::new();
        while jobs.len() < window {
            let Some(id) = self.run_queue.pop_front() else {
                break;
            };
            let policy = self.config.migration;
            let rec = self.threads.get_mut(&id).expect("queued thread exists");
            let target = match policy {
                MigrationPolicy::Pinned => rec.engine,
                MigrationPolicy::Rotate => next_tier(rec.engine),
            };
            if rec.blob.is_some() && target != rec.blob_engine {
                rec.migrations += 1;
                self.stats.migrations += 1;
                if let Some(m) = &self.meters {
                    m.migrations.inc();
                }
                self.events.push(format!(
                    "migrate t{id} {}->{}",
                    rec.blob_engine.name(),
                    target.name()
                ));
            }
            rec.engine = target;
            rec.slices += 1;
            self.stats.slices += 1;
            if let Some(m) = &self.meters {
                if let Some(c) = m.slices.get(target.name()) {
                    c.inc();
                }
            }
            self.queue_wait
                .observe(self.stats.vclock.saturating_sub(rec.ready_vns));
            jobs.push(SliceJob {
                id,
                engine: target,
                source: rec.source.clone(),
                entry: rec.entry.clone(),
                args: rec.args.clone(),
                results: rec.results,
                opt: rec.opt,
                slice_fuel: self.config.quantum.min(rec.fuel).max(1),
                thread_fuel: rec.fuel,
                reply: rec.reply.take(),
                blob: rec.blob.take(),
                chaos: rec.chaos,
                yields_done: rec.yields.len() as u64,
                max_depth: self.config.max_depth,
                max_memory_bytes: self.config.max_memory_bytes,
            });
        }
        let dispatched = jobs.len();
        let mut report = TickReport {
            dispatched,
            ..TickReport::default()
        };
        if dispatched == 0 {
            return report;
        }
        let cache = &self.cache;
        let outcomes = run_jobs(
            &PoolConfig {
                workers: self.config.workers,
                queue_cap: self.config.queue_cap,
            },
            jobs,
            |_, job| {
                let r = run_slice(cache, &job);
                (job, r)
            },
        );
        let mut costs = Vec::with_capacity(dispatched);
        let ends: Vec<(u64, SliceResult)> = outcomes
            .into_iter()
            .map(|o| match o {
                cmm_pool::JobOutcome::Done((job, r)) => {
                    costs.push(r.used);
                    (job.id, r)
                }
                cmm_pool::JobOutcome::Panicked(msg) => {
                    costs.push(1);
                    (
                        u64::MAX,
                        SliceResult {
                            end: SliceEnd::Done {
                                outcome: "panicked".into(),
                                detail: msg,
                            },
                            used: 1,
                            chaos: None,
                        },
                    )
                } // A panicked closure loses its job; the id is
                  // recovered below from the dispatch order.
            })
            .collect();
        report.advance = virtual_makespan(&costs, self.config.lanes.max(1));
        let end_vns = self.stats.vclock + report.advance;
        for (id, r) in ends {
            if id == u64::MAX {
                // The slice panicked and took its job descriptor with
                // it; without an id there is nothing to park. The
                // executor isolates the panic; the count survives in
                // the `panicked` outcome counter.
                self.count_outcome("panicked");
                continue;
            }
            let rec = self.threads.get_mut(&id).expect("dispatched thread exists");
            rec.instructions += r.used;
            rec.fuel = rec.fuel.saturating_sub(r.used);
            self.stats.instructions += r.used;
            match r.end {
                SliceEnd::Yielded { code, blob } => {
                    if rec.yields.len() as u64 >= rec.max_yields {
                        rec.state = ThreadState::Done {
                            outcome: "fuel".into(),
                        };
                        rec.final_chaos = r.chaos;
                        rec.blob = None;
                        self.events.push(format!(
                            "done t{id} outcome=fuel detail=suspension-bound vclock={end_vns}"
                        ));
                        self.finish(id, "fuel", end_vns);
                        report.completed += 1;
                        continue;
                    }
                    rec.yields.push(code);
                    rec.blob = Some(blob);
                    rec.blob_engine = rec.engine;
                    rec.state = ThreadState::AwaitingTenant { code };
                    self.stats.yields += 1;
                    if let Some(m) = &self.meters {
                        m.yields.inc();
                    }
                    self.events.push(format!("yield t{id} code={code}"));
                    report.yielded += 1;
                }
                SliceEnd::Parked { blob } => {
                    if rec.fuel == 0 {
                        rec.state = ThreadState::Done {
                            outcome: "fuel".into(),
                        };
                        rec.final_chaos = r.chaos;
                        rec.blob = None;
                        self.events
                            .push(format!("done t{id} outcome=fuel vclock={end_vns}"));
                        self.finish(id, "fuel", end_vns);
                        report.completed += 1;
                    } else {
                        rec.blob = Some(blob);
                        rec.blob_engine = rec.engine;
                        rec.state = ThreadState::Runnable;
                        rec.ready_vns = end_vns;
                        self.run_queue.push_back(id);
                    }
                }
                SliceEnd::Done { outcome, detail } => {
                    let class = outcome_class(&outcome);
                    rec.final_chaos = r.chaos;
                    rec.blob = None;
                    rec.state = ThreadState::Done {
                        outcome: outcome.clone(),
                    };
                    let detail = if detail.is_empty() {
                        String::new()
                    } else {
                        format!(" detail={}", detail.replace([' ', '\n'], "-"))
                    };
                    self.events.push(format!(
                        "done t{id} outcome={outcome}{detail} vclock={end_vns}"
                    ));
                    self.finish(id, class, end_vns);
                    report.completed += 1;
                }
            }
        }
        self.stats.vclock = end_vns;
        self.stats.quanta += 1;
        let parked = self.threads.values().filter(|r| r.blob.is_some()).count() as u64;
        self.stats.parked = parked;
        self.stats.parked_high_water = self.stats.parked_high_water.max(parked);
        if let Some(m) = &self.meters {
            m.parked.set(parked);
            m.parked_high_water.set_max(parked);
            m.tick_wall_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        self.events.push(format!(
            "tick {} dispatched={dispatched} advance={} vclock={}",
            self.stats.quanta, report.advance, self.stats.vclock
        ));
        report
    }

    /// Completion bookkeeping shared by every terminal transition.
    fn finish(&mut self, id: u64, class: &str, end_vns: u64) {
        let rec = self.threads.get(&id).expect("finished thread exists");
        self.turnaround
            .observe(end_vns.saturating_sub(rec.submit_vns));
        self.stats.completed += 1;
        self.count_outcome(class);
    }

    fn count_outcome(&mut self, class: &str) {
        if let Some(m) = &self.meters {
            if let Some(c) = m.threads.get(class) {
                c.inc();
            }
        }
    }
}

/// Outcome class for the `cmm_serve_threads_total` labels.
fn outcome_class(outcome: &str) -> &'static str {
    if outcome.starts_with("halt") {
        return "halt";
    }
    for o in OUTCOMES {
        if o == outcome {
            return o;
        }
    }
    "rts-error"
}

/// The next tier in the engine's family, in tag order (wrapping) — the
/// `Rotate` policy's schedule.
fn next_tier(engine: EngineId) -> EngineId {
    match engine {
        EngineId::Sem => EngineId::SemResolved,
        EngineId::SemResolved => EngineId::Sem,
        EngineId::Vm => EngineId::VmDecoded,
        EngineId::VmDecoded => EngineId::VmFused,
        EngineId::VmFused => EngineId::Vm,
    }
}

/// Everything one slice needs, detached from the scheduler so slices
/// can run on pool workers.
struct SliceJob {
    id: u64,
    engine: EngineId,
    source: String,
    entry: String,
    args: Vec<u64>,
    results: usize,
    opt: bool,
    slice_fuel: u64,
    thread_fuel: u64,
    reply: Option<u64>,
    blob: Option<Vec<u8>>,
    chaos: Option<u64>,
    yields_done: u64,
    max_depth: Option<usize>,
    max_memory_bytes: Option<usize>,
}

enum SliceEnd {
    /// The thread hit a `yield`: parked at the suspension, code for
    /// the tenant.
    Yielded { code: u64, blob: Vec<u8> },
    /// The quantum expired mid-run: parked, straight back on the
    /// queue.
    Parked { blob: Vec<u8> },
    /// The thread is finished (any outcome, success or failure).
    Done { outcome: String, detail: String },
}

struct SliceResult {
    end: SliceEnd,
    /// Virtual instructions this slice consumed.
    used: u64,
    /// Fault-plan state at a terminal end (`Done`), for fault-log
    /// inspection; parked threads carry theirs inside the blob.
    chaos: Option<FaultPlanState>,
}

impl SliceJob {
    fn governor(&self) -> ResourceGovernor {
        ResourceGovernor {
            fuel_slice: Some(self.slice_fuel),
            max_depth: self.max_depth,
            max_memory_bytes: self.max_memory_bytes,
            ..ResourceGovernor::unlimited()
        }
    }

    fn key(&self, family: EngineFamily) -> SourceKey {
        SourceKey {
            source: self.source.clone(),
            lang: SourceLang::Cmm,
            opts: self.opts(),
            family,
        }
    }

    fn opts(&self) -> OptOptions {
        if self.opt {
            OptOptions::default()
        } else {
            OptOptions::none()
        }
    }

    fn snapshot(&self, used: u64, chaos: Option<FaultPlanState>, state: MachineState) -> Vec<u8> {
        Snapshot {
            engine: self.engine,
            digest: source_digest(&self.source, self.opt),
            meta: SnapMeta {
                entry: self.entry.clone(),
                args: self.args.clone(),
                fuel_remaining: self.thread_fuel.saturating_sub(used),
                yields_done: self.yields_done,
                opt: self.opt,
            },
            governor: Some(self.governor()),
            chaos,
            state,
        }
        .encode()
    }
}

fn done(outcome: &str, detail: impl Into<String>, used: u64) -> SliceResult {
    SliceResult {
        end: SliceEnd::Done {
            outcome: outcome.into(),
            detail: detail.into(),
        },
        used,
        chaos: None,
    }
}

/// Runs one slice: build the engine `job.engine` names (compilations
/// shared through `cache`), restore the blob or start fresh, service a
/// pending tenant reply with the dispatcher, run up to the slice fuel,
/// and park or finish. Pure function of its inputs — the determinism
/// contract rests on this.
fn run_slice(cache: &PipelineCache, job: &SliceJob) -> SliceResult {
    match job.engine.family() {
        Family::Sem => {
            let prog = match cache.program(&job.key(EngineFamily::Sem)) {
                Ok(p) => p,
                Err(e) => return done("compile-error", e, 1),
            };
            match job.engine {
                EngineId::SemResolved => {
                    let rp = ResolvedProgram::new(&prog);
                    let mut m = ResolvedMachine::new(&rp);
                    m.set_governor(job.governor());
                    run_slice_sem(&mut Thread::over(m), job)
                }
                _ => {
                    let mut m = Machine::new(&prog);
                    m.set_governor(job.governor());
                    run_slice_sem(&mut Thread::over(m), job)
                }
            }
        }
        Family::Vm => {
            let key = job.key(EngineFamily::Vm);
            match job.engine {
                EngineId::VmDecoded => match cache.decoded(&key) {
                    Ok((vp, dec)) => {
                        let mut t = VmThread::with_sink_shared_decoded(&vp, dec, NopSink);
                        t.machine.set_governor(job.governor());
                        run_slice_vm(&mut t, job)
                    }
                    Err(e) => done("compile-error", e, 1),
                },
                EngineId::VmFused => match cache.fused(&key) {
                    Ok((vp, fu)) => {
                        let mut t = VmThread::with_sink_shared_fused(&vp, fu, NopSink);
                        t.machine.set_governor(job.governor());
                        run_slice_vm(&mut t, job)
                    }
                    Err(e) => done("compile-error", e, 1),
                },
                _ => match cache.vm_code(&key) {
                    Ok(vp) => {
                        let mut t = VmThread::new(&vp);
                        t.machine.set_governor(job.governor());
                        run_slice_vm(&mut t, job)
                    }
                    Err(e) => done("compile-error", e, 1),
                },
            }
        }
    }
}

fn run_slice_sem<'p, M: SemEngine<'p>>(t: &mut Thread<'p, M>, job: &SliceJob) -> SliceResult {
    // Restore the blob or start fresh.
    let mut at_yield = false;
    match &job.blob {
        Some(blob) => {
            let snapshot = match Snapshot::decode(blob) {
                Ok(s) => s,
                Err(e) => return done("snap-error", e.to_string(), 1),
            };
            if let Err(e) = snapshot.check_engine(job.engine) {
                return done("snap-error", e, 1);
            }
            let MachineState::Sem(st) = &snapshot.state else {
                return done("snap-error", "sem slice got a VM blob", 1);
            };
            at_yield = st.status == SnapStatus::Suspended;
            if let Err(e) = t.machine_mut().restore(st) {
                return done("snap-error", e, 1);
            }
            if let Some(ch) = &snapshot.chaos {
                t.set_chaos(FaultPlan::from_state(ch));
            }
        }
        None => {
            if let Some(seed) = job.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            let args = job.args.iter().map(|&a| Value::b32(a as u32)).collect();
            if let Err(w) = t.start(&job.entry, args) {
                return done("wrong", w.to_string(), 1);
            }
        }
    }
    let before = t.machine().steps();
    let used = |t: &Thread<'p, M>| t.machine().steps().saturating_sub(before).max(1);
    // A blob parked at a yield resumes through the dispatcher with the
    // tenant's staged reply.
    if at_yield {
        let Some(reply) = job.reply else {
            return done("rts-error", "parked at a yield without a pending reply", 1);
        };
        let code = t.yield_code().unwrap_or(0);
        let Some(mut a) = t.first_activation() else {
            return done("rts-error", "no first activation", used(t));
        };
        let _ = t.next_activation(&mut a);
        if let Err(w) = t.set_activation(&a) {
            return done("rts-error", w.to_string(), used(t));
        }
        if code % 2 == 1 {
            let _ = t.set_unwind_cont(0);
        }
        let v = Value::b32(reply as u32);
        let mut n = 0;
        while let Some(p) = t.find_cont_param(n) {
            *p = v.clone();
            n += 1;
        }
        if let Err(w) = t.resume() {
            return done("rts-error", w.to_string(), used(t));
        }
    }
    match t.run(job.slice_fuel) {
        Status::Terminated(vals) => {
            let bits: Vec<u64> = vals.iter().map(|v| v.bits().unwrap_or(u64::MAX)).collect();
            SliceResult {
                end: SliceEnd::Done {
                    outcome: format!("halt {bits:?}"),
                    detail: String::new(),
                },
                used: used(t),
                chaos: t.chaos().map(|p| p.state()),
            }
        }
        Status::Wrong(w) => SliceResult {
            end: SliceEnd::Done {
                outcome: "wrong".into(),
                detail: w.to_string(),
            },
            used: used(t),
            chaos: t.chaos().map(|p| p.state()),
        },
        Status::OutOfFuel => {
            let u = used(t);
            let st = match t.machine().capture() {
                Ok(st) => st,
                Err(e) => return done("snap-error", e, u),
            };
            let blob = job.snapshot(u, t.chaos().map(|p| p.state()), MachineState::Sem(st));
            SliceResult {
                end: SliceEnd::Parked { blob },
                used: u,
                chaos: None,
            }
        }
        Status::Suspended => {
            let u = used(t);
            let code = t.yield_code().unwrap_or(0);
            let st = match t.machine().capture() {
                Ok(st) => st,
                Err(e) => return done("snap-error", e, u),
            };
            let blob = job.snapshot(u, t.chaos().map(|p| p.state()), MachineState::Sem(st));
            SliceResult {
                end: SliceEnd::Yielded { code, blob },
                used: u,
                chaos: None,
            }
        }
        other => SliceResult {
            end: SliceEnd::Done {
                outcome: "rts-error".into(),
                detail: format!("unexpected status {other:?}"),
            },
            used: used(t),
            chaos: t.chaos().map(|p| p.state()),
        },
    }
}

fn run_slice_vm<S: TraceSink>(t: &mut VmThread<'_, S>, job: &SliceJob) -> SliceResult {
    let mut at_yield = false;
    match &job.blob {
        Some(blob) => {
            let snapshot = match Snapshot::decode(blob) {
                Ok(s) => s,
                Err(e) => return done("snap-error", e.to_string(), 1),
            };
            if let Err(e) = snapshot.check_engine(job.engine) {
                return done("snap-error", e, 1);
            }
            let MachineState::Vm(st) = &snapshot.state else {
                return done("snap-error", "vm slice got a sem blob", 1);
            };
            at_yield = st.status == VmSnapStatus::Suspended;
            if let Err(e) = t.machine.restore(st) {
                return done("snap-error", e, 1);
            }
            if let Some(ch) = &snapshot.chaos {
                t.set_chaos(FaultPlan::from_state(ch));
            }
        }
        None => {
            if let Some(seed) = job.chaos {
                t.set_chaos(FaultPlan::seeded(seed, CHAOS_HORIZON));
            }
            t.start(&job.entry, &job.args, job.results);
        }
    }
    let before = t.machine.cost.instructions;
    macro_rules! used {
        () => {
            t.machine.cost.instructions.saturating_sub(before).max(1)
        };
    }
    if at_yield {
        let Some(reply) = job.reply else {
            return done("rts-error", "parked at a yield without a pending reply", 1);
        };
        let code = t.machine.yield_args(1)[0];
        let Some(mut a) = t.first_activation() else {
            return done("rts-error", "no first activation", used!());
        };
        let _ = t.next_activation(&mut a);
        if let Err(e) = t.set_activation(&a) {
            return done("rts-error", e, used!());
        }
        if code % 2 == 1 {
            let _ = t.set_unwind_cont(0);
        }
        let v = u64::from(reply as u32);
        let mut n = 0;
        while let Some(p) = t.find_cont_param(n) {
            *p = v;
            n += 1;
        }
        if let Err(e) = t.resume() {
            return done("rts-error", e, used!());
        }
    }
    match t.run(job.slice_fuel) {
        VmStatus::Halted(vals) => SliceResult {
            end: SliceEnd::Done {
                outcome: format!("halt {vals:?}"),
                detail: String::new(),
            },
            used: used!(),
            chaos: t.chaos().map(|p| p.state()),
        },
        VmStatus::Error(e) => SliceResult {
            end: SliceEnd::Done {
                outcome: "wrong".into(),
                detail: e,
            },
            used: used!(),
            chaos: t.chaos().map(|p| p.state()),
        },
        VmStatus::OutOfFuel => {
            let u = used!();
            let st = match t.machine.capture() {
                Ok(st) => st,
                Err(e) => return done("snap-error", e, u),
            };
            let blob = job.snapshot(u, t.chaos().map(|p| p.state()), MachineState::Vm(st));
            SliceResult {
                end: SliceEnd::Parked { blob },
                used: u,
                chaos: None,
            }
        }
        VmStatus::Suspended => {
            let u = used!();
            let code = t.machine.yield_args(1)[0];
            let st = match t.machine.capture() {
                Ok(st) => st,
                Err(e) => return done("snap-error", e, u),
            };
            let blob = job.snapshot(u, t.chaos().map(|p| p.state()), MachineState::Vm(st));
            SliceResult {
                end: SliceEnd::Yielded { code, blob },
                used: u,
                chaos: None,
            }
        }
        other => SliceResult {
            end: SliceEnd::Done {
                outcome: "rts-error".into(),
                detail: format!("unexpected status {other:?}"),
            },
            used: used!(),
            chaos: t.chaos().map(|p| p.state()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = "f(bits32 n, bits32 a) {\n\
         bits32 s;\n\
         s = a;\n\
       loop:\n\
         if n == 0 { return (s); } else { s = s + n; n = n - 1; goto loop; }\n\
       }";

    fn submit_loop(svc: &mut Service, tenant: &str, engine: EngineId) -> u64 {
        svc.submit(SubmitReq {
            tenant: tenant.into(),
            name: "loop".into(),
            source: LOOP.into(),
            args: vec![50, 0],
            engine,
            ..SubmitReq::default()
        })
        .expect("submit accepted")
    }

    #[test]
    fn a_fresh_thread_runs_to_halt_across_quanta() {
        for engine in EngineId::ALL {
            let mut svc = Service::new(ServeConfig {
                quantum: 40,
                ..ServeConfig::default()
            });
            let id = submit_loop(&mut svc, "a", engine);
            let mut guard = 0;
            while !svc.idle() {
                svc.tick();
                guard += 1;
                assert!(guard < 200, "{} never finished", engine.name());
            }
            let v = svc.poll(id).unwrap();
            // Quantum boundaries parked and resumed the thread at
            // least once on the way (the default args run longer than
            // 40 fuel), and the sum is right.
            assert!(v.slices > 1, "{}: {:?}", engine.name(), v);
            assert_eq!(
                v.state,
                ThreadState::Done {
                    outcome: "halt [1275]".into()
                },
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn tenant_live_thread_cap_rejects_excess_submissions() {
        let mut svc = Service::new(ServeConfig {
            max_live_per_tenant: 2,
            ..ServeConfig::default()
        });
        submit_loop(&mut svc, "a", EngineId::Vm);
        submit_loop(&mut svc, "a", EngineId::Vm);
        let err = svc
            .submit(SubmitReq {
                tenant: "a".into(),
                source: LOOP.into(),
                ..SubmitReq::default()
            })
            .unwrap_err();
        assert!(err.contains("live-thread cap"), "{err}");
        // Another tenant is unaffected; a finished thread frees a slot.
        submit_loop(&mut svc, "b", EngineId::Vm);
        while !svc.idle() {
            svc.tick();
        }
        submit_loop(&mut svc, "a", EngineId::Vm);
    }

    #[test]
    fn resume_is_only_legal_while_awaiting() {
        let mut svc = Service::new(ServeConfig::default());
        let id = submit_loop(&mut svc, "a", EngineId::Vm);
        assert!(svc.resume(id, 0).is_err(), "runnable thread resumed");
        assert!(svc.resume(id + 1, 0).is_err(), "missing thread resumed");
        while !svc.idle() {
            svc.tick();
        }
        assert!(svc.resume(id, 0).is_err(), "finished thread resumed");
    }
}
