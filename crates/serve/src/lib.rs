//! # cmm-serve — a persistent multi-tenant execution service with
//! # snapshot-based work migration
//!
//! The paper's `Yield` transition is a natural suspension point; this
//! crate builds the service on top of it. Tenants submit C-- programs,
//! receive yield values, and resume suspended threads; the scheduler
//! advances thousands of concurrent service threads in fuel-bounded
//! slices over the `cmm-pool` worker set, parking every suspended
//! thread as a portable `cmm-snap` blob. That representation choice is
//! the whole design: between slices a thread is nothing but its blob,
//! so it can resume on **any** worker and **any** engine tier of its
//! family — work migration costs nothing beyond the snapshot the
//! scheduler was going to take anyway.
//!
//! * [`service`] — the in-process [`Service`](service::Service) API:
//!   the scheduler, the per-tenant resource governors, the virtual
//!   clock, and the deterministic event log.
//! * [`server`] — the wire protocol: newline-delimited JSON over TCP,
//!   a thin loop over [`handle_line`](server::handle_line).
//! * [`json`] — the hand-rolled flat-JSON reader the protocol parses
//!   requests with (the workspace has no JSON dependency).
//! * [`loadgen`] — the deterministic load generator: a seed-derived
//!   population of yield-heavy, exception-heavy, and compute-heavy
//!   tenants, driven on the virtual clock (`cmm serve --selftest`).
//!
//! Determinism is inherited from the layers below and preserved here:
//! slices execute via `run_jobs` (results in submission order), the
//! clock advances by the deterministic list-schedule makespan of each
//! quantum's slice costs, and every tenant-visible response is logged
//! in dispatch order — so the event log, the outcomes, and every
//! `Deterministic`-class metric are byte-identical at `-j1` and `-jN`.

pub mod json;
pub mod loadgen;
pub mod server;
pub mod service;

pub use loadgen::{acceptance_profile, load_config, run_load, LoadProfile, LoadReport};
pub use server::{handle_line, serve_on};
pub use service::{
    dispatcher_fill, MigrationPolicy, ServeConfig, ServeStats, Service, SubmitReq, ThreadState,
    ThreadView, TickReport,
};
