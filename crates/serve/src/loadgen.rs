//! A deterministic load generator for the service.
//!
//! The generator plays the tenants: it submits a fixed, seed-derived
//! mix of yield-heavy, exception-heavy, and compute-heavy programs
//! across all five engine tiers, then drives the scheduler with the
//! fixed dispatcher policy (reply word = [`dispatcher_fill`] of the
//! yield code). Everything it measures on the virtual clock — the
//! event digest, response counts, queue-wait and turnaround quantiles
//! — is a pure function of the profile, so the selftest can assert
//! byte-identical runs at `-j1` and `-j8` while still reporting
//! wall-clock rates on the side.
//!
//! The resume discipline is deliberately adversarial for the parked
//! population: tenants answer yields only once the run queue is dry,
//! so at the drain point every yield-heavy thread is parked as a
//! snapshot blob simultaneously — the "thousands of concurrent
//! suspended threads" shape the service exists for.

use crate::service::{dispatcher_fill, MigrationPolicy, ServeConfig, Service, SubmitReq};
use cmm_chaos::schedule_seed;
use cmm_snap::EngineId;
use std::time::Instant;

/// Yield-heavy: `b` dispatch exchanges through an `also unwinds to`
/// chain, the same shape as the snapshot-equivalence workload. The
/// yield code is always odd, so the fixed dispatcher unwinds `mid` to
/// `ku` every time.
const YIELD_SRC: &str = r#"
    f(bits32 a, bits32 b) {
        bits32 r, i;
        r = a + b;
        i = b;
      loop:
        if i == 0 { return (r); } else {
            r = mid(r + i) also unwinds to k;
            i = i - 1;
            goto loop;
        }
        continuation k(r):
        return (r + 1);
    }
    mid(bits32 x) {
        bits32 r;
        r = g(x) also unwinds to ku;
        return (r);
        continuation ku(r):
        return (r + 100);
    }
    g(bits32 x) { yield(x | 1) also aborts; return (x); }
"#;

/// Mixed: a 200-iteration compute spin between dispatch exchanges, so
/// the thread alternates quantum-expiry parks with yield parks — both
/// suspension kinds cross snapshot (and migration) boundaries.
const MIX_SRC: &str = r#"
    f(bits32 a, bits32 b) {
        bits32 r, i, j;
        r = a;
        i = b;
      outer:
        if i == 0 { return (r); } else { j = 200; goto spin; }
      spin:
        if j == 0 { goto hop; } else { r = (r + j) & 65535; j = j - 1; goto spin; }
      hop:
        r = mid(r + i) also unwinds to k;
        i = i - 1;
        goto outer;
        continuation k(r):
        return (r + 1);
    }
    mid(bits32 x) {
        bits32 r;
        r = g(x) also unwinds to ku;
        return (r);
        continuation ku(r):
        return (r + 100);
    }
    g(bits32 x) { yield(x | 1) also aborts; return (x); }
"#;

/// Compute-heavy: thousands of iterations, never yields — it only ever
/// parks on quantum expiry, exercising the preemption path and keeping
/// the run queue from draining instantly.
const LOOP_SRC: &str = r#"
    f(bits32 n, bits32 a) {
        bits32 s;
        s = a;
      loop:
        if n == 0 { return (s); } else { s = (s + n) & 65535; n = n - 1; goto loop; }
    }
"#;

/// The generated population: who submits how much.
#[derive(Clone, Copy, Debug)]
pub struct LoadProfile {
    /// Distinct tenants (round-robin over the population).
    pub tenants: usize,
    /// Threads each tenant submits.
    pub threads_per_tenant: usize,
    /// Scheduling-quanta safety cap; `0` means unbounded.
    pub quanta: u64,
    /// Seed for the chaos sub-schedules.
    pub seed: u64,
}

/// The acceptance-criteria profile: 17 tenants × 64 threads = 1088
/// concurrent service threads (margin over the required 1000, since
/// chaos-afflicted threads may die before the parked population
/// peaks).
pub fn acceptance_profile() -> LoadProfile {
    LoadProfile {
        tenants: 17,
        threads_per_tenant: 64,
        quanta: 0,
        seed: 0xC0FFEE,
    }
}

/// A small profile for unit tests: big enough to exercise every
/// source/engine pairing, small enough to run in a debug build.
pub fn small_profile() -> LoadProfile {
    LoadProfile {
        tenants: 4,
        threads_per_tenant: 10,
        quanta: 0,
        seed: 7,
    }
}

/// The serve configuration the selftest and the trajectory use:
/// rotate-on-every-slice migration (the adversarial schedule) over
/// `workers` workers.
pub fn load_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        quantum: 2_000,
        migration: MigrationPolicy::Rotate,
        metrics: true,
        ..ServeConfig::default()
    }
}

/// What a load run measured. Everything except the `wall_*` fields is
/// deterministic.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Threads submitted.
    pub threads: u64,
    /// Threads that finished.
    pub completed: u64,
    /// Yield responses delivered.
    pub yields: u64,
    /// Cross-tier migrations.
    pub migrations: u64,
    /// Most threads ever parked as blobs at once.
    pub parked_high_water: u64,
    /// Scheduling quanta run.
    pub quanta: u64,
    /// Virtual duration of the whole run (ns).
    pub virtual_ns: u64,
    /// Tenant-visible responses (yields + completions) per virtual
    /// second.
    pub virtual_rps: u64,
    /// Queue-wait quantiles, virtual ns.
    pub queue_wait_p50: u64,
    /// 99th percentile queue wait.
    pub queue_wait_p99: u64,
    /// Turnaround quantiles, virtual ns.
    pub turnaround_p50: u64,
    /// 99th percentile turnaround.
    pub turnaround_p99: u64,
    /// FNV-1a fold of the event log.
    pub event_digest: u64,
    /// Wall-clock duration (ns; informational, never gated).
    pub wall_ns: u64,
    /// Responses per wall second (informational, never gated).
    pub wall_rps: u64,
}

/// Submits the profile's population into `svc`, in thread order.
pub fn submit_load(svc: &mut Service, profile: &LoadProfile) -> u64 {
    let mut submitted = 0;
    for tenant in 0..profile.tenants {
        for slot in 0..profile.threads_per_tenant {
            let idx = tenant * profile.threads_per_tenant + slot;
            let engine = EngineId::ALL[idx % EngineId::ALL.len()];
            let chaos = if idx % 16 == 9 {
                Some(schedule_seed(profile.seed, idx as u64))
            } else {
                None
            };
            let (name, source, args) = match idx % 8 {
                0..=4 => (
                    "yield",
                    YIELD_SRC,
                    vec![(idx % 7) as u64, (8 + idx % 5) as u64],
                ),
                5 | 6 => ("mix", MIX_SRC, vec![(idx % 11) as u64, 6]),
                _ => (
                    "loop",
                    LOOP_SRC,
                    vec![(3_000 + (idx % 7) * 500) as u64, (idx % 13) as u64],
                ),
            };
            svc.submit(SubmitReq {
                tenant: format!("tenant-{tenant}"),
                name: name.into(),
                source: source.into(),
                entry: "f".into(),
                args,
                results: 1,
                engine,
                fuel: 500_000,
                max_yields: 64,
                opt: true,
                chaos,
            })
            .expect("load submission accepted");
            submitted += 1;
        }
    }
    submitted
}

/// Builds a service, submits the population, and drives it to
/// completion (or to the quanta cap): tick until the run queue is dry,
/// answer every pending yield with the dispatcher-fill reply, repeat.
pub fn run_load(config: ServeConfig, profile: &LoadProfile) -> (Service, LoadReport) {
    let t0 = Instant::now();
    let mut svc = Service::new(config);
    let threads = submit_load(&mut svc, profile);
    loop {
        if profile.quanta != 0 && svc.stats().quanta >= profile.quanta {
            break;
        }
        let report = svc.tick();
        if report.dispatched == 0 {
            let awaiting = svc.awaiting();
            if awaiting.is_empty() {
                break;
            }
            for (id, code) in awaiting {
                svc.resume(id, u64::from(dispatcher_fill(code)))
                    .expect("awaiting thread resumes");
            }
        }
    }
    let stats = svc.stats();
    let responses = stats.yields + stats.completed;
    let (queue_wait, turnaround) = svc.latency_quantiles();
    let wall_ns = t0.elapsed().as_nanos().max(1) as u64;
    let report = LoadReport {
        threads,
        completed: stats.completed,
        yields: stats.yields,
        migrations: stats.migrations,
        parked_high_water: stats.parked_high_water,
        quanta: stats.quanta,
        virtual_ns: stats.vclock.max(1),
        virtual_rps: responses.saturating_mul(1_000_000_000) / stats.vclock.max(1),
        queue_wait_p50: queue_wait.0,
        queue_wait_p99: queue_wait.2,
        turnaround_p50: turnaround.0,
        turnaround_p99: turnaround.2,
        event_digest: svc.event_digest(),
        wall_ns,
        wall_rps: responses.saturating_mul(1_000_000_000) / wall_ns,
    };
    (svc, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The small profile drives to completion and its deterministic
    /// figures are identical at 1 and 4 workers.
    #[test]
    fn small_load_is_deterministic_across_worker_counts() {
        let profile = small_profile();
        let (svc1, r1) = run_load(load_config(1), &profile);
        let (svc4, r4) = run_load(load_config(4), &profile);
        assert_eq!(svc1.events(), svc4.events(), "event logs diverged");
        assert_eq!(r1.event_digest, r4.event_digest);
        assert_eq!(r1.completed, r1.threads, "every thread finishes");
        assert_eq!(
            (r1.yields, r1.migrations, r1.virtual_ns, r1.quanta),
            (r4.yields, r4.migrations, r4.virtual_ns, r4.quanta),
        );
        assert!(r1.yields > 0, "yield-heavy threads actually yielded");
        assert!(r1.migrations > 0, "rotate policy actually migrated");
    }
}
