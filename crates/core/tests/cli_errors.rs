//! Error-path coverage for the `cmm` binary's argument parsing, plus a
//! determinism smoke over `cmm batch`.
//!
//! Every test drives the real executable (`CARGO_BIN_EXE_cmm`), so the
//! assertions hold for exactly what a user types: bad input must come
//! back as a one-line `cmm: ...` diagnostic and a nonzero exit, never a
//! panic backtrace.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cmm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cmm"))
        .args(args)
        .output()
        .expect("spawn cmm")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch directory removed on drop, named per test to keep
/// concurrent test binaries out of each other's way.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cmm-cli-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn file(&self, name: &str, contents: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::write(&p, contents).expect("write scratch file");
        p
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_fails_mentioning(out: &Output, needle: &str) {
    assert!(!out.status.success(), "expected failure, got success");
    let err = stderr(out);
    assert!(
        err.contains(needle),
        "stderr should mention `{needle}`, got:\n{err}"
    );
    assert!(
        !err.contains("panicked"),
        "errors must be diagnostics, not panics:\n{err}"
    );
}

#[test]
fn no_arguments_prints_usage() {
    assert_fails_mentioning(&cmm(&[]), "usage:");
}

#[test]
fn unknown_subcommand_prints_usage() {
    assert_fails_mentioning(&cmm(&["frobnicate"]), "usage:");
}

#[test]
fn missing_file_is_a_diagnostic() {
    assert_fails_mentioning(&cmm(&["run", "no_such.cmm", "f"]), "no_such.cmm");
    assert_fails_mentioning(&cmm(&["batch", "no_such.manifest"]), "no_such.manifest");
}

#[test]
fn bad_numeric_arguments_are_diagnostics() {
    let s = Scratch::new("badnum");
    let src = s.file("t.cmm", "f(bits32 a) { return (a); }");
    let src = src.to_str().unwrap();
    assert_fails_mentioning(&cmm(&["run", src, "f", "not-a-number"]), "bad argument");
    assert_fails_mentioning(&cmm(&["run", src, "f", "--results"]), "--results");
    // Arguments are 32-bit machine words: out-of-range values must be
    // rejected up front, not silently truncated for one engine while
    // the other sees the full u64 (regression for the old `as u32`).
    assert_fails_mentioning(&cmm(&["run", src, "f", "4294967296"]), "bad argument");
    assert_fails_mentioning(&cmm(&["trace", src, "f", "4294967296"]), "bad argument");
    let m3 = s.file("t.m3", "proc main(n) { return n; }");
    let out = cmm(&["m3", m3.to_str().unwrap(), "cutting", "4294967296"]);
    assert_fails_mentioning(&out, "bad argument");
}

#[test]
fn fuzz_rejects_bad_options() {
    assert_fails_mentioning(&cmm(&["fuzz", "--frob"]), "--frob");
    assert_fails_mentioning(&cmm(&["fuzz", "--jobs", "0"]), "--jobs");
    assert_fails_mentioning(&cmm(&["fuzz", "--jobs"]), "--jobs");
    assert_fails_mentioning(&cmm(&["fuzz", "--cases"]), "--cases");
    // The snapshot-equivalence oracle slices fuel; a slice of zero
    // would never make progress and must be rejected at the parser.
    assert_fails_mentioning(&cmm(&["fuzz", "--snap-slice", "0"]), "--snap-slice");
    assert_fails_mentioning(&cmm(&["fuzz", "--snap-slice", "many"]), "--snap-slice");
    assert_fails_mentioning(&cmm(&["fuzz", "--snap-slice"]), "--snap-slice");
}

#[test]
fn snapshot_flags_reject_bad_numbers() {
    let s = Scratch::new("snapnum");
    let src = s.file("t.cmm", "f(bits32 a) { return (a); }");
    let src = src.to_str().unwrap();
    // Zero-interval checkpointing would snapshot before every
    // transition forever; zero fuel would never run at all.
    assert_fails_mentioning(
        &cmm(&["run", src, "f", "1", "--snapshot-every", "0"]),
        "--snapshot-every",
    );
    assert_fails_mentioning(
        &cmm(&["run", src, "f", "1", "--snapshot-every", "x"]),
        "--snapshot-every",
    );
    assert_fails_mentioning(
        &cmm(&["run", src, "f", "1", "--snapshot-every"]),
        "--snapshot-every",
    );
    assert_fails_mentioning(&cmm(&["snap", src, "f", "1", "--fuel", "0"]), "--fuel");
    assert_fails_mentioning(&cmm(&["snap", src, "f", "1", "--at", "many"]), "--at");
    assert_fails_mentioning(&cmm(&["snap", src, "f", "1", "--engine", "warp"]), "warp");
    // Entry arguments stay 32-bit words on the snap path too: no silent
    // `as u32` truncation for one engine family.
    assert_fails_mentioning(&cmm(&["snap", src, "f", "4294967296"]), "bad argument");
    assert_fails_mentioning(
        &cmm(&[
            "run",
            src,
            "f",
            "1",
            "--snapshot-every",
            "4294967296",
            "--snapshot-every",
            "0",
        ]),
        "--snapshot-every",
    );
    let m = s.file("one.manifest", "t.cmm sem entry=f args=1\n");
    assert_fails_mentioning(
        &cmm(&["batch", m.to_str().unwrap(), "--snapshot-every", "0"]),
        "--snapshot-every",
    );
}

#[test]
fn resume_rejects_garbage_and_mismatched_snapshots() {
    let s = Scratch::new("resumebad");
    let src = s.file("t.cmm", "f(bits32 a) { return (a); }");
    let src = src.to_str().unwrap();
    // Missing snapshot file.
    assert_fails_mentioning(&cmm(&["resume", "no_such.snap", src]), "no_such.snap");
    // A file that is not a snapshot at all: structured decode error,
    // not a panic.
    let junk = s.file("junk.snap", "this is not a snapshot");
    assert_fails_mentioning(&cmm(&["resume", junk.to_str().unwrap(), src]), "junk.snap");
    // A valid snapshot of one program refuses to resume over another.
    let loop_src = s.file(
        "loop.cmm",
        "f(bits32 n) {\n  bits32 acc;\n  acc = 0;\nloop:\n  if n == 0 { return (acc); }\n  else { acc = acc + n; n = n - 1; goto loop; }\n}",
    );
    let blob = s.0.join("loop.snap");
    let out = cmm(&[
        "snap",
        loop_src.to_str().unwrap(),
        "f",
        "50",
        "--at",
        "40",
        "--out",
        blob.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "snap failed: {}", stderr(&out));
    assert_fails_mentioning(
        &cmm(&["resume", blob.to_str().unwrap(), src]),
        "different program",
    );
    // ...and refuses an engine of the other family. The diagnostic is
    // structured: it names both engines, both families, and the blob's
    // program digest, so an operator can locate the blob and pick a
    // legal tier — and the execution service's set-engine path emits
    // the very same message.
    let snapshot =
        cmm_core::snap::Snapshot::decode(&std::fs::read(&blob).expect("read blob")).unwrap();
    let out = cmm(&[
        "resume",
        blob.to_str().unwrap(),
        loop_src.to_str().unwrap(),
        "--engine",
        "sem",
    ]);
    assert_fails_mentioning(&out, "engine families differ");
    let err = stderr(&out);
    let blob_engine = snapshot.engine.name();
    assert!(
        err.contains(&format!("{blob_engine} snapshot")),
        "stderr should name the blob engine `{blob_engine}`:\n{err}"
    );
    assert!(
        err.contains(&format!("family {}", snapshot.engine.family().name()))
            && err.contains("family sem"),
        "stderr should name both families:\n{err}"
    );
    let digest = cmm_core::snap::digest_hex(snapshot.digest);
    assert!(
        err.contains(&digest),
        "stderr should name the blob digest {digest}:\n{err}"
    );
}

/// The headline CLI contract: `cmm snap --at K` + `cmm resume` prints
/// exactly what one straight `cmm snap` run prints, for every engine —
/// and a VM-tier snapshot resumes on a different tier.
#[test]
fn snap_then_resume_matches_the_straight_run_on_every_engine() {
    let s = Scratch::new("snapresume");
    let src = s.file(
        "loop.cmm",
        "f(bits32 n) {\n  bits32 acc;\n  acc = 0;\nloop:\n  if n == 0 { return (acc); }\n  else { acc = acc + n; n = n - 1; goto loop; }\n}",
    );
    let src = src.to_str().unwrap();
    for engine in ["sem", "sem-resolved", "vm", "vm-decoded", "vm-fused"] {
        let straight = cmm(&["snap", src, "f", "100", "--engine", engine]);
        assert!(straight.status.success(), "{engine}: {}", stderr(&straight));
        let blob = s.0.join(format!("{engine}.snap"));
        let blob = blob.to_str().unwrap();
        let out = cmm(&[
            "snap", src, "f", "100", "--engine", engine, "--at", "57", "--out", blob,
        ]);
        assert!(out.status.success(), "{engine} snap: {}", stderr(&out));
        assert!(
            stdout(&out).contains("snapshot written"),
            "{engine}: expected a snapshot, got:\n{}",
            stdout(&out)
        );
        let resumed = cmm(&["resume", blob, src]);
        assert!(
            resumed.status.success(),
            "{engine} resume: {}",
            stderr(&resumed)
        );
        assert_eq!(
            stdout(&resumed),
            stdout(&straight),
            "{engine}: resumed output differs from the straight run"
        );
        assert!(stdout(&straight).contains("outcome: halt"));
    }
    // Cross-tier: a stepped-tier blob resumes on the fused tier with
    // the same outcome and instruction count.
    let straight = cmm(&["snap", src, "f", "100", "--engine", "vm"]);
    let resumed = cmm(&[
        "resume",
        s.0.join("vm.snap").to_str().unwrap(),
        src,
        "--engine",
        "vm-fused",
    ]);
    assert!(resumed.status.success(), "cross-tier: {}", stderr(&resumed));
    assert_eq!(
        stdout(&resumed),
        stdout(&straight),
        "cross-tier output differs"
    );
}

/// `cmm run --snapshot-every` must not change what `cmm run` reports:
/// the self-round-trip is invisible except for the trailing snapshots
/// line.
#[test]
fn checkpointed_run_output_extends_the_plain_run() {
    let s = Scratch::new("ckptrun");
    let src = s.file(
        "loop.cmm",
        "f(bits32 n) {\n  bits32 acc;\n  acc = 0;\nloop:\n  if n == 0 { return (acc); }\n  else { acc = acc + n; n = n - 1; goto loop; }\n}",
    );
    let src = src.to_str().unwrap();
    let plain = cmm(&["run", src, "f", "60"]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    let ckpt = cmm(&["run", src, "f", "60", "--snapshot-every", "16"]);
    assert!(ckpt.status.success(), "{}", stderr(&ckpt));
    let plain = stdout(&plain);
    let ckpt = stdout(&ckpt);
    assert!(
        ckpt.starts_with(&plain),
        "checkpointed run must print the plain run verbatim first:\nplain:\n{plain}\nckpt:\n{ckpt}"
    );
    let extra = &ckpt[plain.len()..];
    assert!(
        extra.starts_with("snapshots:") && extra.contains("checkpoint(s)"),
        "trailing snapshots line missing, got: {extra:?}"
    );
}

#[test]
fn batch_rejects_bad_options_and_manifests() {
    let s = Scratch::new("badmanifest");
    let good = s.file("ok.cmm", "f(bits32 a) { return (a); }");
    let _ = good;
    let m = s.file("bad.manifest", "ok.cmm warp-drive entry=f\n");
    assert_fails_mentioning(&cmm(&["batch", m.to_str().unwrap()]), "line 1");
    let m = s.file("bad2.manifest", "ok.cmm sem entry\n");
    assert_fails_mentioning(&cmm(&["batch", m.to_str().unwrap()]), "key=value");
    let m = s.file("empty.manifest", "# nothing here\n");
    assert_fails_mentioning(&cmm(&["batch", m.to_str().unwrap()]), "no jobs");
    assert_fails_mentioning(
        &cmm(&["batch", m.to_str().unwrap(), "--warp"]),
        "unknown batch option",
    );
    assert_fails_mentioning(&cmm(&["batch", m.to_str().unwrap(), "-j", "0"]), "--jobs");
}

#[test]
fn batch_compile_errors_fail_the_run_but_stay_in_the_report() {
    let s = Scratch::new("compileerr");
    s.file("ok.cmm", "f(bits32 a) { return (a + 1); }");
    s.file("broken.cmm", "f(bits32 a) { return (a +; }");
    let m = s.file("mix.manifest", "ok.cmm sem args=1\nbroken.cmm sem,vm\n");
    let out = cmm(&["batch", m.to_str().unwrap(), "--no-timing"]);
    assert!(!out.status.success(), "a compile error must fail the run");
    let json = stdout(&out);
    assert!(json.contains("\"outcome\": \"halt [2]\""), "good job ran");
    assert!(
        json.matches("\"outcome\": \"compile-error\"").count() == 2,
        "both broken jobs reported:\n{json}"
    );
    assert!(stderr(&out).contains("2 job(s) failed"));
}

#[test]
fn batch_reports_are_byte_identical_across_jobs_and_share_compiles() {
    let s = Scratch::new("determinism");
    s.file(
        "loop.cmm",
        "f(bits32 n) {\n  bits32 acc;\n  acc = 0;\nloop:\n  if n == 0 { return (acc); }\n  else { acc = acc + n; n = n - 1; goto loop; }\n}",
    );
    s.file(
        "raise.m3",
        "exception E;\nproc main(n) {\n  var r;\n  try { raise E(n); r = 0; } except { E(v) => { r = v + 1; } }\n  return r;\n}",
    );
    let m = s.file(
        "jobs.manifest",
        "loop.cmm sem,sem-resolved,vm,vm-decoded entry=f args=9\n\
         loop.cmm vm entry=f args=9 opt=none\n\
         raise.m3 sem,vm strategy=cutting args=5\n\
         raise.m3 vm strategy=runtime-unwind args=5\n",
    );
    let run = |jobs: &str| {
        let out = cmm(&["batch", m.to_str().unwrap(), "--no-timing", "-j", jobs]);
        assert!(out.status.success(), "batch -j{jobs}: {}", stderr(&out));
        stdout(&out)
    };
    let j1 = run("1");
    let j4 = run("4");
    assert_eq!(j1, j4, "-j1 and -j4 reports must be byte-identical");
    assert!(j1.contains("\"outcome\": \"halt [45]\""));
    assert!(j1.contains("\"outcome\": \"result 6\""));
    // Each digest group compiles once and every job then refetches, so
    // a fresh cache still finishes warm.
    let rate = j1
        .split("\"hit_rate_permille\": ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.trim_end_matches(['}', ',']).parse::<u64>().ok())
        .expect("report carries a hit rate");
    assert!(rate > 0, "cache hit rate must be nonzero:\n{j1}");
}
