//! The exception-event projection — the engine-independent stream of
//! calls, returns, cuts, yields, and Table 1 operations — must be
//! identical across all five engines: the abstract machine, its
//! pre-resolved variant, the simulated target, its pre-decoded step
//! loop, and the fused superinstruction tier. Timestamps differ (steps vs cost units) and the abstract
//! machine additionally reports continuation capture/death, but the
//! projection drops both, so equality is exact.

use cmm_core::obs::{first_divergence, projection, EventCounts, RecordingSink, TimedEvent};
use cmm_core::sem::{Machine, ResolvedMachine, ResolvedProgram, Status, Value};
use cmm_core::{cfg, frontend, opt, parse, rt, vm};
use cmm_difftest::{case_for, observe_traced, Limits, Outcome};

const FUEL: u64 = 50_000_000;

/// Runs `proc(args)` to completion on one engine of a raw C-- program,
/// returning the recorded events. The paper's figure workloads never
/// suspend, so no dispatcher policy is needed.
fn run_engine(src: &str, engine: &str, proc: &str, args: &[u64]) -> Vec<TimedEvent> {
    let module = parse::parse_module(src).expect("workload parses");
    let prog = cfg::build_program(&module).expect("workload builds");
    let sem_args: Vec<Value> = args.iter().map(|&a| Value::b32(a as u32)).collect();
    match engine {
        "sem" => {
            let mut t = rt::Thread::over(Machine::with_sink(&prog, RecordingSink::default()));
            t.start(proc, sem_args).expect("starts");
            let s = t.run(FUEL);
            assert!(matches!(s, Status::Terminated(_)), "{engine}: {s:?}");
            t.into_machine().into_sink().events
        }
        "sem-resolved" => {
            let rp = ResolvedProgram::new(&prog);
            let mut t = rt::Thread::over(ResolvedMachine::with_sink(&rp, RecordingSink::default()));
            t.start(proc, sem_args).expect("starts");
            let s = t.run(FUEL);
            assert!(matches!(s, Status::Terminated(_)), "{engine}: {s:?}");
            t.into_machine().into_sink().events
        }
        "vm" | "vm-decoded" | "vm-fused" => {
            let vp = vm::compile(&prog).expect("workload compiles");
            let mut t = if engine == "vm-fused" {
                vm::VmThread::with_sink_fused(&vp, RecordingSink::default())
            } else if engine == "vm-decoded" {
                vm::VmThread::with_sink_decoded(&vp, RecordingSink::default())
            } else {
                vm::VmThread::with_sink(&vp, RecordingSink::default())
            };
            t.start(proc, args, 1);
            let s = t.run(FUEL);
            assert!(matches!(s, vm::VmStatus::Halted(_)), "{engine}: {s:?}");
            t.machine.into_sink().events
        }
        other => panic!("unknown engine {other}"),
    }
}

fn example(file: &str) -> String {
    let path = format!("{}/../../examples/{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn figure_workloads_project_identically_across_all_engines() {
    for (file, arg) in [
        ("fig34_plain.cmm", 20u64),
        ("fig34_table.cmm", 20),
        ("sec42_cuts.cmm", 8),
        ("sec42_unwinds.cmm", 8),
    ] {
        let src = example(file);
        let want = projection(&run_engine(&src, "sem", "f", &[arg]));
        assert!(!want.is_empty(), "{file}: empty projection");
        for engine in ["sem-resolved", "vm", "vm-decoded", "vm-fused"] {
            let got = projection(&run_engine(&src, engine, "f", &[arg]));
            if let Err((i, a, b)) = first_divergence(&want, &got) {
                panic!("{file} sem vs {engine}, event {i}: `{a}` vs `{b}`");
            }
        }
    }
}

#[test]
fn fig34_dispatch_counts_match_hand_counts() {
    // f(20) makes exactly 20 calls into g plus 21 returns (20 from g,
    // one from f); the branch-table variant's `return <1/1>` is the
    // normal arm, so neither workload takes an abnormal return.
    for file in ["fig34_plain.cmm", "fig34_table.cmm"] {
        let src = example(file);
        for engine in ["sem", "sem-resolved", "vm", "vm-decoded", "vm-fused"] {
            let c = EventCounts::of(&run_engine(&src, engine, "f", &[20]));
            assert_eq!(c.calls, 20, "{file} {engine}");
            assert_eq!(c.returns, 21, "{file} {engine}");
            assert_eq!(c.abnormal_returns, 0, "{file} {engine}");
            assert_eq!(c.cuts, 0, "{file} {engine}");
        }
    }
}

#[test]
fn generated_sweep_projects_identically() {
    // Wrong-outcome cases are skipped: the engines agree such runs are
    // wrong but may fault at different trace granularity.
    let limits = Limits::default();
    let mut compared = 0;
    for seed in 0..40u64 {
        let case = case_for(seed, 0);
        let src = case.render();
        let (ro, _, ref_events) = observe_traced(&src, "reference", case.args, &limits).unwrap();
        if matches!(ro.outcome, Outcome::Wrong) {
            continue;
        }
        let want = projection(&ref_events);
        for oracle in ["sem-resolved", "vm", "vm-decoded", "vm-fused"] {
            let (_, _, events) = observe_traced(&src, oracle, case.args, &limits).unwrap();
            if let Err((i, a, b)) = first_divergence(&want, &projection(&events)) {
                panic!("seed {seed} reference vs {oracle}, event {i}: `{a}` vs `{b}`\n{src}");
            }
        }
        // The optimized pipeline is a different program, so it gets its
        // own reference: the abstract machine over the same passes.
        let (oo, _, o_events) = observe_traced(&src, "sem+O2", case.args, &limits).unwrap();
        if !matches!(oo.outcome, Outcome::Wrong) {
            let owant = projection(&o_events);
            for oracle in ["vm+O2", "vm-decoded+O2", "vm-fused+O2"] {
                let (_, _, events) = observe_traced(&src, oracle, case.args, &limits).unwrap();
                if let Err((i, a, b)) = first_divergence(&owant, &projection(&events)) {
                    panic!("seed {seed} sem+O2 vs {oracle}, event {i}: `{a}` vs `{b}`\n{src}");
                }
            }
        }
        compared += 1;
    }
    assert!(
        compared >= 10,
        "only {compared} of 40 seeds were comparable"
    );
}

#[test]
fn minim3_strategies_project_identically_across_substrates() {
    // End to end through the driver: the Figure 9 dispatcher's Table 1
    // traffic must look the same whether the program runs on the
    // abstract machine or either simulated-target step loop. The
    // abstract machine runs the unoptimized program, so the VM is held
    // to the same options.
    let opts = opt::OptOptions::none();
    let game = frontend::workloads::GAME;
    for strategy in frontend::Strategy::CORE {
        let module = frontend::compile_minim3(game, strategy).expect("game compiles");
        for arg in [3u32, 50] {
            let label = format!("game({arg}) {}", strategy.label());
            let (r, sem_events) =
                frontend::run_sem_traced(&module, strategy, &[arg]).expect("runs");
            r.expect("sem run succeeds");
            let want = projection(&sem_events);
            assert!(!want.is_empty(), "{label}: empty projection");
            for engine in [
                frontend::VmEngine::Stepped,
                frontend::VmEngine::Decoded,
                frontend::VmEngine::Fused,
            ] {
                let (r, events) = frontend::run_vm_traced(&module, strategy, &[arg], &opts, engine)
                    .expect("runs");
                r.expect("vm run succeeds");
                if let Err((i, a, b)) = first_divergence(&want, &projection(&events)) {
                    panic!(
                        "{label} sem vs {}, event {i}: `{a}` vs `{b}`",
                        engine.label()
                    );
                }
            }
        }
    }
}
