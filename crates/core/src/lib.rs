//! # cmm-core — the C-- system, end to end
//!
//! The facade over the whole reproduction of *"A single intermediate
//! language that supports multiple implementations of exceptions"*
//! (Ramsey & Peyton Jones, PLDI 2000):
//!
//! * [`ir`] — C-- abstract syntax (§3–§4);
//! * [`parse`] — concrete syntax;
//! * [`cfg`] — Abstract C--: the control-flow-graph form of Table 2 and
//!   the §5.3 translation;
//! * [`sem`] — the §5.2 operational semantics (the abstract machine);
//! * [`rt`] — the Table 1 run-time interface;
//! * [`opt`] — Table 3 dataflow and the optimizer (§6);
//! * [`vm`] — the simulated native target: code generation, branch
//!   tables (Figs 3/4), constant-time `cut to`, unwind tables;
//! * [`obs`] — exception-flow tracing and the cost-model profiler
//!   behind `cmm trace` / `cmm profile`;
//! * [`frontend`] — MiniM3 and its four exception-implementation
//!   strategies (§2, Appendix A);
//! * [`pool`] — the batch-execution service behind `cmm batch`: a
//!   work-stealing job pool over a content-addressed compilation cache.
//!
//! [`Compiler`] packages the standard pipeline:
//!
//! ```
//! use cmm_core::Compiler;
//! use cmm_core::sem::Value;
//!
//! let compiler = Compiler::new().source(r#"
//!     sp3(bits32 n) {
//!         bits32 s, p;
//!         s = 1; p = 1;
//!       loop:
//!         if n == 1 { return (s, p); }
//!         else { s = s + n; p = p * n; n = n - 1; goto loop; }
//!     }
//! "#)?;
//!
//! // Run on the abstract machine (the formal semantics)...
//! let vals = compiler.interpret("sp3", vec![Value::b32(10)])?;
//! assert_eq!(vals, vec![Value::b32(55), Value::b32(3628800)]);
//!
//! // ...and on the simulated native target; results agree.
//! let (vals, cost) = compiler.execute("sp3", &[10], 2)?;
//! assert_eq!(vals, vec![55, 3628800]);
//! assert!(cost.instructions > 0);
//! # Ok::<(), cmm_core::Error>(())
//! ```

pub use cmm_cfg as cfg;
pub use cmm_chaos as chaos;
pub use cmm_frontend as frontend;
pub use cmm_ir as ir;
pub use cmm_obs as obs;
pub use cmm_opt as opt;
pub use cmm_parse as parse;
pub use cmm_pool as pool;
pub use cmm_rt as rt;
pub use cmm_sem as sem;
pub use cmm_serve as serve;
pub use cmm_snap as snap;
pub use cmm_vm as vm;

use cmm_cfg::{build_program, Program};
use cmm_ir::Module;
use cmm_opt::{optimize_program, OptOptions};
use cmm_sem::{Machine, Status, Value};
use cmm_vm::{compile, Cost, VmMachine, VmProgram, VmStatus};
use std::fmt;

/// Any error from the pipeline.
#[derive(Clone, PartialEq, Debug)]
pub enum Error {
    /// Concrete-syntax error.
    Parse(String),
    /// AST-to-Abstract-C-- translation error.
    Build(String),
    /// VM code-generation error.
    Codegen(String),
    /// The program went wrong at run time.
    Runtime(String),
    /// The program suspended in `yield` but no run-time system was
    /// provided (use `rt::Thread` / `vm::VmThread` directly for programs
    /// that need one).
    UnhandledYield,
    /// Fuel exhausted.
    OutOfFuel,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Build(m) => write!(f, "translation error: {m}"),
            Error::Codegen(m) => write!(f, "code generation error: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Error::UnhandledYield => write!(f, "program yielded to a missing run-time system"),
            Error::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for Error {}

/// The standard pipeline: parse → Abstract C-- → optimize → run.
#[derive(Clone, Debug)]
pub struct Compiler {
    opts: OptOptions,
    fuel: u64,
    module: Option<Module>,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with default optimization options.
    pub fn new() -> Compiler {
        Compiler {
            opts: OptOptions::default(),
            fuel: 500_000_000,
            module: None,
        }
    }

    /// Sets the optimization options.
    pub fn options(mut self, opts: OptOptions) -> Compiler {
        self.opts = opts;
        self
    }

    /// Sets the execution fuel (transition/instruction budget).
    pub fn fuel(mut self, fuel: u64) -> Compiler {
        self.fuel = fuel;
        self
    }

    /// Parses C-- source.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on syntax errors.
    pub fn source(mut self, src: &str) -> Result<Compiler, Error> {
        let m = cmm_parse::parse_module(src).map_err(|e| Error::Parse(e.to_string()))?;
        self.module = Some(m);
        Ok(self)
    }

    /// Uses an already-built module (e.g. from a front end).
    pub fn module(mut self, m: Module) -> Compiler {
        self.module = Some(m);
        self
    }

    /// Translates and optimizes to Abstract C--.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Build`] on translation errors.
    pub fn program(&self) -> Result<Program, Error> {
        let m = self
            .module
            .as_ref()
            .ok_or_else(|| Error::Build("no module loaded".into()))?;
        let mut p = build_program(m).map_err(|e| Error::Build(e.to_string()))?;
        optimize_program(&mut p, &self.opts);
        Ok(p)
    }

    /// Compiles all the way to the simulated target.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Build`] or [`Error::Codegen`].
    pub fn vm_program(&self) -> Result<VmProgram, Error> {
        let p = self.program()?;
        compile(&p).map_err(|e| Error::Codegen(e.to_string()))
    }

    /// Runs a procedure on the abstract machine (the formal semantics of
    /// §5.2) and returns its results.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] if the program goes wrong;
    /// [`Error::UnhandledYield`] if it calls `yield` (programs that
    /// interact with a run-time system need `rt::Thread`).
    pub fn interpret(&self, proc: &str, args: Vec<Value>) -> Result<Vec<Value>, Error> {
        let p = self.program()?;
        let mut m = Machine::new(&p);
        m.start(proc, args)
            .map_err(|e| Error::Runtime(e.to_string()))?;
        match m.run(self.fuel) {
            Status::Terminated(vals) => Ok(vals),
            Status::Wrong(w) => Err(Error::Runtime(w.to_string())),
            Status::Suspended => Err(Error::UnhandledYield),
            Status::OutOfFuel => Err(Error::OutOfFuel),
            other => Err(Error::Runtime(format!("unexpected status {other:?}"))),
        }
    }

    /// Runs a procedure on the simulated target, returning
    /// `expected_results` values and the exact execution cost.
    ///
    /// # Errors
    ///
    /// As [`Compiler::interpret`], plus code-generation errors.
    pub fn execute(
        &self,
        proc: &str,
        args: &[u64],
        expected_results: usize,
    ) -> Result<(Vec<u64>, Cost), Error> {
        let vp = self.vm_program()?;
        let mut m = VmMachine::new(&vp);
        m.start(proc, args, expected_results);
        match m.run(self.fuel) {
            VmStatus::Halted(vals) => Ok((vals, m.cost)),
            VmStatus::Error(e) => Err(Error::Runtime(e)),
            VmStatus::Suspended => Err(Error::UnhandledYield),
            VmStatus::OutOfFuel => Err(Error::OutOfFuel),
            other => Err(Error::Runtime(format!("unexpected status {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP1: &str = r#"
        sp1(bits32 n) {
            bits32 s, p;
            if n == 1 { return (1, 1); }
            else { s, p = sp1(n - 1); return (s + n, p * n); }
        }
    "#;

    #[test]
    fn pipeline_interpret_and_execute_agree() {
        let c = Compiler::new().source(SP1).unwrap();
        let sem = c.interpret("sp1", vec![Value::b32(7)]).unwrap();
        let (vm, _) = c.execute("sp1", &[7], 2).unwrap();
        let sem_bits: Vec<u64> = sem.iter().filter_map(Value::bits).collect();
        assert_eq!(sem_bits, vm);
    }

    #[test]
    fn optimization_levels_preserve_results() {
        let opt = Compiler::new().source(SP1).unwrap();
        let unopt = Compiler::new()
            .options(OptOptions::none())
            .source(SP1)
            .unwrap();
        assert_eq!(
            opt.interpret("sp1", vec![Value::b32(6)]).unwrap(),
            unopt.interpret("sp1", vec![Value::b32(6)]).unwrap()
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            Compiler::new().source("f( {"),
            Err(Error::Parse(_))
        ));
        let c = Compiler::new().source("f() { goto nowhere; }");
        assert!(matches!(c.unwrap().program(), Err(Error::Build(_))));
        let c = Compiler::new().source("f() { yield(1); return; }").unwrap();
        assert!(matches!(
            c.interpret("f", vec![]),
            Err(Error::UnhandledYield)
        ));
    }
}
