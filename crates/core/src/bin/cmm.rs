//! `cmm` — the command-line driver.
//!
//! ```text
//! cmm run <file.cmm> <proc> [args...] [--results N] [-O0] [--snapshot-every F]
//! cmm dump-cfg <file.cmm> [proc]      # Abstract C-- (Table 2 nodes)
//! cmm dump-ssa <file.cmm> [proc]      # Figure 6-style SSA numbering
//! cmm dump-vm <file.cmm>              # disassembled simulated target
//! cmm m3 <file.m3> <strategy> [args...]   # MiniM3 with a chosen strategy
//! cmm trace <file> <proc|strategy> [args...] [--sem] [--decoded|--fused] [-O0] [--out F]
//! cmm profile <file> <proc|strategy> [args...] [--sem] [--decoded|--fused] [-O0]
//! cmm snap <file.cmm> <proc> [args...] [--engine E] [--at K] [--fuel F]
//!          [--results N] [-O0] [--out FILE]
//! cmm resume <snapshot> <file.cmm> [--engine E] [--fuel F]
//! cmm fuzz [--cases N] [--seed S] [--shrink] [--corpus DIR] [--jobs N]
//!          [--chaos] [--fault-seed S] [--schedules K] [--snap] [--snap-slice F]
//! cmm fuzz --replay DIR               # re-run checked-in reproducers
//! cmm batch <manifest> [-j N] [--out F] [--no-timing] [--cache-bytes B]
//!           [--metrics-out F] [--postmortem-dir DIR] [--snapshot-every F]
//! cmm metrics <manifest> [-j N] [--json] [--no-timing] [--cache-bytes B]
//! cmm serve --listen ADDR [-j N] [--quantum F]
//! cmm serve --selftest [--tenants N] [--threads N] [--quanta N] [--seed S]
//!           [-j N] [--quantum F] [--metrics-out F] [--events-out F]
//! ```
//!
//! `batch` executes a manifest of jobs (see `cmm-pool`'s docs for the
//! format) on a work-stealing pool, sharing compilations through the
//! content-addressed cache, and prints a JSON report. With
//! `--no-timing` the report is byte-identical for every `-j`, which CI
//! exploits; `--jobs N` likewise parallelizes `fuzz` without changing
//! a byte of its report or corpus. `--metrics-out` turns on the batch
//! metrics registry and writes its JSON to a file (the batch report
//! also gains a `metrics` section); `--postmortem-dir` additionally
//! writes each failed job's flight-recorder dump to
//! `DIR/job-<id>.txt`. Either flag runs the jobs through the flight
//! recorder sink; without them the engines run through `NopSink`
//! exactly as the perf trajectory measures.
//!
//! `metrics` is the observability view of the same runner: it executes
//! the manifest with the registry on and prints Prometheus text
//! exposition (or the registry JSON with `--json`), exiting zero even
//! when jobs fail — failures are part of what it reports.
//!
//! `serve` is the persistent multi-tenant execution service
//! (`cmm-serve`): `--listen` speaks the NDJSON session protocol over
//! TCP; `--selftest` runs the deterministic load generator on the
//! virtual cost-model clock and prints figures that are byte-identical
//! at every `-j` (wall-clock rates are printed separately and never
//! gated). `--events-out` writes the scheduler event log and
//! `--metrics-out` the deterministic metrics JSON, which CI compares
//! across worker counts.
//!
//! `--chaos` additionally runs every generated case under K seeded
//! Table 1 fault schedules (derived from `--fault-seed`), asserting the
//! reference semantics, pre-resolved semantics, VM, and pre-decoded VM
//! observe identical outcomes and injected-fault logs under each.
//!
//! Strategies: `runtime-unwind`, `cutting`, `native-unwind`, `cps`,
//! `sjlj-pentium`, `sjlj-sparc`, `sjlj-alpha`.
//!
//! `snap` runs a raw C-- program on one engine (`sem`, `sem-resolved`,
//! `vm`, `vm-decoded`, `vm-fused`; default `vm`) under the fixed
//! dispatcher policy and, if it is still running after `--at K` fuel
//! units, serializes the suspended machine to `--out` in the versioned
//! `cmm-snap` wire format. Without `--at` it simply runs to an end and
//! prints `outcome:` / `instructions:` lines. `resume` decodes such a
//! blob, verifies its source digest against the given file, rebuilds
//! the engine recorded in the snapshot (or `--engine`, any tier of the
//! same family — VM snapshots resume on any VM tier), restores the
//! state, and continues to an end, printing the same two lines — so a
//! snap-at-K-then-resume pair is byte-comparable against one straight
//! `cmm snap` run. `--snapshot-every F` on `run` and `batch` performs
//! a full capture → encode → decode → restore round-trip at every
//! F-fuel slice boundary (an in-process self-check that changes
//! nothing observable); `fuzz --snap` runs the snapshot-equivalence
//! oracle over every generated case.
//!
//! `trace` and `profile` run the program with a recording sink in the
//! engine: `trace` prints the exception-flow event log (and exports
//! Chrome `trace_event` JSON with `--out`, `-` for stdout), `profile`
//! aggregates it into per-procedure and per-strategy metrics with
//! cost-model attribution. Both take a `.cmm` file with an entry
//! procedure, or a `.m3` file with a strategy (entry `main` via the
//! MiniM3 driver). Suspensions of raw C-- programs are serviced by the
//! same fixed dispatcher policy the differential fuzzer uses, so a
//! trace of a fuzz case reproduces the oracle's run exactly.

use cmm_core::sem::{SemEngine, Status, Value};
use cmm_core::{chaos, frontend, ir, obs, opt, pool, rt, sem, serve, snap, vm, Compiler};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut args = args.into_iter();
    let cmd = args.next().ok_or_else(usage)?;
    match cmd.as_str() {
        "run" => {
            let file = args.next().ok_or_else(usage)?;
            let proc = args.next().ok_or_else(usage)?;
            let rest: Vec<String> = args.collect();
            let mut results = 1usize;
            let mut opts = opt::OptOptions::default();
            let mut every: Option<u64> = None;
            let mut call_args: Vec<u64> = Vec::new();
            let mut it = rest.into_iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--results" => {
                        results = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--results needs a number")?;
                    }
                    "-O0" => opts = opt::OptOptions::none(),
                    // Fuel intervals are u64 like every fuel budget in
                    // the system; parse the full width so a large
                    // interval is honored, not truncated.
                    "--snapshot-every" => {
                        every = Some(
                            it.next()
                                .and_then(|v| v.parse::<u64>().ok())
                                .filter(|&n| n >= 1)
                                .ok_or("--snapshot-every needs a number >= 1")?,
                        );
                    }
                    // Arguments are machine words (bits32). Parsing as
                    // u32 up front rejects oversized values instead of
                    // letting the semantics see a truncated word while
                    // the target sees the full u64.
                    v => call_args.push(
                        v.parse::<u32>()
                            .map(u64::from)
                            .map_err(|_| format!("bad argument `{v}`"))?,
                    ),
                }
            }
            if let Some(n) = every {
                return run_checkpointed(&file, &proc, &call_args, results, opts, n);
            }
            let c = compiler(&file)?.options(opts);
            let sem_args = call_args.iter().map(|&a| Value::b32(a as u32)).collect();
            let sem = c.interpret(&proc, sem_args).map_err(|e| e.to_string())?;
            let (vm_vals, cost) = c
                .execute(&proc, &call_args, results)
                .map_err(|e| e.to_string())?;
            println!("semantics: {sem:?}");
            println!("target:    {vm_vals:?}");
            println!(
                "cost:      {} instructions, {} loads, {} stores, {} branches",
                cost.instructions, cost.loads, cost.stores, cost.branches
            );
            Ok(())
        }
        "snap" => {
            let file = args.next().ok_or_else(usage)?;
            let proc = args.next().ok_or_else(usage)?;
            let mut engine = snap::EngineId::Vm;
            let mut fuel = TRACE_FUEL;
            let mut at: Option<u64> = None;
            let mut out = "cmm.snap".to_string();
            let mut results = 1usize;
            let mut opts = opt::OptOptions::default();
            let mut call_args: Vec<u64> = Vec::new();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--engine" => {
                        engine =
                            snap::EngineId::parse(&args.next().ok_or("--engine needs a name")?)?;
                    }
                    "--fuel" => {
                        fuel = args
                            .next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--fuel needs a number >= 1")?;
                    }
                    "--at" => {
                        at = Some(
                            args.next()
                                .and_then(|v| v.parse::<u64>().ok())
                                .ok_or("--at needs a number")?,
                        );
                    }
                    "--out" => out = args.next().ok_or("--out needs a path")?,
                    "--results" => {
                        results = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--results needs a number")?;
                    }
                    "-O0" => opts = opt::OptOptions::none(),
                    v => call_args.push(
                        v.parse::<u32>()
                            .map(u64::from)
                            .map_err(|_| format!("bad argument `{v}`"))?,
                    ),
                }
            }
            let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let opt = opts != opt::OptOptions::none();
            let cx = SnapCtx {
                engine,
                digest: snap::source_digest(&src, opt),
                entry: &proc,
                args: &call_args,
                opt,
                fuel,
                first_budget: fuel,
                at,
                every: None,
                yields: 0,
                service: true,
                out: &out,
            };
            snap_session(&src, None, &cx, opts, results)
        }
        "resume" => {
            let snapfile = args.next().ok_or_else(usage)?;
            let file = args.next().ok_or_else(usage)?;
            let mut engine_override: Option<snap::EngineId> = None;
            let mut fuel = TRACE_FUEL;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--engine" => {
                        engine_override = Some(snap::EngineId::parse(
                            &args.next().ok_or("--engine needs a name")?,
                        )?);
                    }
                    "--fuel" => {
                        fuel = args
                            .next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--fuel needs a number >= 1")?;
                    }
                    other => return Err(format!("unknown resume option `{other}`")),
                }
            }
            let blob = std::fs::read(&snapfile).map_err(|e| format!("{snapfile}: {e}"))?;
            let snapshot = snap::Snapshot::decode(&blob).map_err(|e| format!("{snapfile}: {e}"))?;
            if let Some(e) = engine_override {
                // The structured family-mismatch diagnostic: names both
                // engines, both families, and the blob digest.
                snapshot.check_engine(e)?;
            }
            let engine = engine_override.unwrap_or(snapshot.engine);
            let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            snapshot
                .check_digest(snap::source_digest(&src, snapshot.meta.opt))
                .map_err(|e| format!("{snapfile}: {e} (is `{file}` the snapshotted source?)"))?;
            let opts = if snapshot.meta.opt {
                opt::OptOptions::default()
            } else {
                opt::OptOptions::none()
            };
            let cx = SnapCtx {
                engine,
                digest: snapshot.digest,
                entry: &snapshot.meta.entry,
                args: &snapshot.meta.args,
                opt: snapshot.meta.opt,
                fuel,
                first_budget: snapshot.meta.fuel_remaining,
                at: None,
                every: None,
                yields: snapshot.meta.yields_done,
                service: true,
                out: "",
            };
            snap_session(&src, Some(&snapshot), &cx, opts, 1)
        }
        "dump-cfg" => {
            let file = args.next().ok_or_else(usage)?;
            let only = args.next();
            let prog = compiler(&file)?.program().map_err(|e| e.to_string())?;
            for (name, g) in &prog.procs {
                if only.as_deref().map(|o| name == o).unwrap_or(true) {
                    print!("{}", cmm_core::cfg::display::graph_to_string(g));
                }
            }
            Ok(())
        }
        "dump-ssa" => {
            let file = args.next().ok_or_else(usage)?;
            let only = args.next();
            let prog = compiler(&file)?.program().map_err(|e| e.to_string())?;
            for (name, g) in &prog.procs {
                if name == cmm_core::cfg::YIELD {
                    continue;
                }
                if only.as_deref().map(|o| name == o).unwrap_or(true) {
                    let ssa = opt::Ssa::build(g);
                    print!("{}", opt::ssa::ssa_to_string(g, &ssa));
                }
            }
            Ok(())
        }
        "dump-vm" => {
            let file = args.next().ok_or_else(usage)?;
            let vp = compiler(&file)?.vm_program().map_err(|e| e.to_string())?;
            print!("{}", vm::disasm::disassemble(&vp));
            Ok(())
        }
        "m3" => {
            let file = args.next().ok_or_else(usage)?;
            let strat = args.next().ok_or_else(usage)?;
            let strategy = parse_strategy(&strat)?;
            let call_args: Vec<u32> = args
                .map(|v| v.parse().map_err(|_| format!("bad argument `{v}`")))
                .collect::<Result<_, _>>()?;
            let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let module = frontend::compile_minim3(&src, strategy).map_err(|e| e.to_string())?;
            let sem =
                frontend::run_sem(&module, strategy, &call_args).map_err(|e| e.to_string())?;
            let (vm_val, cost) =
                frontend::run_vm(&module, strategy, &call_args).map_err(|e| e.to_string())?;
            assert_eq!(sem, vm_val, "substrates disagree — please report a bug");
            println!("result:    {vm_val}");
            println!(
                "cost:      {} instructions (+{} run-time system), {} loads, {} stores",
                cost.instructions, cost.runtime_instructions, cost.loads, cost.stores
            );
            Ok(())
        }
        "trace" | "profile" => {
            let file = args.next().ok_or_else(usage)?;
            let entry_arg = args.next().ok_or_else(usage)?;
            let mut use_sem = false;
            let mut engine = frontend::VmEngine::Stepped;
            let mut opts = opt::OptOptions::default();
            let mut out: Option<String> = None;
            let mut results = 1usize;
            let mut call_args: Vec<u64> = Vec::new();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--sem" => use_sem = true,
                    "--decoded" => engine = frontend::VmEngine::Decoded,
                    "--fused" => engine = frontend::VmEngine::Fused,
                    "-O0" => opts = opt::OptOptions::none(),
                    "--out" => out = Some(args.next().ok_or("--out needs a path")?),
                    "--results" => {
                        results = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--results needs a number")?;
                    }
                    v => call_args.push(
                        v.parse::<u32>()
                            .map(u64::from)
                            .map_err(|_| format!("bad argument `{v}`"))?,
                    ),
                }
            }
            let run = if file.ends_with(".m3") {
                trace_m3(&file, &entry_arg, &call_args, &opts, use_sem, engine)?
            } else {
                trace_cmm(
                    &file, &entry_arg, &call_args, results, opts, use_sem, engine,
                )?
            };
            if cmd == "profile" {
                let p = obs::Profile::build(&run.entry, &run.events);
                println!("{file}: {} ({} events)", run.outcome, run.events.len());
                print!("{}", p.report(run.clock));
                return Ok(());
            }
            if out.as_deref() != Some("-") {
                for t in &run.events {
                    println!("{:>12}  {}", t.ts, t.event.render());
                }
                let c = obs::EventCounts::of(&run.events);
                println!(
                    "{file}: {} — {} events ({} calls, {} returns [{} abnormal], \
                     {} cuts, {} yields, {} rts ops)",
                    run.outcome,
                    run.events.len(),
                    c.calls,
                    c.returns,
                    c.abnormal_returns,
                    c.cuts,
                    c.yields,
                    c.rts_ops
                );
            }
            match out.as_deref() {
                Some("-") => print!("{}", obs::chrome_trace_json(&run.entry, &run.events)),
                Some(path) => {
                    let json = obs::chrome_trace_json(&run.entry, &run.events);
                    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
                    println!("chrome trace written to {path}");
                }
                None => {}
            }
            Ok(())
        }
        "fuzz" => {
            let mut cfg = cmm_difftest::FuzzConfig {
                shrink: false,
                ..Default::default()
            };
            let mut replay_dir: Option<String> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--replay" => {
                        replay_dir = Some(args.next().ok_or("--replay needs a directory")?);
                    }
                    "--cases" => {
                        cfg.cases = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--cases needs a number")?;
                    }
                    "--seed" => {
                        cfg.seed = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--seed needs a number")?;
                    }
                    "--shrink" => cfg.shrink = true,
                    "--corpus" => {
                        cfg.corpus_dir =
                            Some(args.next().ok_or("--corpus needs a directory")?.into());
                    }
                    "--chaos" => cfg.chaos = true,
                    "--fault-seed" => {
                        cfg.fault_seed = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--fault-seed needs a number")?;
                    }
                    "--schedules" => {
                        cfg.schedules = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--schedules needs a number")?;
                    }
                    "--jobs" | "-j" => {
                        cfg.jobs = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--jobs needs a number >= 1")?;
                    }
                    "--snap" => cfg.snap = true,
                    "--snap-slice" => {
                        cfg.snap_slice = args
                            .next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--snap-slice needs a number >= 1")?;
                    }
                    other => return Err(format!("unknown fuzz option `{other}`")),
                }
            }
            if let Some(dir) = replay_dir {
                let report = cmm_difftest::replay_corpus(dir.as_ref(), &cfg.limits)
                    .map_err(|e| format!("{dir}: {e}"))?;
                for f in &report.failures {
                    eprintln!("reproducer {} diverges: {}", f.path.display(), f.failure);
                }
                println!(
                    "fuzz replay: {} reproducer(s) from {dir}: {} failure(s)",
                    report.files_run,
                    report.failures.len()
                );
                return if report.ok() {
                    Ok(())
                } else {
                    Err("corpus replay found divergence".into())
                };
            }
            let report = cmm_difftest::run_fuzz(&cfg);
            for f in &report.failures {
                eprintln!("case {} (seed {}): {}", f.index, cfg.seed, f.failure);
                let shown = f.shrunk.as_ref().unwrap_or(&f.case);
                eprintln!(
                    "--- {} program ---",
                    if f.shrunk.is_some() {
                        "shrunk"
                    } else {
                        "failing"
                    }
                );
                eprint!("{}", shown.render());
                if let Some(p) = &f.corpus_path {
                    eprintln!("reproducer written to {}", p.display());
                }
                if let Some(p) = &f.events_path {
                    eprintln!("divergence event logs written to {}", p.display());
                }
            }
            println!(
                "fuzz: {} cases, seed {}: {} failure(s)",
                report.cases_run,
                cfg.seed,
                report.failures.len()
            );
            if report.ok() {
                Ok(())
            } else {
                Err("differential fuzzing found divergence".into())
            }
        }
        "batch" => {
            let manifest = args.next().ok_or_else(usage)?;
            let mut jobs = 1usize;
            let mut out: Option<String> = None;
            let mut timing = true;
            let mut cache_bytes: Option<u64> = None;
            let mut metrics_out: Option<String> = None;
            let mut postmortem_dir: Option<String> = None;
            let mut snapshot_every: Option<u64> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--jobs" | "-j" => {
                        jobs = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--jobs needs a number >= 1")?;
                    }
                    "--out" => out = Some(args.next().ok_or("--out needs a path")?),
                    "--no-timing" => timing = false,
                    "--cache-bytes" => {
                        cache_bytes = Some(
                            args.next()
                                .and_then(|v| v.parse().ok())
                                .ok_or("--cache-bytes needs a number")?,
                        );
                    }
                    "--metrics-out" => {
                        metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?);
                    }
                    "--postmortem-dir" => {
                        postmortem_dir =
                            Some(args.next().ok_or("--postmortem-dir needs a directory")?);
                    }
                    "--snapshot-every" => {
                        snapshot_every = Some(
                            args.next()
                                .and_then(|v| v.parse::<u64>().ok())
                                .filter(|&n| n >= 1)
                                .ok_or("--snapshot-every needs a number >= 1")?,
                        );
                    }
                    other => return Err(format!("unknown batch option `{other}`")),
                }
            }
            let specs = pool::load_manifest(manifest.as_ref())?;
            if specs.is_empty() {
                return Err(format!("{manifest}: no jobs"));
            }
            let cache = pool::PipelineCache::new(match cache_bytes {
                Some(max_bytes) => pool::CacheConfig { max_bytes },
                None => pool::CacheConfig::default(),
            });
            let report = pool::run_batch(
                &specs,
                &cache,
                &pool::BatchConfig {
                    workers: jobs,
                    queue_cap: 256,
                    metrics: metrics_out.is_some() || postmortem_dir.is_some(),
                    snapshot_every,
                    ..Default::default()
                },
            );
            let json = report.to_json(timing);
            match out.as_deref() {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
                }
                None => print!("{json}"),
            }
            if let Some(path) = &metrics_out {
                let reg = report.registry.as_ref().expect("metrics enabled");
                let mut m = reg.to_json(timing);
                m.push('\n');
                std::fs::write(path, &m).map_err(|e| format!("{path}: {e}"))?;
            }
            if let Some(dir) = &postmortem_dir {
                std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                for pm in &report.postmortems {
                    let path = format!("{dir}/job-{}.txt", pm.job_id);
                    std::fs::write(&path, &pm.text).map_err(|e| format!("{path}: {e}"))?;
                    eprintln!(
                        "batch: post-mortem for job {} ({} [{}] {}) written to {path}",
                        pm.job_id, pm.name, pm.engine, pm.outcome
                    );
                }
            }
            eprintln!(
                "batch: {} job(s) at -j{jobs}, cache {}",
                report.jobs.len(),
                cache.snapshot()
            );
            // A failing job (compile error, panic, or a `wrong`
            // verdict from the machine) must fail the batch loudly,
            // naming the culprit — not just sit inside the JSON.
            let failing = report.failing_jobs();
            if failing.is_empty() {
                Ok(())
            } else {
                for j in &failing {
                    eprintln!(
                        "batch: job {} failed: {} [{}] entry={} args={:?}: {}{}{}",
                        j.id,
                        j.name,
                        j.engine,
                        j.entry,
                        j.args,
                        j.outcome,
                        if j.detail.is_empty() { "" } else { ": " },
                        j.detail
                    );
                }
                Err(format!(
                    "{} job(s) failed (compile error, panic, or wrong)",
                    failing.len()
                ))
            }
        }
        "metrics" => {
            let manifest = args.next().ok_or_else(usage)?;
            let mut jobs = 1usize;
            let mut json = false;
            let mut timing = true;
            let mut cache_bytes: Option<u64> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--jobs" | "-j" => {
                        jobs = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--jobs needs a number >= 1")?;
                    }
                    "--json" => json = true,
                    "--no-timing" => timing = false,
                    "--cache-bytes" => {
                        cache_bytes = Some(
                            args.next()
                                .and_then(|v| v.parse().ok())
                                .ok_or("--cache-bytes needs a number")?,
                        );
                    }
                    other => return Err(format!("unknown metrics option `{other}`")),
                }
            }
            let specs = pool::load_manifest(manifest.as_ref())?;
            if specs.is_empty() {
                return Err(format!("{manifest}: no jobs"));
            }
            let cache = pool::PipelineCache::new(match cache_bytes {
                Some(max_bytes) => pool::CacheConfig { max_bytes },
                None => pool::CacheConfig::default(),
            });
            let report = pool::run_batch(
                &specs,
                &cache,
                &pool::BatchConfig {
                    workers: jobs,
                    queue_cap: 256,
                    metrics: true,
                    ..Default::default()
                },
            );
            let reg = report.registry.as_ref().expect("metrics enabled");
            if json {
                println!("{}", reg.to_json(timing));
            } else {
                print!("{}", reg.to_prometheus());
            }
            // The observability viewer reports failures instead of
            // failing on them: a fleet dashboard scraping this output
            // wants the counters, not a dead scrape target.
            for pm in &report.postmortems {
                eprintln!(
                    "metrics: job {} `{}` [{}] ended {}",
                    pm.job_id, pm.name, pm.engine, pm.outcome
                );
            }
            Ok(())
        }
        "serve" => {
            let mut listen: Option<String> = None;
            let mut selftest = false;
            let mut workers = 1usize;
            let mut quantum = 2_000u64;
            let mut tenants = 17usize;
            let mut threads = 64usize;
            let mut quanta = 0u64;
            let mut seed = 0xC0FFEEu64;
            let mut metrics_out: Option<String> = None;
            let mut events_out: Option<String> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
                    "--selftest" => selftest = true,
                    "--jobs" | "-j" => {
                        workers = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--jobs needs a number >= 1")?;
                    }
                    "--quantum" => {
                        quantum = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--quantum needs a number >= 1")?;
                    }
                    "--tenants" => {
                        tenants = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--tenants needs a number >= 1")?;
                    }
                    "--threads" => {
                        threads = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--threads needs a number >= 1")?;
                    }
                    "--quanta" => {
                        quanta = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--quanta needs a number")?;
                    }
                    "--seed" => {
                        seed = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--seed needs a number")?;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(args.next().ok_or("--metrics-out needs a path")?)
                    }
                    "--events-out" => {
                        events_out = Some(args.next().ok_or("--events-out needs a path")?)
                    }
                    other => return Err(format!("unknown serve option `{other}`")),
                }
            }
            let config = serve::ServeConfig {
                quantum,
                ..serve::load_config(workers)
            };
            if selftest {
                let profile = serve::LoadProfile {
                    tenants,
                    threads_per_tenant: threads,
                    quanta,
                    seed,
                };
                let (svc, report) = serve::run_load(config, &profile);
                // Deterministic figures first (byte-identical at every
                // -j), wall-clock rates last, clearly separated.
                println!(
                    "threads:          {} submitted, {} completed, {} yields serviced",
                    report.threads, report.completed, report.yields
                );
                println!(
                    "scheduler:        {} quanta, {} migrations, parked high water {}",
                    report.quanta, report.migrations, report.parked_high_water
                );
                println!(
                    "virtual:          {} ns, {} responses/s",
                    report.virtual_ns, report.virtual_rps
                );
                println!(
                    "queue wait vns:   p50 {} p99 {}",
                    report.queue_wait_p50, report.queue_wait_p99
                );
                println!(
                    "turnaround vns:   p50 {} p99 {}",
                    report.turnaround_p50, report.turnaround_p99
                );
                println!("event digest:     {:#018x}", report.event_digest);
                println!(
                    "wall (not gated): {} ms, {} responses/s",
                    report.wall_ns / 1_000_000,
                    report.wall_rps
                );
                if let Some(path) = &events_out {
                    std::fs::write(path, svc.events_text()).map_err(|e| format!("{path}: {e}"))?;
                }
                if let Some(path) = &metrics_out {
                    let reg = svc.registry().expect("selftest mounts metrics");
                    std::fs::write(path, reg.to_json(false)).map_err(|e| format!("{path}: {e}"))?;
                }
                return Ok(());
            }
            let addr = listen.ok_or_else(usage)?;
            let listener =
                std::net::TcpListener::bind(&addr).map_err(|e| format!("{addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("serving on {local}");
            serve::serve_on(listener, serve::Service::new(config)).map_err(|e| e.to_string())
        }
        _ => Err(usage()),
    }
}

/// One traced run, ready for `trace` rendering or `profile`
/// aggregation.
struct TraceRun {
    entry: ir::Name,
    clock: &'static str,
    outcome: String,
    events: Vec<obs::TimedEvent>,
}

const TRACE_FUEL: u64 = 500_000_000;
const TRACE_MAX_YIELDS: usize = 1024;

/// The deterministic parameter fill the fixed dispatcher policy uses —
/// the same function as `cmm-difftest`'s oracles, so a traced replay of
/// a fuzz case follows the oracle's exact path.
fn fill(code: u64) -> u32 {
    (code.wrapping_mul(13).wrapping_add(7) & 0xfff) as u32
}

/// Traces a MiniM3 program end to end through the driver (dispatcher
/// included), on the chosen substrate.
fn trace_m3(
    file: &str,
    strat: &str,
    args: &[u64],
    opts: &opt::OptOptions,
    use_sem: bool,
    engine: frontend::VmEngine,
) -> Result<TraceRun, String> {
    let strategy = parse_strategy(strat)?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let module = frontend::compile_minim3(&src, strategy).map_err(|e| e.to_string())?;
    // MiniM3 arguments are 32-bit; reject rather than silently truncate.
    let args32: Vec<u32> = args
        .iter()
        .map(|&a| u32::try_from(a).map_err(|_| format!("argument {a} out of range for MiniM3")))
        .collect::<Result<_, _>>()?;
    let entry = ir::Name::from(frontend::lower::ENTRY);
    if use_sem {
        let (r, events) =
            frontend::run_sem_traced(&module, strategy, &args32).map_err(|e| e.to_string())?;
        let outcome = match r {
            Ok(v) => format!("result {v}"),
            Err(e) => e.to_string(),
        };
        Ok(TraceRun {
            entry,
            clock: "steps",
            outcome,
            events,
        })
    } else {
        let (r, events) = frontend::run_vm_traced(&module, strategy, &args32, opts, engine)
            .map_err(|e| e.to_string())?;
        let outcome = match r {
            Ok((v, _)) => format!("result {v}"),
            Err(e) => e.to_string(),
        };
        Ok(TraceRun {
            entry,
            clock: "cost units",
            outcome,
            events,
        })
    }
}

/// Traces a raw C-- program on the chosen substrate, servicing
/// suspensions with the fixed dispatcher policy.
#[allow(clippy::too_many_arguments)]
fn trace_cmm(
    file: &str,
    proc: &str,
    args: &[u64],
    results: usize,
    opts: opt::OptOptions,
    use_sem: bool,
    engine: frontend::VmEngine,
) -> Result<TraceRun, String> {
    let c = compiler(file)?.options(opts);
    let entry = ir::Name::from(proc);
    if use_sem {
        let prog = c.program().map_err(|e| e.to_string())?;
        let mut t = rt::Thread::over(sem::Machine::with_sink(
            &prog,
            obs::RecordingSink::default(),
        ));
        let outcome = drive_sem(&mut t, proc, args);
        Ok(TraceRun {
            entry,
            clock: "steps",
            outcome,
            events: t.into_machine().into_sink().events,
        })
    } else {
        let vp = c.vm_program().map_err(|e| e.to_string())?;
        let mut t = match engine {
            frontend::VmEngine::Stepped => {
                vm::VmThread::with_sink(&vp, obs::RecordingSink::default())
            }
            frontend::VmEngine::Decoded => {
                vm::VmThread::with_sink_decoded(&vp, obs::RecordingSink::default())
            }
            frontend::VmEngine::Fused => {
                vm::VmThread::with_sink_fused(&vp, obs::RecordingSink::default())
            }
        };
        let outcome = drive_vm(&mut t, proc, args, results);
        Ok(TraceRun {
            entry,
            clock: "cost units",
            outcome,
            events: t.machine.into_sink().events,
        })
    }
}

/// Runs a raw C-- program on the abstract machine under the fixed
/// dispatcher policy (see `cmm-difftest`'s `observe_sem`): resume one
/// hop toward the caller, take the first unwind continuation on odd
/// yield codes, fill every parameter with [`fill`].
fn drive_sem<'p, M: SemEngine<'p>>(t: &mut rt::Thread<'p, M>, proc: &str, args: &[u64]) -> String {
    if let Err(w) = t.start(proc, args.iter().map(|&a| Value::b32(a as u32)).collect()) {
        return format!("wrong: {w}");
    }
    let mut yields = 0usize;
    loop {
        match t.run(TRACE_FUEL) {
            Status::Terminated(vals) => return format!("halt {vals:?}"),
            Status::Wrong(w) => return format!("wrong: {w}"),
            Status::OutOfFuel => return "out of fuel".into(),
            Status::Suspended => {
                yields += 1;
                if yields > TRACE_MAX_YIELDS {
                    return "suspension bound reached".into();
                }
                let code = t.yield_code().unwrap_or(0);
                let Some(mut a) = t.first_activation() else {
                    return "rts error: no first activation".into();
                };
                let _ = t.next_activation(&mut a);
                if let Err(w) = t.set_activation(&a) {
                    return format!("rts error: {w}");
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = Value::b32(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v.clone();
                    n += 1;
                }
                if let Err(w) = t.resume() {
                    return format!("rts error: {w}");
                }
            }
            other => return format!("unexpected status {other:?}"),
        }
    }
}

/// [`drive_sem`]'s policy on the simulated target.
fn drive_vm<S: obs::TraceSink>(
    t: &mut vm::VmThread<'_, S>,
    proc: &str,
    args: &[u64],
    results: usize,
) -> String {
    t.start(proc, args, results);
    let mut yields = 0usize;
    loop {
        match t.run(TRACE_FUEL) {
            vm::VmStatus::Halted(vals) => return format!("halt {vals:?}"),
            vm::VmStatus::Error(e) => return format!("fault: {e}"),
            vm::VmStatus::OutOfFuel => return "out of fuel".into(),
            vm::VmStatus::Suspended => {
                yields += 1;
                if yields > TRACE_MAX_YIELDS {
                    return "suspension bound reached".into();
                }
                let code = t.machine.yield_args(1)[0];
                let Some(mut a) = t.first_activation() else {
                    return "rts error: no first activation".into();
                };
                let _ = t.next_activation(&mut a);
                if let Err(e) = t.set_activation(&a) {
                    return format!("rts error: {e}");
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = u64::from(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v;
                    n += 1;
                }
                if let Err(e) = t.resume() {
                    return format!("rts error: {e}");
                }
            }
            other => return format!("unexpected status {other:?}"),
        }
    }
}

/// Shared parameters of the snapshot drive loops behind `cmm snap`,
/// `cmm resume`, and `cmm run --snapshot-every`.
struct SnapCtx<'a> {
    engine: snap::EngineId,
    digest: [u64; 2],
    entry: &'a str,
    args: &'a [u64],
    opt: bool,
    /// Per-segment fuel budget for segments after the first.
    fuel: u64,
    /// The current segment's remaining budget at loop entry
    /// (`meta.fuel_remaining` on resume, `fuel` on a fresh start).
    first_budget: u64,
    /// Fuel from now until the capture point; `None` never captures.
    at: Option<u64>,
    /// Self-round-trip checkpoint interval (`--snapshot-every`).
    every: Option<u64>,
    /// Yields already serviced (nonzero when resuming).
    yields: u64,
    /// Service suspensions with the fixed dispatcher policy; when
    /// false a suspension ends the run, like plain `cmm run`.
    service: bool,
    /// Snapshot output path (used only when `at` fires).
    out: &'a str,
}

/// How a snapshot drive ended.
enum DriveEnd<T> {
    /// Clean termination with the machine's results.
    Done(T),
    /// Any other end (wrong, fuel, rts error, unserviced yield).
    Stopped(String),
    /// The capture point fired: a snapshot was written.
    Written { path: String, bytes: usize },
}

/// Encodes the machine state under `cx`'s identity metadata.
fn encode_snapshot(
    cx: &SnapCtx,
    budget: u64,
    yields: u64,
    plan: Option<&chaos::FaultPlan>,
    state: snap::MachineState,
) -> Vec<u8> {
    snap::Snapshot {
        engine: cx.engine,
        digest: cx.digest,
        meta: snap::SnapMeta {
            entry: cx.entry.to_string(),
            args: cx.args.to_vec(),
            fuel_remaining: budget,
            yields_done: yields,
            opt: cx.opt,
        },
        governor: None,
        chaos: plan.map(|p| p.state()),
        state,
    }
    .encode()
}

/// Drives an abstract-machine engine in fuel slices: captures a
/// snapshot to `cx.out` when the `--at` point fires, self-round-trips
/// at every `--snapshot-every` boundary, and services suspensions with
/// the fixed dispatcher policy (when `cx.service`). Returns the end
/// plus checkpoint (count, bytes) totals. Fuel accounting is exact, so
/// the sliced run's outcome matches the unsliced one.
fn snap_drive_sem<'p, M: SemEngine<'p>>(
    t: &mut rt::Thread<'p, M>,
    cx: &SnapCtx,
) -> Result<(DriveEnd<Vec<Value>>, u64, u64), String> {
    let mut yields = cx.yields;
    let mut at = cx.at;
    let mut budget = cx.first_budget;
    let (mut count, mut total) = (0u64, 0u64);
    loop {
        let status = loop {
            if at == Some(0) {
                let bytes = encode_snapshot(
                    cx,
                    budget,
                    yields,
                    t.chaos(),
                    snap::MachineState::Sem(t.machine().capture()?),
                );
                let n = bytes.len();
                std::fs::write(cx.out, &bytes).map_err(|e| format!("{}: {e}", cx.out))?;
                let path = cx.out.to_string();
                return Ok((DriveEnd::Written { path, bytes: n }, count, total));
            }
            let mut slice = budget;
            if let Some(k) = at {
                slice = slice.min(k);
            }
            if let Some(n) = cx.every {
                slice = slice.min(n.max(1));
            }
            let before = t.machine().steps();
            let status = t.run(slice);
            let used = t.machine().steps().saturating_sub(before);
            budget = budget.saturating_sub(used);
            if let Some(k) = at.as_mut() {
                *k = k.saturating_sub(used);
            }
            if matches!(status, Status::OutOfFuel) && budget > 0 {
                // A slice boundary, not real exhaustion: checkpoint if
                // asked, then keep going (the `--at` capture fires at
                // the top of the loop).
                if at != Some(0) && cx.every.is_some() {
                    let bytes = encode_snapshot(
                        cx,
                        budget,
                        yields,
                        t.chaos(),
                        snap::MachineState::Sem(t.machine().capture()?),
                    );
                    let decoded = snap::Snapshot::decode(&bytes).map_err(|e| e.to_string())?;
                    let snap::MachineState::Sem(st) = &decoded.state else {
                        return Err("sem snapshot decoded to a VM state".into());
                    };
                    t.machine_mut().restore(st)?;
                    count += 1;
                    total += bytes.len() as u64;
                }
                continue;
            }
            break status;
        };
        match status {
            Status::Terminated(vals) => return Ok((DriveEnd::Done(vals), count, total)),
            Status::Wrong(w) => {
                return Ok((DriveEnd::Stopped(format!("wrong: {w}")), count, total));
            }
            Status::OutOfFuel => {
                return Ok((DriveEnd::Stopped("out of fuel".into()), count, total));
            }
            Status::Suspended => {
                if !cx.service {
                    let s = "program yielded to a missing run-time system".to_string();
                    return Ok((DriveEnd::Stopped(s), count, total));
                }
                if yields >= TRACE_MAX_YIELDS as u64 {
                    return Ok((
                        DriveEnd::Stopped("suspension bound reached".into()),
                        count,
                        total,
                    ));
                }
                yields += 1;
                let code = t.yield_code().unwrap_or(0);
                let Some(mut a) = t.first_activation() else {
                    return Ok((
                        DriveEnd::Stopped("rts error: no first activation".into()),
                        count,
                        total,
                    ));
                };
                let _ = t.next_activation(&mut a);
                if let Err(w) = t.set_activation(&a) {
                    return Ok((DriveEnd::Stopped(format!("rts error: {w}")), count, total));
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = Value::b32(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v.clone();
                    n += 1;
                }
                if let Err(w) = t.resume() {
                    return Ok((DriveEnd::Stopped(format!("rts error: {w}")), count, total));
                }
                budget = cx.fuel;
            }
            other => {
                return Ok((
                    DriveEnd::Stopped(format!("unexpected status {other:?}")),
                    count,
                    total,
                ));
            }
        }
    }
}

/// [`snap_drive_sem`] on the simulated target.
fn snap_drive_vm<S: obs::TraceSink>(
    t: &mut vm::VmThread<'_, S>,
    cx: &SnapCtx,
) -> Result<(DriveEnd<Vec<u64>>, u64, u64), String> {
    let mut yields = cx.yields;
    let mut at = cx.at;
    let mut budget = cx.first_budget;
    let (mut count, mut total) = (0u64, 0u64);
    loop {
        let status = loop {
            if at == Some(0) {
                let bytes = encode_snapshot(
                    cx,
                    budget,
                    yields,
                    t.chaos(),
                    snap::MachineState::Vm(t.machine.capture()?),
                );
                let n = bytes.len();
                std::fs::write(cx.out, &bytes).map_err(|e| format!("{}: {e}", cx.out))?;
                let path = cx.out.to_string();
                return Ok((DriveEnd::Written { path, bytes: n }, count, total));
            }
            let mut slice = budget;
            if let Some(k) = at {
                slice = slice.min(k);
            }
            if let Some(n) = cx.every {
                slice = slice.min(n.max(1));
            }
            let before = t.machine.cost.instructions;
            let status = t.run(slice);
            let used = t.machine.cost.instructions.saturating_sub(before);
            budget = budget.saturating_sub(used);
            if let Some(k) = at.as_mut() {
                *k = k.saturating_sub(used);
            }
            if matches!(status, vm::VmStatus::OutOfFuel) && budget > 0 {
                if at != Some(0) && cx.every.is_some() {
                    let bytes = encode_snapshot(
                        cx,
                        budget,
                        yields,
                        t.chaos(),
                        snap::MachineState::Vm(t.machine.capture()?),
                    );
                    let decoded = snap::Snapshot::decode(&bytes).map_err(|e| e.to_string())?;
                    let snap::MachineState::Vm(st) = &decoded.state else {
                        return Err("vm snapshot decoded to a sem state".into());
                    };
                    t.machine.restore(st)?;
                    count += 1;
                    total += bytes.len() as u64;
                }
                continue;
            }
            break status;
        };
        match status {
            vm::VmStatus::Halted(vals) => return Ok((DriveEnd::Done(vals), count, total)),
            vm::VmStatus::Error(e) => {
                return Ok((DriveEnd::Stopped(format!("fault: {e}")), count, total));
            }
            vm::VmStatus::OutOfFuel => {
                return Ok((DriveEnd::Stopped("out of fuel".into()), count, total));
            }
            vm::VmStatus::Suspended => {
                if !cx.service {
                    let s = "program yielded to a missing run-time system".to_string();
                    return Ok((DriveEnd::Stopped(s), count, total));
                }
                if yields >= TRACE_MAX_YIELDS as u64 {
                    return Ok((
                        DriveEnd::Stopped("suspension bound reached".into()),
                        count,
                        total,
                    ));
                }
                yields += 1;
                let code = t.machine.yield_args(1)[0];
                let Some(mut a) = t.first_activation() else {
                    return Ok((
                        DriveEnd::Stopped("rts error: no first activation".into()),
                        count,
                        total,
                    ));
                };
                let _ = t.next_activation(&mut a);
                if let Err(e) = t.set_activation(&a) {
                    return Ok((DriveEnd::Stopped(format!("rts error: {e}")), count, total));
                }
                if code % 2 == 1 {
                    let _ = t.set_unwind_cont(0);
                }
                let v = u64::from(fill(code));
                let mut n = 0;
                while let Some(p) = t.find_cont_param(n) {
                    *p = v;
                    n += 1;
                }
                if let Err(e) = t.resume() {
                    return Ok((DriveEnd::Stopped(format!("rts error: {e}")), count, total));
                }
                budget = cx.fuel;
            }
            other => {
                return Ok((
                    DriveEnd::Stopped(format!("unexpected status {other:?}")),
                    count,
                    total,
                ));
            }
        }
    }
}

/// Builds the engine `cx` names over `src`, optionally restores a
/// decoded snapshot into it, runs the drive, and prints the end in a
/// stable format: `outcome:` + `instructions:` lines on a finished
/// run (byte-comparable between a straight run and a snap-then-resume
/// pair), or a one-line report of the written snapshot.
fn snap_session(
    src: &str,
    restore: Option<&snap::Snapshot>,
    cx: &SnapCtx,
    opts: opt::OptOptions,
    results: usize,
) -> Result<(), String> {
    let c = Compiler::new()
        .source(src)
        .map_err(|e| e.to_string())?
        .options(opts);
    match cx.engine {
        snap::EngineId::Sem => {
            let prog = c.program().map_err(|e| e.to_string())?;
            let mut t = rt::Thread::new(&prog);
            snap_session_sem(&mut t, restore, cx)
        }
        snap::EngineId::SemResolved => {
            let prog = c.program().map_err(|e| e.to_string())?;
            let rp = sem::ResolvedProgram::new(&prog);
            let mut t = rt::Thread::over(sem::ResolvedMachine::new(&rp));
            snap_session_sem(&mut t, restore, cx)
        }
        _ => {
            let vp = c.vm_program().map_err(|e| e.to_string())?;
            let mut t = match cx.engine {
                snap::EngineId::VmDecoded => vm::VmThread::new_decoded(&vp),
                snap::EngineId::VmFused => vm::VmThread::new_fused(&vp),
                _ => vm::VmThread::new(&vp),
            };
            snap_session_vm(&mut t, restore, cx, results)
        }
    }
}

/// [`snap_session`]'s sem-family start/restore + drive + report.
fn snap_session_sem<'p, M: SemEngine<'p>>(
    t: &mut rt::Thread<'p, M>,
    restore: Option<&snap::Snapshot>,
    cx: &SnapCtx,
) -> Result<(), String> {
    match restore {
        Some(s) => {
            let snap::MachineState::Sem(st) = &s.state else {
                return Err(
                    "snapshot holds a VM state but a sem-family engine was requested".into(),
                );
            };
            t.machine_mut().restore(st)?;
            if let Some(ch) = &s.chaos {
                t.set_chaos(chaos::FaultPlan::from_state(ch));
            }
        }
        None => {
            let vals = cx.args.iter().map(|&a| Value::b32(a as u32)).collect();
            t.start(cx.entry, vals).map_err(|w| format!("wrong: {w}"))?;
        }
    }
    let (end, _, _) = snap_drive_sem(t, cx)?;
    match end {
        DriveEnd::Done(vals) => {
            let bits: Vec<u64> = vals.iter().map(|v| v.bits().unwrap_or(u64::MAX)).collect();
            println!("outcome: halt {bits:?}");
            println!("instructions: {}", t.machine().steps());
        }
        DriveEnd::Stopped(s) => {
            println!("outcome: {s}");
            println!("instructions: {}", t.machine().steps());
        }
        DriveEnd::Written { path, bytes } => {
            println!(
                "snapshot written to {path} ({bytes} bytes, engine {})",
                cx.engine.name()
            );
        }
    }
    Ok(())
}

/// [`snap_session`]'s VM-family start/restore + drive + report.
fn snap_session_vm<S: obs::TraceSink>(
    t: &mut vm::VmThread<'_, S>,
    restore: Option<&snap::Snapshot>,
    cx: &SnapCtx,
    results: usize,
) -> Result<(), String> {
    match restore {
        Some(s) => {
            let snap::MachineState::Vm(st) = &s.state else {
                return Err(
                    "snapshot holds a sem state but a VM-family engine was requested".into(),
                );
            };
            t.machine.restore(st)?;
            if let Some(ch) = &s.chaos {
                t.set_chaos(chaos::FaultPlan::from_state(ch));
            }
        }
        None => t.start(cx.entry, cx.args, results),
    }
    let (end, _, _) = snap_drive_vm(t, cx)?;
    match end {
        DriveEnd::Done(vals) => {
            println!("outcome: halt {vals:?}");
            println!("instructions: {}", t.machine.cost.total());
        }
        DriveEnd::Stopped(s) => {
            println!("outcome: {s}");
            println!("instructions: {}", t.machine.cost.total());
        }
        DriveEnd::Written { path, bytes } => {
            println!(
                "snapshot written to {path} ({bytes} bytes, engine {})",
                cx.engine.name()
            );
        }
    }
    Ok(())
}

/// `cmm run --snapshot-every F`: the same two runs as plain `run`, but
/// each driven in F-fuel slices with a full capture → encode → decode
/// → restore round-trip at every boundary. Results and cost are
/// identical to the plain run — the round-trips are a self-check —
/// plus one extra line reporting checkpoint volume.
fn run_checkpointed(
    file: &str,
    proc: &str,
    call_args: &[u64],
    results: usize,
    opts: opt::OptOptions,
    every: u64,
) -> Result<(), String> {
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let c = Compiler::new()
        .source(&src)
        .map_err(|e| e.to_string())?
        .options(opts);
    let opt = opts != opt::OptOptions::none();
    let mut cx = SnapCtx {
        engine: snap::EngineId::Sem,
        digest: snap::source_digest(&src, opt),
        entry: proc,
        args: call_args,
        opt,
        fuel: TRACE_FUEL,
        first_budget: TRACE_FUEL,
        at: None,
        every: Some(every),
        yields: 0,
        service: false,
        out: "",
    };
    let prog = c.program().map_err(|e| e.to_string())?;
    let mut t = rt::Thread::new(&prog);
    let sem_args = call_args.iter().map(|&a| Value::b32(a as u32)).collect();
    t.start(proc, sem_args)
        .map_err(|w| format!("runtime error: {w}"))?;
    let (end, sem_count, sem_bytes) = snap_drive_sem(&mut t, &cx)?;
    let sem_vals = match end {
        DriveEnd::Done(vals) => vals,
        DriveEnd::Stopped(s) => return Err(s),
        DriveEnd::Written { .. } => return Err("internal: run never writes a snapshot".into()),
    };
    cx.engine = snap::EngineId::Vm;
    let vp = c.vm_program().map_err(|e| e.to_string())?;
    let mut tv = vm::VmThread::new(&vp);
    tv.start(proc, call_args, results);
    let (end, vm_count, vm_bytes) = snap_drive_vm(&mut tv, &cx)?;
    let vm_vals = match end {
        DriveEnd::Done(vals) => vals,
        DriveEnd::Stopped(s) => return Err(s),
        DriveEnd::Written { .. } => return Err("internal: run never writes a snapshot".into()),
    };
    let cost = tv.machine.cost;
    println!("semantics: {sem_vals:?}");
    println!("target:    {vm_vals:?}");
    println!(
        "cost:      {} instructions, {} loads, {} stores, {} branches",
        cost.instructions, cost.loads, cost.stores, cost.branches
    );
    println!(
        "snapshots: semantics {sem_count} checkpoint(s) ({sem_bytes} bytes), \
         target {vm_count} checkpoint(s) ({vm_bytes} bytes)"
    );
    Ok(())
}

fn compiler(file: &str) -> Result<Compiler, String> {
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    Compiler::new().source(&src).map_err(|e| e.to_string())
}

fn parse_strategy(s: &str) -> Result<frontend::Strategy, String> {
    Ok(match s {
        "runtime-unwind" => frontend::Strategy::RuntimeUnwind,
        "cutting" => frontend::Strategy::Cutting,
        "native-unwind" => frontend::Strategy::NativeUnwind,
        "cps" => frontend::Strategy::Cps,
        "sjlj-pentium" => frontend::Strategy::Sjlj(vm::arch::PENTIUM_LINUX),
        "sjlj-sparc" => frontend::Strategy::Sjlj(vm::arch::SPARC_SOLARIS),
        "sjlj-alpha" => frontend::Strategy::Sjlj(vm::arch::ALPHA_DIGITAL_UNIX),
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

fn usage() -> String {
    "usage: cmm run <file> <proc> [args..] [--results N] [-O0] [--snapshot-every F]\n\
     \x20      cmm dump-cfg <file> [proc]\n\
     \x20      cmm dump-ssa <file> [proc]\n\
     \x20      cmm dump-vm <file>\n\
     \x20      cmm m3 <file> <strategy> [args..]\n\
     \x20      cmm trace <file> <proc|strategy> [args..] [--sem] [--decoded|--fused] [-O0] [--out F]\n\
     \x20      cmm profile <file> <proc|strategy> [args..] [--sem] [--decoded|--fused] [-O0]\n\
     \x20      cmm snap <file> <proc> [args..] [--engine E] [--at K] [--fuel F]\n\
     \x20               [--results N] [-O0] [--out FILE]\n\
     \x20      cmm resume <snapshot> <file> [--engine E] [--fuel F]\n\
     \x20      cmm fuzz [--cases N] [--seed S] [--shrink] [--corpus DIR] [--jobs N]\n\
     \x20               [--chaos] [--fault-seed S] [--schedules K] [--snap] [--snap-slice F]\n\
     \x20      cmm fuzz --replay DIR\n\
     \x20      cmm batch <manifest> [-j N] [--out F] [--no-timing] [--cache-bytes B]\n\
     \x20                [--metrics-out F] [--postmortem-dir DIR] [--snapshot-every F]\n\
     \x20      cmm metrics <manifest> [-j N] [--json] [--no-timing] [--cache-bytes B]\n\
     \x20      cmm serve --listen ADDR [-j N] [--quantum F]\n\
     \x20      cmm serve --selftest [--tenants N] [--threads N] [--quanta N] [--seed S]\n\
     \x20                [-j N] [--quantum F] [--metrics-out F] [--events-out F]"
        .into()
}
