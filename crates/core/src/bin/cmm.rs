//! `cmm` — the command-line driver.
//!
//! ```text
//! cmm run <file.cmm> <proc> [args...] [--results N] [-O0]
//! cmm dump-cfg <file.cmm> [proc]      # Abstract C-- (Table 2 nodes)
//! cmm dump-ssa <file.cmm> [proc]      # Figure 6-style SSA numbering
//! cmm dump-vm <file.cmm>              # disassembled simulated target
//! cmm m3 <file.m3> <strategy> [args...]   # MiniM3 with a chosen strategy
//! cmm fuzz [--cases N] [--seed S] [--shrink] [--corpus DIR]
//! cmm fuzz --replay DIR               # re-run checked-in reproducers
//! ```
//!
//! Strategies: `runtime-unwind`, `cutting`, `native-unwind`, `cps`,
//! `sjlj-pentium`, `sjlj-sparc`, `sjlj-alpha`.

use cmm_core::sem::Value;
use cmm_core::{frontend, opt, vm, Compiler};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut args = args.into_iter();
    let cmd = args.next().ok_or_else(usage)?;
    match cmd.as_str() {
        "run" => {
            let file = args.next().ok_or_else(usage)?;
            let proc = args.next().ok_or_else(usage)?;
            let rest: Vec<String> = args.collect();
            let mut results = 1usize;
            let mut opts = opt::OptOptions::default();
            let mut call_args: Vec<u64> = Vec::new();
            let mut it = rest.into_iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--results" => {
                        results = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--results needs a number")?;
                    }
                    "-O0" => opts = opt::OptOptions::none(),
                    v => call_args.push(v.parse().map_err(|_| format!("bad argument `{v}`"))?),
                }
            }
            let c = compiler(&file)?.options(opts);
            let sem_args = call_args.iter().map(|&a| Value::b32(a as u32)).collect();
            let sem = c.interpret(&proc, sem_args).map_err(|e| e.to_string())?;
            let (vm_vals, cost) = c
                .execute(&proc, &call_args, results)
                .map_err(|e| e.to_string())?;
            println!("semantics: {sem:?}");
            println!("target:    {vm_vals:?}");
            println!(
                "cost:      {} instructions, {} loads, {} stores, {} branches",
                cost.instructions, cost.loads, cost.stores, cost.branches
            );
            Ok(())
        }
        "dump-cfg" => {
            let file = args.next().ok_or_else(usage)?;
            let only = args.next();
            let prog = compiler(&file)?.program().map_err(|e| e.to_string())?;
            for (name, g) in &prog.procs {
                if only.as_deref().map(|o| name == o).unwrap_or(true) {
                    print!("{}", cmm_core::cfg::display::graph_to_string(g));
                }
            }
            Ok(())
        }
        "dump-ssa" => {
            let file = args.next().ok_or_else(usage)?;
            let only = args.next();
            let prog = compiler(&file)?.program().map_err(|e| e.to_string())?;
            for (name, g) in &prog.procs {
                if name == cmm_core::cfg::YIELD {
                    continue;
                }
                if only.as_deref().map(|o| name == o).unwrap_or(true) {
                    let ssa = opt::Ssa::build(g);
                    print!("{}", opt::ssa::ssa_to_string(g, &ssa));
                }
            }
            Ok(())
        }
        "dump-vm" => {
            let file = args.next().ok_or_else(usage)?;
            let vp = compiler(&file)?.vm_program().map_err(|e| e.to_string())?;
            print!("{}", vm::disasm::disassemble(&vp));
            Ok(())
        }
        "m3" => {
            let file = args.next().ok_or_else(usage)?;
            let strat = args.next().ok_or_else(usage)?;
            let strategy = parse_strategy(&strat)?;
            let call_args: Vec<u32> = args
                .map(|v| v.parse().map_err(|_| format!("bad argument `{v}`")))
                .collect::<Result<_, _>>()?;
            let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let module = frontend::compile_minim3(&src, strategy).map_err(|e| e.to_string())?;
            let sem =
                frontend::run_sem(&module, strategy, &call_args).map_err(|e| e.to_string())?;
            let (vm_val, cost) =
                frontend::run_vm(&module, strategy, &call_args).map_err(|e| e.to_string())?;
            assert_eq!(sem, vm_val, "substrates disagree — please report a bug");
            println!("result:    {vm_val}");
            println!(
                "cost:      {} instructions (+{} run-time system), {} loads, {} stores",
                cost.instructions, cost.runtime_instructions, cost.loads, cost.stores
            );
            Ok(())
        }
        "fuzz" => {
            let mut cfg = cmm_difftest::FuzzConfig {
                shrink: false,
                ..Default::default()
            };
            let mut replay_dir: Option<String> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--replay" => {
                        replay_dir = Some(args.next().ok_or("--replay needs a directory")?);
                    }
                    "--cases" => {
                        cfg.cases = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--cases needs a number")?;
                    }
                    "--seed" => {
                        cfg.seed = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--seed needs a number")?;
                    }
                    "--shrink" => cfg.shrink = true,
                    "--corpus" => {
                        cfg.corpus_dir =
                            Some(args.next().ok_or("--corpus needs a directory")?.into());
                    }
                    other => return Err(format!("unknown fuzz option `{other}`")),
                }
            }
            if let Some(dir) = replay_dir {
                let report = cmm_difftest::replay_corpus(dir.as_ref(), &cfg.limits)
                    .map_err(|e| format!("{dir}: {e}"))?;
                for f in &report.failures {
                    eprintln!("reproducer {} diverges: {}", f.path.display(), f.failure);
                }
                println!(
                    "fuzz replay: {} reproducer(s) from {dir}: {} failure(s)",
                    report.files_run,
                    report.failures.len()
                );
                return if report.ok() {
                    Ok(())
                } else {
                    Err("corpus replay found divergence".into())
                };
            }
            let report = cmm_difftest::run_fuzz(&cfg);
            for f in &report.failures {
                eprintln!("case {} (seed {}): {}", f.index, cfg.seed, f.failure);
                let shown = f.shrunk.as_ref().unwrap_or(&f.case);
                eprintln!(
                    "--- {} program ---",
                    if f.shrunk.is_some() {
                        "shrunk"
                    } else {
                        "failing"
                    }
                );
                eprint!("{}", shown.render());
                if let Some(p) = &f.corpus_path {
                    eprintln!("reproducer written to {}", p.display());
                }
            }
            println!(
                "fuzz: {} cases, seed {}: {} failure(s)",
                report.cases_run,
                cfg.seed,
                report.failures.len()
            );
            if report.ok() {
                Ok(())
            } else {
                Err("differential fuzzing found divergence".into())
            }
        }
        _ => Err(usage()),
    }
}

fn compiler(file: &str) -> Result<Compiler, String> {
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    Compiler::new().source(&src).map_err(|e| e.to_string())
}

fn parse_strategy(s: &str) -> Result<frontend::Strategy, String> {
    Ok(match s {
        "runtime-unwind" => frontend::Strategy::RuntimeUnwind,
        "cutting" => frontend::Strategy::Cutting,
        "native-unwind" => frontend::Strategy::NativeUnwind,
        "cps" => frontend::Strategy::Cps,
        "sjlj-pentium" => frontend::Strategy::Sjlj(vm::arch::PENTIUM_LINUX),
        "sjlj-sparc" => frontend::Strategy::Sjlj(vm::arch::SPARC_SOLARIS),
        "sjlj-alpha" => frontend::Strategy::Sjlj(vm::arch::ALPHA_DIGITAL_UNIX),
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

fn usage() -> String {
    "usage: cmm run <file> <proc> [args..] [--results N] [-O0]\n\
     \x20      cmm dump-cfg <file> [proc]\n\
     \x20      cmm dump-ssa <file> [proc]\n\
     \x20      cmm dump-vm <file>\n\
     \x20      cmm m3 <file> <strategy> [args..]\n\
     \x20      cmm fuzz [--cases N] [--seed S] [--shrink] [--corpus DIR]\n\
     \x20      cmm fuzz --replay DIR"
        .into()
}
