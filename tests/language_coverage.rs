//! Breadth tests for the C-- language surface: floats, every width,
//! every statement form, parser diagnostics, and pretty-printer
//! round-trips of the figure sources.

use cmm_core::sem::{Machine, Status, Value};
use cmm_core::Compiler;
use cmm_ir::pretty;
use cmm_parse::parse_module;

fn interp(src: &str, proc: &str, args: Vec<Value>) -> Vec<Value> {
    Compiler::new()
        .source(src)
        .unwrap()
        .interpret(proc, args)
        .unwrap()
}

#[test]
fn float_arithmetic() {
    let src = r#"
        f() {
            float64 a, b, c;
            a = 1.5;
            b = 2.25;
            c = %fadd(a, %fmul(b, 2.0));
            if %flt(c, 7.0) { return (%feq(c, 6.0)); }
            return (0);
        }
    "#;
    assert_eq!(interp(src, "f", vec![]), vec![Value::b32(1)]);
}

#[test]
fn float32_round_trip_through_memory() {
    let src = r#"
        data buf { space 8; }
        f() {
            float32 a;
            a = 0.5::float32;
            float32[buf] = %fmul(a, a);
            return (%feq(float32[buf], 0.25::float32));
        }
    "#;
    assert_eq!(interp(src, "f", vec![]), vec![Value::b32(1)]);
}

#[test]
fn every_integer_width() {
    let src = r#"
        data buf { space 16; }
        f(bits32 x) {
            bits8 a; bits16 b; bits64 c;
            a = %lo8(x);
            b = %lo16(x);
            c = %zx64(x);
            bits8[buf] = a;
            bits16[buf + 2] = b;
            bits64[buf + 8] = %add(c, c);
            return (%zx32(bits8[buf]), %zx32(bits16[buf + 2]), %lo32(bits64[buf + 8]));
        }
    "#;
    assert_eq!(
        interp(src, "f", vec![Value::b32(0x1234_5678)]),
        vec![
            Value::b32(0x78),
            Value::b32(0x5678),
            Value::b32(0x2468_ACF0)
        ]
    );
}

#[test]
fn signed_versus_unsigned_comparisons() {
    let src = r#"
        f(bits32 a, bits32 b) {
            return (a < b, %lts(a, b), a > b, %gts(a, b));
        }
    "#;
    // a = -1 (0xffffffff), b = 1: unsigned a > b, signed a < b.
    assert_eq!(
        interp(src, "f", vec![Value::b32(0xffff_ffff), Value::b32(1)]),
        vec![Value::b32(0), Value::b32(1), Value::b32(1), Value::b32(0)]
    );
}

#[test]
fn parser_diagnostics_are_positioned() {
    for (src, fragment) in [
        ("f() { return }", "return"),
        ("f() { x = ; }", "expression"),
        ("f(bits32) { }", "parameter"),
        ("f() { goto; }", "label"),
        ("f() { g(x) also flies to k; }", "also"),
        ("f() { cut k(); }", "`to`"),
        ("data d { bogus 3; }", "data item"),
    ] {
        let err = parse_module(src).unwrap_err();
        assert!(
            err.message.contains(fragment),
            "source {src:?}: message {:?} should mention {fragment:?}",
            err.message
        );
        assert!(err.pos.line >= 1 && err.pos.col >= 1);
    }
}

#[test]
fn figure_sources_round_trip_through_the_pretty_printer() {
    let figures = [
        include_str_fig1(),
        r#"
        register bits32 exn_top;
        data stackspace { space 64; }
        f(bits32 x) {
            bits32 y, t;
            exn_top = stackspace;
            bits32[exn_top] = k;
            y = g(x) also cuts to k also unwinds to k also aborts also descriptor d;
            return <0/0> (y);
            continuation k(t):
            cut to t(y) also cuts to k;
        }
        g(bits32 a) { yield(1, a) also aborts; jump f(a); }
        data d { bits32 1; sym f; string "desc"; }
        "#
        .to_string(),
    ];
    for src in figures {
        let m1 = parse_module(&src).unwrap();
        let printed = pretty::module_to_string(&m1);
        let m2 = parse_module(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(m1, m2, "round trip changed:\n{printed}");
        // And printing again is a fixpoint.
        assert_eq!(printed, pretty::module_to_string(&m2));
    }
}

fn include_str_fig1() -> String {
    r#"
    export sp1;
    sp1(bits32 n) {
        bits32 s, p;
        if n == 1 { return (1, 1); }
        else { s, p = sp1(n - 1); return (s + n, p * n); }
    }
    "#
    .to_string()
}

#[test]
fn hex_literals_and_width_suffixes() {
    let src = "f() { bits64 c; c = 0xff::bits64; return (%lo32(c << 8)); }";
    assert_eq!(interp(src, "f", vec![]), vec![Value::b32(0xff00)]);
}

#[test]
fn comments_and_whitespace_are_ignored() {
    let src = "/* header */ f( /* inline */ bits32 x) { // line\n return (x); }";
    assert_eq!(interp(src, "f", vec![Value::b32(5)]), vec![Value::b32(5)]);
}

#[test]
fn imports_are_declarative_only() {
    // Imported names may be referenced (they resolve for validation)
    // even though calling them would fail.
    let src = "import external_thing; f() { return (1); }";
    assert_eq!(interp(src, "f", vec![]), vec![Value::b32(1)]);
}

#[test]
fn shift_out_of_range_goes_wrong() {
    let prog =
        cmm_cfg::build_program(&parse_module("f(bits32 a) { return (1 << a); }").unwrap()).unwrap();
    let mut m = Machine::new(&prog);
    m.start("f", vec![Value::b32(40)]).unwrap();
    assert!(matches!(m.run(1000), Status::Wrong(_)));
}

#[test]
fn checked_shift_yields_instead() {
    let src = "f(bits32 a) { bits32 r; r = %%shl(1, a) also aborts; return (r); }";
    let prog = cmm_cfg::build_program(&parse_module(src).unwrap()).unwrap();
    let mut m = Machine::new(&prog);
    m.start("f", vec![Value::b32(40)]).unwrap();
    assert_eq!(m.run(10_000), Status::Suspended);
    // In range: fine.
    let mut m = Machine::new(&prog);
    m.start("f", vec![Value::b32(4)]).unwrap();
    assert_eq!(m.run(10_000), Status::Terminated(vec![Value::b32(16)]));
}
