//! The headline snapshot-equivalence wall: a run to completion must
//! deeply equal a run that is snapshotted at **every** resumable
//! boundary, serialized with `cmm-snap`, and resumed — for every one of
//! the five engines, with cross-engine restores inside each family,
//! with and without an injected fault schedule.
//!
//! Most of the machinery lives in `cmm_difftest::run_source_snap` (the
//! oracle behind `cmm fuzz --snap`): its sem run alternates the
//! reference machine with the pre-resolved machine at each boundary,
//! and its VM run rotates stepped → decoded → fused, so one oracle call
//! exercises all five engines and the cross-tier resume path. The tests
//! here aim that oracle at the paper workloads and a generated
//! population, and additionally pin each engine *individually* with a
//! hand-rolled snapshot/resume cycle, so a divergence report names the
//! engine rather than the family.

use cmm_chaos::{schedule_seed, FaultPlan};
use cmm_difftest::oracle::{observe_sem_chaos, Limits, CHAOS_HORIZON};
use cmm_difftest::{generate, run_source_snap, Rng, SNAP_SLICE};
use cmm_sem::{Machine, ResolvedMachine, ResolvedProgram, Status, Value};
use cmm_snap::{source_digest, EngineId, MachineState, SnapMeta, Snapshot};
use cmm_vm::{VmMachine, VmStatus};

/// The Figures 3/4 and §4.2 workloads, reshaped to the oracle's fixed
/// `f(a, b)` entry convention: `a` drives the loop, `b` seeds the
/// accumulator so both arguments are live.
fn paper_workloads() -> Vec<(&'static str, String)> {
    let fig34 = |table: bool| {
        let call = if table {
            "r = g(n) also returns to kexn;"
        } else {
            "r = g(n);"
        };
        let ret = if table {
            "return <1/1> (x);"
        } else {
            "return (x);"
        };
        let cont = if table {
            "continuation kexn(r):\n            return (0 - 1);"
        } else {
            ""
        };
        format!(
            r#"
            f(bits32 n, bits32 seed) {{
                bits32 acc, r;
                acc = seed;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    {call}
                    acc = acc + r;
                    n = n - 1;
                    goto loop;
                }}
                {cont}
            }}
            g(bits32 x) {{ {ret} }}
            "#
        )
    };
    let sec42 = |cuts: bool| {
        let ann = if cuts {
            "also cuts to k"
        } else {
            "also unwinds to k"
        };
        format!(
            r#"
            f(bits32 n, bits32 seed) {{
                bits32 acc, x, y, w, r;
                acc = seed;
              loop:
                if n == 0 {{ return (acc); }} else {{
                    y = n * 3;
                    w = n + 7;
                    r = g(n, k) {ann};
                    acc = acc + r + y + w;
                    n = n - 1;
                    goto loop;
                }}
                continuation k(r):
                return (r + y + w);
            }}
            g(bits32 a, bits32 kk) {{
                return (a);
            }}
            "#
        )
    };
    vec![
        ("fig34_plain", fig34(false)),
        ("fig34_table", fig34(true)),
        ("sec42_cuts", sec42(true)),
        ("sec42_unwinds", sec42(false)),
    ]
}

/// Every paper workload survives snapshot-at-every-boundary at several
/// slice densities, including a slice of 1 (a boundary at literally
/// every transition).
#[test]
fn paper_workloads_agree_at_every_boundary() {
    let limits = Limits::default();
    for (name, src) in paper_workloads() {
        for slice in [1, 7, SNAP_SLICE] {
            let stats = run_source_snap(&src, (20, 3), &limits, slice, None)
                .unwrap_or_else(|f| panic!("{name} diverged at slice {slice}: {f}"));
            assert!(
                stats.snapshots > 0,
                "{name}: slice {slice} never crossed a boundary — the check is vacuous"
            );
            assert!(stats.bytes > 0, "{name}: snapshots recorded but no bytes?");
        }
    }
}

/// A workload whose dispatch exchange is long enough for seeded fault
/// schedules to actually fire: each of the three iterations yields, and
/// the servicing policy walks several Table 1 operations per
/// suspension.
const YIELDING_SRC: &str = r#"
    f(bits32 a, bits32 b) {
        bits32 r, i;
        r = a + b;
        i = 3;
      loop:
        if i == 0 { return (r); } else {
            r = mid(r + i) also unwinds to k;
            i = i - 1;
            goto loop;
        }
        continuation k(r):
        return (r + 1);
    }
    mid(bits32 x) {
        bits32 r;
        r = g(x) also unwinds to ku;
        return (r);
        continuation ku(r):
        return (r + 100);
    }
    g(bits32 x) { yield(x | 1) also aborts; return (x); }
"#;

/// Workloads under seeded fault schedules: the fault-plan state rides
/// inside the snapshot, so an interrupted schedule must resume
/// mid-flight and the sliced run's injected-fault log must match the
/// straight run's exactly. The paper workloads never yield (no dispatch
/// exchange, nothing to inject into), so a yielding workload joins the
/// sweep and must actually fire at least one fault.
#[test]
fn paper_workloads_agree_under_chaos() {
    let limits = Limits::default();
    let mut workloads = paper_workloads();
    workloads.push(("yielding", YIELDING_SRC.to_string()));
    let mut fired = false;
    for (name, src) in &workloads {
        for seed in 0..3u64 {
            let plan = FaultPlan::seeded(schedule_seed(seed, 0), CHAOS_HORIZON);
            run_source_snap(src, (20, 3), &limits, SNAP_SLICE, Some(&plan))
                .unwrap_or_else(|f| panic!("{name} diverged under chaos seed {seed}: {f}"));
            let m = cmm_parse::parse_module(src).unwrap();
            let p = cmm_cfg::build_program(&m).unwrap();
            let (_, _, log) = observe_sem_chaos(&p, (20, 3), &limits, &plan);
            fired |= !log.is_empty();
        }
    }
    assert!(
        fired,
        "no schedule injected a fault — the chaos leg is vacuous"
    );
}

/// A generated population through the full oracle — the same sweep
/// `cmm fuzz --snap` runs, kept here so the wall fails even if the fuzz
/// smoke is skipped.
#[test]
fn generated_population_agrees() {
    let limits = Limits::default();
    let mut snapped = 0u64;
    for seed in 100..130 {
        let case = generate(&mut Rng::new(seed));
        match run_source_snap(&case.render(), case.args, &limits, SNAP_SLICE, None) {
            Ok(stats) => snapped += stats.snapshots,
            Err(f) => panic!("seed {seed} failed: {f}\n{}", case.render()),
        }
    }
    assert!(snapped > 0, "no generated case ever crossed a boundary");
}

// ----- per-engine pinning -----

/// A source whose straight run needs a known moderate amount of fuel,
/// for the hand-rolled per-engine cycles below.
const LOOP_SRC: &str = r#"
    f(bits32 n, bits32 seed) {
        bits32 acc;
        acc = seed;
      loop:
        if n == 0 { return (acc); }
        else { acc = acc + n; n = n - 1; goto loop; }
    }
"#;

const LOOP_ARGS: (u32, u32) = (100, 7);
const LOOP_SUM: u64 = 100 * 101 / 2 + 7;

fn envelope(engine: EngineId, fuel_remaining: u64, state: MachineState) -> Snapshot {
    Snapshot {
        engine,
        digest: source_digest(LOOP_SRC, false),
        meta: SnapMeta {
            entry: "f".into(),
            args: vec![u64::from(LOOP_ARGS.0), u64::from(LOOP_ARGS.1)],
            fuel_remaining,
            yields_done: 0,
            opt: false,
        },
        governor: None,
        chaos: None,
        state,
    }
}

/// Encode → decode → byte-identity check, as every consumer must.
fn wire_cycle(snap: &Snapshot) -> Snapshot {
    let bytes = snap.encode();
    let decoded = Snapshot::decode(&bytes).expect("decode own encoding");
    assert_eq!(&decoded, snap, "decoded snapshot differs from captured");
    assert_eq!(decoded.encode(), bytes, "re-encode is not byte-identical");
    decoded
}

/// Both sem engines individually: interrupt mid-loop, serialize, resume
/// in a fresh machine of the same engine, and land on the straight
/// run's results and exact step count.
#[test]
fn sem_engines_snapshot_and_resume_individually() {
    let m = cmm_parse::parse_module(LOOP_SRC).unwrap();
    let p = cmm_cfg::build_program(&m).unwrap();
    let rp = ResolvedProgram::new(&p);
    let args = vec![Value::b32(LOOP_ARGS.0), Value::b32(LOOP_ARGS.1)];

    // Straight reference run: results and total steps to match.
    let mut straight = Machine::new(&p);
    straight.start("f", args.clone()).unwrap();
    let Status::Terminated(want) = straight.run(1 << 20) else {
        panic!("straight run did not terminate");
    };
    let want_steps = straight.steps;

    for engine in [EngineId::Sem, EngineId::SemResolved] {
        // Run CUT transitions, capture, serialize, resume fresh.
        const CUT: u64 = 57;
        let (state, steps_at_cut) = match engine {
            EngineId::Sem => {
                let mut m = Machine::new(&p);
                m.start("f", args.clone()).unwrap();
                assert!(matches!(m.run(CUT), Status::OutOfFuel));
                (m.capture().unwrap(), m.steps)
            }
            _ => {
                let mut m = ResolvedMachine::new(&rp);
                m.start("f", args.clone()).unwrap();
                assert!(matches!(m.run(CUT), Status::OutOfFuel));
                (m.capture().unwrap(), m.steps)
            }
        };
        assert_eq!(steps_at_cut, CUT, "{engine:?}: fuel accounting drifted");
        let decoded = wire_cycle(&envelope(engine, 0, MachineState::Sem(state)));
        let MachineState::Sem(st) = &decoded.state else {
            panic!("sem snapshot decoded to a VM state");
        };
        let (got, steps) = match engine {
            EngineId::Sem => {
                let mut m = Machine::new(&p);
                m.restore(st).unwrap();
                let Status::Terminated(v) = m.run(1 << 20) else {
                    panic!("{engine:?}: resumed run did not terminate");
                };
                (v, m.steps)
            }
            _ => {
                let mut m = ResolvedMachine::new(&rp);
                m.restore(st).unwrap();
                let Status::Terminated(v) = m.run(1 << 20) else {
                    panic!("{engine:?}: resumed run did not terminate");
                };
                (v, m.steps)
            }
        };
        assert_eq!(got, want, "{engine:?}: resumed results differ");
        assert_eq!(steps, want_steps, "{engine:?}: resumed step count differs");
        assert_eq!(got, vec![Value::b32(LOOP_SUM as u32)]);
    }
}

/// All three VM tiers individually, and every cross-tier pair: a
/// snapshot captured on tier A resumes on tier B with bit-identical
/// results and cost vector (the tiers share `VmMachine` state, so the
/// blob is tier-portable by construction — this pins that it stays so).
#[test]
fn vm_tiers_snapshot_and_resume_across_every_pair() {
    let m = cmm_parse::parse_module(LOOP_SRC).unwrap();
    let p = cmm_cfg::build_program(&m).unwrap();
    let vp = cmm_vm::compile(&p).unwrap();
    let fresh = |e: EngineId| -> VmMachine<'_> {
        match e {
            EngineId::Vm => VmMachine::new(&vp),
            EngineId::VmDecoded => VmMachine::new_decoded(&vp),
            EngineId::VmFused => VmMachine::new_fused(&vp),
            _ => unreachable!("sem engine in VM tier list"),
        }
    };
    let tiers = [EngineId::Vm, EngineId::VmDecoded, EngineId::VmFused];
    let args = [u64::from(LOOP_ARGS.0), u64::from(LOOP_ARGS.1)];

    // Straight run on the stepped tier: the cost vector every resumed
    // run must land on exactly.
    let mut straight = fresh(EngineId::Vm);
    straight.start("f", &args, 1);
    let VmStatus::Halted(want) = straight.run(1 << 24) else {
        panic!("straight run did not halt");
    };
    let want_cost = straight.cost;
    assert_eq!(want, vec![LOOP_SUM]);

    for from in tiers {
        const CUT: u64 = 93;
        let mut a = fresh(from);
        a.start("f", &args, 1);
        assert!(matches!(a.run(CUT), VmStatus::OutOfFuel));
        assert_eq!(
            a.cost.instructions, CUT,
            "{from:?}: fuel accounting drifted"
        );
        let state = a.capture().unwrap();
        let decoded = wire_cycle(&envelope(from, 0, MachineState::Vm(state)));
        let MachineState::Vm(st) = &decoded.state else {
            panic!("VM snapshot decoded to a sem state");
        };
        for to in tiers {
            let mut b = fresh(to);
            b.restore(st).unwrap();
            let VmStatus::Halted(got) = b.run(1 << 24) else {
                panic!("{from:?}->{to:?}: resumed run did not halt");
            };
            assert_eq!(got, want, "{from:?}->{to:?}: resumed results differ");
            assert_eq!(b.cost, want_cost, "{from:?}->{to:?}: resumed cost differs");
        }
    }
}

/// The user-facing resume guard: a snapshot of one program must refuse
/// to resume over a different program (or the same program at a
/// different optimization level), structurally and before any state is
/// touched.
#[test]
fn resume_refuses_a_different_program() {
    let snap = envelope(
        EngineId::Sem,
        0,
        MachineState::Sem({
            let m = cmm_parse::parse_module(LOOP_SRC).unwrap();
            let p = cmm_cfg::build_program(&m).unwrap();
            let mut m = Machine::new(&p);
            m.start("f", vec![Value::b32(3), Value::b32(0)]).unwrap();
            assert!(matches!(m.run(2), Status::OutOfFuel));
            m.capture().unwrap()
        }),
    );
    let decoded = wire_cycle(&snap);
    decoded
        .check_digest(source_digest(LOOP_SRC, false))
        .expect("same source must pass the digest check");
    let err = decoded
        .check_digest(source_digest("f() { return (1); }", false))
        .expect_err("different source must fail the digest check");
    assert!(
        err.to_string().contains("different program"),
        "digest error should say what went wrong, got: {err}"
    );
    let err = decoded
        .check_digest(source_digest(LOOP_SRC, true))
        .expect_err("different opt level must fail the digest check");
    assert!(err.to_string().contains("different program"));
}

/// `EngineId::ALL` is the ground truth the CLI and pool parse against;
/// the wall above must actually have covered every member.
#[test]
fn the_wall_covers_every_engine() {
    let covered = [
        EngineId::Sem,
        EngineId::SemResolved,
        EngineId::Vm,
        EngineId::VmDecoded,
        EngineId::VmFused,
    ];
    assert_eq!(
        covered,
        EngineId::ALL,
        "a sixth engine appeared — extend the wall"
    );
    for e in EngineId::ALL {
        assert_eq!(EngineId::parse(e.name()), Ok(e), "name/parse round-trip");
    }
}
