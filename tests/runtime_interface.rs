//! Integration tests for the Table 1 run-time interface across both of
//! its implementations (`cmm-rt` over the abstract machine, and the
//! VM-level tables in `cmm-vm`): the same dispatch logic must work over
//! either, because "different front ends may interoperate with the same
//! C-- run-time system".

use cmm_core::rt::Thread;
use cmm_core::sem::{Status, Value};
use cmm_core::vm::{compile, VmStatus, VmThread};

const NEST: &str = r#"
    f(bits32 x) {
        bits32 r;
        r = mid(x) also unwinds to ksmall, kbig also descriptor d_f;
        return (r);
        continuation ksmall(r):
        return (r + 1);
        continuation kbig(r):
        return (r + 2);
    }
    mid(bits32 x) {
        bits32 r;
        r = g(x) also aborts also descriptor d_mid;
        return (r);
    }
    g(bits32 x) {
        yield(42, x) also aborts;
        return (0);
    }
    data d_f   { bits32 2; sym ksel; }
    data d_mid { bits32 1; }
    data ksel  { string "which continuation to use"; }
"#;

fn program() -> cmm_cfg::Program {
    cmm_cfg::build_program(&cmm_parse::parse_module(NEST).unwrap()).unwrap()
}

/// A toy "front-end run-time system": picks an unwind continuation
/// based on the yielded value.
#[test]
fn full_walk_and_dispatch_on_the_abstract_machine() {
    let prog = program();
    for (x, expected) in [(3u32, 4u32), (100, 102)] {
        let mut t = Thread::new(&prog);
        t.start("f", vec![Value::b32(x)]).unwrap();
        assert_eq!(t.run(100_000), Status::Suspended);
        assert_eq!(t.yield_code(), Some(42));
        let v = t.yield_args()[1].bits().unwrap() as u32;

        let mut a = t.first_activation().unwrap();
        // Walk: g -> mid -> f, checking descriptors along the way.
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "g");
        assert!(t.next_activation(&mut a));
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "mid");
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.read_u32(d), 1);
        assert!(t.next_activation(&mut a));
        assert_eq!(t.frame(&a).unwrap().proc.as_str(), "f");
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.read_u32(d), 2);
        assert!(!t.next_activation(&mut a));

        t.set_activation(&a).unwrap();
        t.set_unwind_cont(if v < 10 { 0 } else { 1 }).unwrap();
        *t.find_cont_param(0).unwrap() = Value::b32(v);
        t.resume().unwrap();
        assert_eq!(
            t.run(100_000),
            Status::Terminated(vec![Value::b32(expected)])
        );
    }
}

#[test]
fn full_walk_and_dispatch_on_the_vm() {
    let prog = program();
    let vp = compile(&prog).unwrap();
    for (x, expected) in [(3u64, 4u64), (100, 102)] {
        let mut t = VmThread::new(&vp);
        t.start("f", &[x], 1);
        assert_eq!(t.run(1_000_000), VmStatus::Suspended);
        let args = t.machine.yield_args(2);
        assert_eq!(args[0], 42);
        let v = args[1];

        let mut a = t.first_activation().unwrap();
        assert_eq!(t.get_descriptor(&a, 0), None); // g has no descriptor
        assert!(t.next_activation(&mut a)); // mid
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.machine.mem.read32(d), 1);
        assert!(t.next_activation(&mut a)); // f
        let d = t.get_descriptor(&a, 0).unwrap();
        assert_eq!(t.machine.mem.read32(d), 2);
        assert!(!t.next_activation(&mut a));

        t.set_activation(&a).unwrap();
        t.set_unwind_cont(if v < 10 { 0 } else { 1 }).unwrap();
        *t.find_cont_param(0).unwrap() = v;
        t.resume().unwrap();
        assert_eq!(t.run(1_000_000), VmStatus::Halted(vec![expected]));
    }
}

/// SetCutToCont: the run-time system cuts to a continuation value it
/// received via the yield.
#[test]
fn set_cut_to_cont_agrees_across_implementations() {
    let src = r#"
        f() {
            bits32 r;
            r = mid(k) also cuts to k;
            return (0);
            continuation k(r):
            return (r * 3);
        }
        mid(bits32 kk) {
            bits32 r;
            r = g(kk) also aborts;
            return (r);
        }
        g(bits32 kk) {
            yield(1, kk) also aborts;
            return (0);
        }
    "#;
    let prog = cmm_cfg::build_program(&cmm_parse::parse_module(src).unwrap()).unwrap();

    // Abstract machine.
    let mut t = Thread::new(&prog);
    t.start("f", vec![]).unwrap();
    assert_eq!(t.run(100_000), Status::Suspended);
    let k = t.yield_args()[1].clone();
    t.set_cut_to_cont(k).unwrap();
    *t.find_cont_param(0).unwrap() = Value::b32(14);
    t.resume().unwrap();
    assert_eq!(t.run(100_000), Status::Terminated(vec![Value::b32(42)]));

    // Simulated target.
    let vp = compile(&prog).unwrap();
    let mut t = VmThread::new(&vp);
    t.start("f", &[], 1);
    assert_eq!(t.run(1_000_000), VmStatus::Suspended);
    let k = t.machine.yield_args(2)[1] as u32;
    t.set_cut_to_cont(k).unwrap();
    *t.find_cont_param(0).unwrap() = 14;
    t.resume().unwrap();
    assert_eq!(t.run(1_000_000), VmStatus::Halted(vec![42]));
}

/// The protocol is enforced: discarding a non-abortable activation is
/// rejected by both implementations.
#[test]
fn abort_annotations_are_enforced() {
    let src = r#"
        f() { bits32 r; r = g() also unwinds to k; return (0);
              continuation k(r): return (r); }
        g() { yield(1); return (0); }   /* no also aborts */
    "#;
    let prog = cmm_cfg::build_program(&cmm_parse::parse_module(src).unwrap()).unwrap();

    let mut t = Thread::new(&prog);
    t.start("f", vec![]).unwrap();
    t.run(100_000);
    let mut a = t.first_activation().unwrap();
    assert!(t.next_activation(&mut a));
    t.set_activation(&a).unwrap();
    t.set_unwind_cont(0).unwrap();
    *t.find_cont_param(0).unwrap() = Value::b32(1);
    assert!(t.resume().is_err(), "discarding g's frame must be rejected");

    let vp = compile(&prog).unwrap();
    let mut t = VmThread::new(&vp);
    t.start("f", &[], 1);
    t.run(1_000_000);
    let mut a = t.first_activation().unwrap();
    assert!(t.next_activation(&mut a));
    assert!(
        t.set_activation(&a).is_err(),
        "discarding g's frame must be rejected"
    );
}
