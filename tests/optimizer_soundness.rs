//! Property tests: the optimizer preserves the operational semantics on
//! randomly generated programs — including programs with exceptional
//! control flow (cut-to continuations) — and the simulated target agrees
//! with the abstract machine on the optimized code.

use cmm_cfg::{build_program, Program};
use cmm_ir::{pretty, Module};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_sem::{Machine, Status, Value};
use cmm_vm::{compile, VmMachine, VmStatus};
use proptest::prelude::*;

/// A random pure expression over the variables a, b, c, d (no division,
/// so generated programs never go wrong).
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|v| v.to_string()),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(str::to_string),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (inner.clone(), prop_oneof![Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^")], inner)
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
    .boxed()
}

/// A random statement block body (straight-line, ifs, bounded loops,
/// memory traffic, helper calls).
fn stmts(depth: u32) -> BoxedStrategy<String> {
    let assign = (prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")], expr(2))
        .prop_map(|(v, e)| format!("{v} = {e};"));
    let store = expr(1).prop_map(|e| format!("bits32[cells + (({e}) % 4) * 4] = {e};"));
    let load = (prop_oneof![Just("a"), Just("b")], expr(1))
        .prop_map(|(v, e)| format!("{v} = bits32[cells + (({e}) % 4) * 4];"));
    let call = (prop_oneof![Just("c"), Just("d")], expr(1))
        .prop_map(|(v, e)| format!("{v} = h({e});"));
    let leaf = prop_oneof![4 => assign, 1 => store, 1 => load, 1 => call];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.join("\n"));
        prop_oneof![
            3 => prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.join("\n")),
            2 => (expr(1), block.clone(), block.clone())
                .prop_map(|(c, t, e)| format!("if {c} {{ {t} }} else {{ {e} }}")),
        ]
    })
    .boxed()
}

fn harness(body: &str) -> String {
    format!(
        r#"
        data cells {{ bits32 0, 0, 0, 0; }}
        h(bits32 x) {{ return (x * 2 + 1); }}
        f(bits32 a, bits32 b) {{
            bits32 c, d, i;
            c = 0; d = 0; i = 3;
          loop:
            if i == 0 {{ return (a + b + c + d); }} else {{
                {body}
                i = i - 1;
                goto loop;
            }}
        }}
        "#
    )
}

fn run_sem(prog: &Program, args: (u32, u32)) -> Status {
    let mut m = Machine::new(prog);
    m.start("f", vec![Value::b32(args.0), Value::b32(args.1)]).unwrap();
    m.run(10_000_000)
}

fn run_vm_prog(prog: &Program, args: (u32, u32)) -> Vec<u64> {
    let vp = compile(prog).expect("codegen");
    let mut m = VmMachine::new(&vp);
    m.start("f", &[u64::from(args.0), u64::from(args.1)], 1);
    match m.run(50_000_000) {
        VmStatus::Halted(vals) => vals,
        other => panic!("vm did not halt: {other:?}"),
    }
}

fn build(src: &str) -> Program {
    build_program(&parse_module(src).unwrap_or_else(|e| panic!("{e}\n{src}"))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimization preserves the abstract-machine semantics, and the
    /// optimized code produces the same results on the VM.
    #[test]
    fn optimizer_preserves_semantics(body in stmts(3), a in 0u32..100, b in 0u32..100) {
        let src = harness(&body);
        let prog = build(&src);
        let mut opt = prog.clone();
        optimize_program(&mut opt, &OptOptions::default());

        let before = run_sem(&prog, (a, b));
        let after = run_sem(&opt, (a, b));
        prop_assert_eq!(&before, &after, "optimization changed behaviour\n{}", src);

        if let Status::Terminated(vals) = before {
            let bits: Vec<u64> = vals.iter().filter_map(Value::bits).collect();
            prop_assert_eq!(bits.clone(), run_vm_prog(&opt, (a, b)), "vm disagrees (optimized)");
            prop_assert_eq!(bits, run_vm_prog(&prog, (a, b)), "vm disagrees (unoptimized)");
        }
    }

    /// Pretty-printing and re-parsing a module is the identity (up to
    /// formatting): parse ∘ pretty ∘ parse = parse.
    #[test]
    fn pretty_parse_round_trip(body in stmts(3)) {
        let src = harness(&body);
        let m1: Module = parse_module(&src).unwrap();
        let printed = pretty::module_to_string(&m1);
        let m2 = parse_module(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&m1, &m2, "round trip changed the module:\n{}", printed);
    }

    /// SSA invariants hold on random graphs: every use is dominated by
    /// its definition.
    #[test]
    fn ssa_invariants(body in stmts(3)) {
        let src = harness(&body);
        let prog = build(&src);
        let g = prog.proc("f").unwrap();
        let ssa = cmm_opt::Ssa::build(g);
        prop_assert!(ssa.verify(g).is_empty());
    }
}

/// Exception-heavy templates, randomized over the raise condition: the
/// optimizer must preserve the cut behaviour.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimizer_preserves_cut_semantics(threshold in 0u32..20, x in 0u32..20) {
        let src = format!(
            r#"
            f(bits32 x) {{
                bits32 y, w, r, d;
                y = x * 3;
                w = x + 5;
                r = g(x, k) also cuts to k also aborts;
                return (r + y);
                continuation k(d):
                return (d + y + w);
            }}
            g(bits32 x, bits32 kk) {{
                if x > {threshold} {{ cut to kk(100); }}
                return (x);
            }}
            "#
        );
        let prog = build(&src);
        let mut opt = prog.clone();
        optimize_program(&mut opt, &OptOptions::default());
        let run = |p: &Program| {
            let mut m = Machine::new(p);
            m.start("f", vec![Value::b32(x)]).unwrap();
            m.run(1_000_000)
        };
        prop_assert_eq!(run(&prog), run(&opt));
        // And the VM agrees.
        if let Status::Terminated(vals) = run(&opt) {
            let bits: Vec<u64> = vals.iter().filter_map(Value::bits).collect();
            let vp = compile(&opt).unwrap();
            let mut m = VmMachine::new(&vp);
            m.start("f", &[u64::from(x)], 1);
            prop_assert_eq!(m.run(1_000_000), VmStatus::Halted(bits));
        }
    }
}
