//! Property tests: the optimizer preserves the operational semantics on
//! randomly generated programs — including programs with exceptional
//! control flow (weak continuations, `cut to`, `also unwinds to` /
//! `also returns to` / `also aborts` annotations, `%%` checked
//! primitives) — and the simulated target agrees with the abstract
//! machine on the optimized code.
//!
//! The random sweep rides on `cmm-difftest`'s structured generator and
//! multi-oracle executor; shrunk counterexamples found by past sweeps
//! are replayed below as fixed regressions and recorded in
//! `optimizer_soundness.proptest-regressions` (checked in, per the
//! policy in DESIGN.md §4).

use cmm_cfg::{build_program, Program};
use cmm_difftest::{observe_sem, observe_vm, run_fuzz, FuzzConfig, Limits};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_sem::{Machine, Status, Value};

fn harness(body: &str) -> String {
    format!(
        r#"
        data cells {{ bits32 0, 0, 0, 0; }}
        h(bits32 x) {{ return (x * 2 + 1); }}
        f(bits32 a, bits32 b) {{
            bits32 c, d, i;
            c = 0; d = 0; i = 3;
          loop:
            if i == 0 {{ return (a + b + c + d); }} else {{
                {body}
                i = i - 1;
                goto loop;
            }}
        }}
        "#
    )
}

fn run_sem(prog: &Program, args: (u32, u32)) -> Status {
    let mut m = Machine::new(prog);
    m.start("f", vec![Value::b32(args.0), Value::b32(args.1)])
        .unwrap();
    m.run(10_000_000)
}

fn build(src: &str) -> Program {
    build_program(&parse_module(src).unwrap_or_else(|e| panic!("{e}\n{src}"))).unwrap()
}

/// The randomized sweep proper: a fixed budget of generated programs
/// through every oracle (reference semantics, each pass individually,
/// the full pipeline, and the VM unoptimized and optimized). The CLI
/// (`cmm fuzz`) runs the same pipeline at much higher case counts.
#[test]
fn optimizer_preserves_semantics_on_random_programs() {
    let cfg = FuzzConfig {
        cases: 150,
        seed: 7,
        shrink: true,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    assert!(
        report.ok(),
        "case {} failed: {}\nshrunk:\n{}",
        report.failures[0].index,
        report.failures[0].failure,
        report.failures[0]
            .shrunk
            .as_ref()
            .unwrap_or(&report.failures[0].case)
            .render()
    );
}

/// Replays the shrunk counterexample recorded in
/// `optimizer_soundness.proptest-regressions`: a memory store on a
/// statically-dead `else` branch.
#[test]
fn regression_store_on_dead_branch() {
    let body = "if 0 { a = 0; } else { bits32[cells + ((0) % 4) * 4] = 0; }";
    let src = harness(body);
    let prog = build(&src);
    let mut opt = prog.clone();
    optimize_program(&mut opt, &OptOptions::default());
    for a in [0u32, 1, 7] {
        for b in [0u32, 3] {
            assert_eq!(
                run_sem(&prog, (a, b)),
                run_sem(&opt, (a, b)),
                "optimization changed behaviour for ({a}, {b})\n{src}"
            );
        }
    }
}

/// Shrunk by `cmm-difftest` (seed 14 of the `--seed 0` sweep): the
/// callee-saves pass staged a set at the `yield` call site and let the
/// later `also cuts to` call site inherit it, so the cut (which cannot
/// restore callee-saves registers, §4.2) lost `d` and the optimized
/// program went wrong with "unbound name `d`" while the reference
/// halted. The pass must stage its chosen set at *every* call.
const REGRESSION_CALLEE_SAVES_ACROSS_CUT: &str = r#"
    data cells { bits32 0, 0, 0, 0, 0, 0, 0, 0; }
    h(bits32 x) { return ((x * 2) + 1); }
    g0(bits32 x, bits32 kk) {
        if x > 9 { cut to kk(x - 1); } else { return (x + 1); }
    }
    f(bits32 a, bits32 b) {
        bits32 c, d, t, i;
        c = 0; d = 0; t = 0;
        i = 1;
      loop:
        if i == 0 { return ((((a + b) + c) + d) + t); } else {
            yield((0) & 15) also aborts;
            t = g0(15, kc) also cuts to kc also aborts;
            i = i - 1;
            goto loop;
        }
        continuation kc(t):
        d = d + t;
        i = i - 1;
        goto loop;
    }
"#;

#[test]
fn regression_callee_saves_set_inherited_across_cut_site() {
    let prog = build(REGRESSION_CALLEE_SAVES_ACROSS_CUT);
    let limits = Limits::default();
    let (reference, ref_detail) = observe_sem(&prog, (0, 0), &limits);
    let mut opt = prog.clone();
    optimize_program(
        &mut opt,
        &OptOptions {
            callee_save_regs: 6,
            ..OptOptions::none()
        },
    );
    let (obs, detail) = observe_sem(&opt, (0, 0), &limits);
    assert_eq!(
        obs,
        reference,
        "callee-saves pass changed behaviour: reference {}, observed {}",
        reference.describe(&ref_detail),
        obs.describe(&detail)
    );
    // And through the full pipeline on both substrates.
    let mut full = prog.clone();
    optimize_program(&mut full, &OptOptions::default());
    let (obs, _) = observe_sem(&full, (0, 0), &limits);
    assert_eq!(obs, reference);
    let vm = cmm_vm::compile(&full).unwrap();
    let (obs, _) = observe_vm(&vm, (0, 0), &limits);
    assert_eq!(obs, reference);
}

/// Shrunk by `cmm-difftest` (seed 0 sweep): constant propagation folds
/// the `if 0` away, stranding the only call site that takes `kc`'s
/// value; VM code generation then materialized a continuation (pc, sp)
/// pair whose body was never emitted and panicked on the fixup.
const REGRESSION_DEAD_CONT_VALUE: &str = r#"
    data cells { bits32 0, 0, 0, 0, 0, 0, 0, 0; }
    h(bits32 x) { return ((x * 2) + 1); }
    g0(bits32 x, bits32 kk) {
        if x > 9 { cut to kk(x - 1); } else { return (x + 1); }
    }
    f(bits32 a, bits32 b) {
        bits32 c, d, t, i;
        c = 0; d = 0; t = 0;
        i = 1;
      loop:
        if i == 0 { return ((((a + b) + c) + d) + t); } else {
            if 0 {
                c = g0(0, kc) also cuts to kc also aborts;
            } else {
            }
            i = i - 1;
            goto loop;
        }
        continuation kc(t):
        return ((t + b) + 1000);
    }
"#;

#[test]
fn regression_codegen_of_optimized_dead_continuation_value() {
    let prog = build(REGRESSION_DEAD_CONT_VALUE);
    let limits = Limits::default();
    let (reference, _) = observe_sem(&prog, (0, 0), &limits);
    let mut opt = prog.clone();
    optimize_program(
        &mut opt,
        &OptOptions {
            constprop: true,
            ..OptOptions::none()
        },
    );
    // This compile used to panic ("no entry found for key").
    let vm = cmm_vm::compile(&opt).unwrap();
    let (obs, _) = observe_vm(&vm, (0, 0), &limits);
    assert_eq!(obs, reference);
}
