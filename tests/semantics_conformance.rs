//! Conformance of the two executions: on every program in a broad fixed
//! suite, the simulated native target must produce exactly the results
//! prescribed by the formal operational semantics — including programs
//! that exercise every node kind of Table 2 and every control-transfer
//! mechanism of §4.2.

use cmm_cfg::{build_program, Program};
use cmm_opt::{optimize_program, OptOptions};
use cmm_parse::parse_module;
use cmm_sem::{Machine, Status, Value, Wrong};
use cmm_vm::{compile, VmMachine, VmStatus};

fn agree(src: &str, proc: &str, args: &[u32], results: usize) -> Vec<u64> {
    let prog = build_program(&parse_module(src).unwrap()).unwrap();
    let sem_out = sem_values(&prog, proc, args);
    // Unoptimized VM.
    assert_eq!(
        sem_out,
        vm_values(&prog, proc, args, results),
        "unoptimized VM disagrees"
    );
    // Optimized VM.
    let mut opt = prog.clone();
    optimize_program(&mut opt, &OptOptions::default());
    assert_eq!(
        sem_values(&opt, proc, args),
        sem_out,
        "optimizer changed semantics"
    );
    assert_eq!(
        sem_out,
        vm_values(&opt, proc, args, results),
        "optimized VM disagrees"
    );
    sem_out
}

fn sem_values(prog: &Program, proc: &str, args: &[u32]) -> Vec<u64> {
    let mut m = Machine::new(prog);
    m.start(proc, args.iter().map(|&a| Value::b32(a)).collect())
        .unwrap();
    match m.run(50_000_000) {
        Status::Terminated(vals) => vals.iter().filter_map(Value::bits).collect(),
        other => panic!("abstract machine: {other:?}"),
    }
}

fn vm_values(prog: &Program, proc: &str, args: &[u32], results: usize) -> Vec<u64> {
    let vp = compile(prog).unwrap();
    let mut m = VmMachine::new(&vp);
    let vargs: Vec<u64> = args.iter().map(|&a| u64::from(a)).collect();
    m.start(proc, &vargs, results);
    match m.run(100_000_000) {
        VmStatus::Halted(vals) => vals,
        other => panic!("vm: {other:?}"),
    }
}

#[test]
fn arithmetic_and_widths() {
    let src = r#"
        f(bits32 a, bits32 b) {
            bits32 r1, r2, r3, r4;
            bits8 t;
            r1 = (a + b) * (a - b);
            r2 = (a << 3) ^ (b >> 1);
            r3 = %divs(a, b) + %mods(a, b);
            t = %lo8(a);
            r4 = %zx32(t) + %sx32(%lo8(b));
            return (r1, r2, r3, r4);
        }
    "#;
    agree(src, "f", &[200, 3], 4);
    agree(src, "f", &[0xffff_ff00, 7], 4);
}

#[test]
fn memory_widths_and_strings() {
    let src = r#"
        data buf { bits32 0; bits16 0; bits8 0; space 9; string "xyz"; }
        f(bits32 v) {
            bits32 r;
            bits32[buf] = v;
            bits16[buf + 4] = v;
            bits8[buf + 6] = v;
            r = bits32[buf] + %zx32(bits16[buf + 4]) + %zx32(bits8[buf + 6]);
            r = r + %zx32(bits8[buf + 16]);   /* 'x' */
            return (r);
        }
    "#;
    agree(src, "f", &[0x01020304], 1);
}

#[test]
fn calls_multiple_results_and_tail_calls() {
    let src = r#"
        swap(bits32 a, bits32 b) { return (b, a); }
        f(bits32 x) {
            bits32 p, q;
            p, q = swap(x, x + 1);
            jump swap(p * 2, q * 3);
        }
    "#;
    assert_eq!(agree(src, "f", &[10], 2), vec![30, 22]);
}

#[test]
fn branch_tables_and_alternate_returns() {
    let src = r#"
        classify(bits32 x) {
            if x == 0 { return <0/2> (100); }
            if x == 1 { return <1/2> (200); }
            return <2/2> (300);
        }
        f(bits32 x) {
            bits32 r;
            r = classify(x) also returns to kzero, kone;
            return (r);
            continuation kzero(r):
            return (r + 1);
            continuation kone(r):
            return (r + 2);
        }
    "#;
    assert_eq!(agree(src, "f", &[0], 1), vec![101]);
    assert_eq!(agree(src, "f", &[1], 1), vec![202]);
    assert_eq!(agree(src, "f", &[9], 1), vec![300]);
}

#[test]
fn cut_to_through_many_frames() {
    let src = r#"
        f() {
            bits32 r;
            r = down(6, k) also cuts to k;
            return (0);
            continuation k(r):
            return (r);
        }
        down(bits32 n, bits32 kk) {
            bits32 r;
            if n == 0 { cut to kk(77); }
            r = down(n - 1, kk) also aborts;
            return (r);
        }
    "#;
    assert_eq!(agree(src, "f", &[], 1), vec![77]);
}

#[test]
fn continuation_values_stored_in_memory() {
    let src = r#"
        data slot { bits32 0; }
        f() {
            bits32 r;
            bits32[slot] = k;
            r = g() also cuts to k also aborts;
            return (0);
            continuation k(r):
            return (r + 5);
        }
        g() {
            bits32 kk;
            kk = bits32[slot];
            cut to kk(37);
            return (0);
        }
    "#;
    assert_eq!(agree(src, "f", &[], 1), vec![42]);
}

#[test]
fn computed_calls_through_tables() {
    let src = r#"
        data table { sym add1; sym add2; }
        add1(bits32 x) { return (x + 1); }
        add2(bits32 x) { return (x + 2); }
        f(bits32 i, bits32 x) {
            bits32 t, r;
            t = bits32[table + i * 4];
            r = t(x);
            return (r);
        }
    "#;
    assert_eq!(agree(src, "f", &[0, 10], 1), vec![11]);
    assert_eq!(agree(src, "f", &[1, 10], 1), vec![12]);
}

#[test]
fn global_registers_shared_across_procedures() {
    let src = r#"
        register bits32 counter = 100;
        bump(bits32 by) { counter = counter + by; return (counter); }
        f() {
            bits32 a, b;
            a = bump(1);
            b = bump(10);
            return (a, b, counter);
        }
    "#;
    assert_eq!(agree(src, "f", &[], 3), vec![101, 111, 111]);
}

#[test]
fn both_report_divide_fault() {
    let src = "f(bits32 a, bits32 b) { return (a / b); }";
    let prog = build_program(&parse_module(src).unwrap()).unwrap();
    let mut m = Machine::new(&prog);
    m.start("f", vec![Value::b32(1), Value::b32(0)]).unwrap();
    assert!(matches!(m.run(10_000), Status::Wrong(Wrong::OpFailed(..))));
    let vp = compile(&prog).unwrap();
    let mut vm = VmMachine::new(&vp);
    vm.start("f", &[1, 0], 1);
    assert!(matches!(vm.run(10_000), VmStatus::Error(_)));
}

#[test]
fn deep_recursion_stays_consistent() {
    let src = r#"
        f(bits32 n) {
            bits32 r;
            if n == 0 { return (0); }
            r = f(n - 1);
            return (r + n);
        }
    "#;
    assert_eq!(agree(src, "f", &[500], 1), vec![125250]);
}

#[test]
fn parallel_assignment_including_memory() {
    let src = r#"
        data cell { bits32 7; }
        f(bits32 a, bits32 b) {
            bits32 t;
            a, bits32[cell], b = b, a + b, a;
            t = bits32[cell];
            return (a, b, t);
        }
    "#;
    assert_eq!(agree(src, "f", &[1, 2], 3), vec![2, 1, 3]);
}
