//! Scale tests: generated programs far larger than the paper's figures,
//! to show the pipeline holds up at realistic compilation-unit sizes.

use cmm_core::sem::Value;
use cmm_core::Compiler;
use cmm_frontend::{compile_minim3, run_sem, run_vm, Strategy};
use std::fmt::Write as _;

/// A module with `n` chained procedures: p0 calls p1 calls ... calls pn.
fn chain(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(
            src,
            "p{i}(bits32 x) {{ bits32 r; r = p{}(x + 1); return (r + 1); }}",
            i + 1
        );
    }
    let _ = writeln!(src, "p{n}(bits32 x) {{ return (x); }}");
    src
}

#[test]
fn hundred_procedure_chain() {
    let n = 100;
    let c = Compiler::new().source(&chain(n)).unwrap();
    let vals = c.interpret("p0", vec![Value::b32(0)]).unwrap();
    assert_eq!(vals, vec![Value::b32(2 * n as u32)]);
    let (vm, cost) = c.execute("p0", &[0], 1).unwrap();
    assert_eq!(vm, vec![2 * n as u64]);
    assert!(cost.instructions > 1000);
}

/// One procedure with `n` sequential basic blocks (if-chains), stressing
/// the optimizer's dataflow fixpoints and SSA renaming.
fn wide_proc(n: usize) -> String {
    let mut body = String::new();
    for i in 0..n {
        let _ = writeln!(
            body,
            "if x > {i} {{ acc = acc + {i}; }} else {{ acc = acc * 1; }}"
        );
    }
    format!("f(bits32 x) {{ bits32 acc; acc = 0;\n{body}\nreturn (acc); }}")
}

#[test]
fn five_hundred_block_procedure() {
    let n = 500;
    let c = Compiler::new().source(&wide_proc(n)).unwrap();
    let expect: u32 = (0..200u32).sum();
    let vals = c.interpret("f", vec![Value::b32(200)]).unwrap();
    assert_eq!(vals, vec![Value::b32(expect)]);
    let (vm, _) = c.execute("f", &[200], 1).unwrap();
    assert_eq!(vm, vec![u64::from(expect)]);
}

/// Deeply nested MiniM3 try scopes, all strategies.
fn nested_tries(depth: usize) -> String {
    let mut body = String::from("r = boom(x);");
    for i in 0..depth {
        body = format!("try {{ {body} }} except {{ E{i}(v) => {{ r = v + {i}; }} }}");
    }
    let mut exceptions = String::new();
    let mut raises = String::new();
    for i in 0..depth {
        let _ = writeln!(exceptions, "exception E{i};");
        let _ = writeln!(raises, "if x == {i} {{ raise E{i}(100); }}");
    }
    format!(
        "{exceptions}
         proc boom(x) {{ {raises} return x; }}
         proc main(x) {{ var r; {body} return r; }}"
    )
}

#[test]
fn sixteen_deep_try_nesting_all_strategies() {
    let depth = 16;
    let src = nested_tries(depth);
    for strategy in Strategy::CORE {
        let module = compile_minim3(&src, strategy).unwrap_or_else(|e| panic!("{strategy}: {e}"));
        // Raising E3 is caught by the scope at nesting level 3.
        assert_eq!(run_sem(&module, strategy, &[3]).unwrap(), 103, "{strategy}");
        // No raise: the value passes through every scope.
        assert_eq!(
            run_sem(&module, strategy, &[999]).unwrap(),
            999,
            "{strategy}"
        );
        let (vm, _) = run_vm(&module, strategy, &[3]).unwrap();
        assert_eq!(vm, 103, "{strategy}/vm");
    }
}

#[test]
fn deep_dynamic_handler_stack() {
    // Recursion where every frame opens a handler scope: the cutting
    // strategy's dynamic exception stack gets `depth` entries.
    let src = r#"
        exception E;
        proc rec(n) {
            var r;
            if n == 0 { raise E(7); }
            try { r = rec(n - 1); } except { E(v) => { raise E(v + 1); } }
            return r;
        }
        proc main(n) {
            var r;
            try { r = rec(n); } except { E(v) => { r = v; } }
            return r;
        }
    "#;
    for strategy in Strategy::CORE {
        let module = compile_minim3(src, strategy).unwrap();
        // The exception re-raises through every frame: 7 + depth.
        assert_eq!(run_sem(&module, strategy, &[50]).unwrap(), 57, "{strategy}");
    }
}

#[test]
fn optimizer_scales_on_generated_code() {
    let src = wide_proc(200);
    let mut prog = cmm_cfg::build_program(&cmm_parse::parse_module(&src).unwrap()).unwrap();
    let stats = cmm_opt::optimize_program(&mut prog, &cmm_opt::OptOptions::default());
    assert!(stats.iterations >= 1);
    // `acc * 1` arms fold away.
    assert!(stats.constprop_rewrites + stats.local_rewrites > 0);
}
