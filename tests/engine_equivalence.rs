//! Engine-equivalence suite: the pre-resolved `cmm-sem` engine and the
//! pre-decoded and fused `cmm-vm` engines are run in **lockstep** with
//! their reference step loops over programs from the `cmm-difftest`
//! generator,
//! comparing not just final results but every intermediate Table 1
//! observation:
//!
//! * the yield code and full argument vector at each suspension;
//! * the `NextActivation` walk order (the procedure of every activation
//!   from `FirstActivation` to the stack bottom);
//! * the values `FindContParam` exposes before the dispatcher fills
//!   them;
//! * the final status and a canonical snapshot of final memory.
//!
//! This is a property sweep in the proptest style — deterministic
//! cases drawn from the generator's `(seed, index)` space, so any
//! failure names the exact case to replay — without an external
//! property-testing dependency.

use cmm_cfg::Program;
use cmm_difftest::case_for;
use cmm_rt::Thread;
use cmm_sem::{ResolvedProgram, SemEngine, Status, Value};
use cmm_vm::{VmProgram, VmStatus, VmThread};

const SWEEP: u64 = 120;
const SEM_FUEL: u64 = 2_000_000;
const VM_FUEL: u64 = 20_000_000;
const MAX_YIELDS: usize = 64;

fn build(src: &str) -> Program {
    let module = cmm_parse::parse_module(src).expect("program parses");
    cmm_cfg::build_program(&module).expect("program builds")
}

/// The deterministic parameter value for yield code `code` (the same
/// policy as `cmm-difftest`'s dispatcher).
fn fill(code: u64) -> u32 {
    (code.wrapping_mul(13).wrapping_add(7) & 0xfff) as u32
}

/// What one suspension of the abstract machine looks like through the
/// Table 1 interface.
#[derive(PartialEq, Debug)]
struct SemSuspension {
    yield_args: Vec<Value>,
    depth: usize,
    /// Procedure names along the `FirstActivation`/`NextActivation`
    /// walk, innermost first.
    walk: Vec<String>,
    /// `FindContParam` values of the resumed continuation, before the
    /// dispatcher overwrites them.
    cont_params: Vec<Value>,
}

/// How a lockstep sem run ended.
#[derive(PartialEq, Debug)]
enum SemEnd {
    Status(Status),
    RtsError(String),
    YieldBound,
}

/// Runs one engine under the dispatcher policy, recording every
/// suspension and the final state.
fn drive_sem<'p, M: SemEngine<'p>>(
    t: &mut Thread<'p, M>,
    args: (u32, u32),
) -> (Vec<SemSuspension>, SemEnd, Vec<(u64, u8)>) {
    let mut suspensions = Vec::new();
    let end = 'run: {
        if let Err(w) = t.start("f", vec![Value::b32(args.0), Value::b32(args.1)]) {
            break 'run SemEnd::Status(Status::Wrong(w));
        }
        loop {
            match t.run(SEM_FUEL) {
                Status::Suspended => {
                    if suspensions.len() >= MAX_YIELDS {
                        break 'run SemEnd::YieldBound;
                    }
                    let code = t.yield_code().unwrap_or(0);
                    let yield_args = t.yield_args().to_vec();
                    let depth = t.machine().depth();
                    let mut walk = Vec::new();
                    if let Some(mut a) = t.first_activation() {
                        loop {
                            walk.push(
                                t.activation_proc(&a)
                                    .map(|n| n.to_string())
                                    .unwrap_or_default(),
                            );
                            if !t.next_activation(&mut a) {
                                break;
                            }
                        }
                    }
                    let Some(mut a) = t.first_activation() else {
                        break 'run SemEnd::RtsError("no first activation".into());
                    };
                    let _ = t.next_activation(&mut a);
                    if let Err(w) = t.set_activation(&a) {
                        break 'run SemEnd::RtsError(w.to_string());
                    }
                    if code % 2 == 1 {
                        let _ = t.set_unwind_cont(0);
                    }
                    let mut cont_params = Vec::new();
                    let mut n = 0;
                    while let Some(p) = t.find_cont_param(n) {
                        cont_params.push(p.clone());
                        *p = Value::b32(fill(code));
                        n += 1;
                    }
                    suspensions.push(SemSuspension {
                        yield_args,
                        depth,
                        walk,
                        cont_params,
                    });
                    if let Err(w) = t.resume() {
                        break 'run SemEnd::RtsError(w.to_string());
                    }
                }
                done => break 'run SemEnd::Status(done),
            }
        }
    };
    (suspensions, end, t.machine().mem_snapshot())
}

/// One suspension of the simulated machine through its run-time
/// interface.
#[derive(PartialEq, Debug)]
struct VmSuspension {
    yield_args: Vec<u64>,
    /// Length of the activation walk and each activation's first
    /// descriptor (or `None`).
    walk: Vec<Option<u32>>,
    cont_params: Vec<u64>,
}

#[derive(PartialEq, Debug)]
enum VmEnd {
    Status(VmStatus),
    RtsError(String),
    YieldBound,
}

fn drive_vm<S: cmm_obs::TraceSink>(
    t: &mut VmThread<'_, S>,
    args: (u32, u32),
) -> (Vec<VmSuspension>, VmEnd, Vec<(u32, u8)>) {
    let mut suspensions = Vec::new();
    let end = 'run: {
        t.start("f", &[u64::from(args.0), u64::from(args.1)], 1);
        loop {
            match t.run(VM_FUEL) {
                VmStatus::Suspended => {
                    if suspensions.len() >= MAX_YIELDS {
                        break 'run VmEnd::YieldBound;
                    }
                    let yield_args = t.machine.yield_args(4);
                    let code = yield_args[0];
                    let mut walk = Vec::new();
                    if let Some(mut a) = t.first_activation() {
                        loop {
                            walk.push(t.get_descriptor(&a, 0));
                            if !t.next_activation(&mut a) {
                                break;
                            }
                        }
                    }
                    let Some(mut a) = t.first_activation() else {
                        break 'run VmEnd::RtsError("no first activation".into());
                    };
                    let _ = t.next_activation(&mut a);
                    if let Err(e) = t.set_activation(&a) {
                        break 'run VmEnd::RtsError(e);
                    }
                    if code % 2 == 1 {
                        let _ = t.set_unwind_cont(0);
                    }
                    let mut cont_params = Vec::new();
                    let mut n = 0;
                    while let Some(p) = t.find_cont_param(n) {
                        cont_params.push(*p);
                        *p = u64::from(fill(code));
                        n += 1;
                    }
                    suspensions.push(VmSuspension {
                        yield_args,
                        walk,
                        cont_params,
                    });
                    if let Err(e) = t.resume() {
                        break 'run VmEnd::RtsError(e);
                    }
                }
                done => break 'run VmEnd::Status(done),
            }
        }
    };
    (suspensions, end, t.machine.mem.snapshot())
}

/// The reference and pre-resolved abstract machines make identical
/// Table 1 observations — yield arguments, activation walks, cont
/// parameter values — and end with identical status and memory, across
/// the generator sweep.
#[test]
fn sem_engines_make_identical_observations() {
    for index in 0..SWEEP {
        let case = case_for(0, index);
        let prog = build(&case.render());
        let rp = ResolvedProgram::new(&prog);
        let reference = drive_sem(&mut Thread::new(&prog), case.args);
        let resolved = drive_sem(&mut Thread::new_resolved(&rp), case.args);
        assert_eq!(
            resolved,
            reference,
            "case {index} diverged:\n{}",
            case.render()
        );
    }
}

/// The reference, pre-decoded, and fused simulated machines agree on
/// `VmStatus`, yield sequences, activation walks, cont parameters, and
/// final memory across the generator sweep.
#[test]
fn vm_engines_make_identical_observations() {
    for index in 0..SWEEP {
        let case = case_for(0, index);
        let prog = build(&case.render());
        let vp: VmProgram = match cmm_vm::compile(&prog) {
            Ok(vp) => vp,
            Err(e) => panic!("case {index} failed to compile: {e}"),
        };
        let reference = drive_vm(&mut VmThread::new(&vp), case.args);
        let decoded = drive_vm(&mut VmThread::new_decoded(&vp), case.args);
        assert_eq!(
            decoded,
            reference,
            "case {index} diverged (decoded):\n{}",
            case.render()
        );
        let fused = drive_vm(&mut VmThread::new_fused(&vp), case.args);
        assert_eq!(
            fused,
            reference,
            "case {index} diverged (fused):\n{}",
            case.render()
        );
    }
}

/// Fusion is observationally invisible: across a multi-seed generator
/// sweep, the fused engine makes the decoded engine's exact Table 1
/// observations, charges the decoded engine's exact cost-model totals,
/// and emits the decoded engine's exact trace-event stream — timestamps
/// included, since fused superinstructions charge their decoded
/// constituents' costs before any observable transition. A seeded
/// `(seed, index)` sweep in the proptest style, with no external
/// property-testing dependency; shrunk counterexamples from this
/// family's history are replayed below and recorded in
/// `engine_equivalence.proptest-regressions`.
#[test]
fn fusion_is_observationally_invisible() {
    use cmm_obs::RecordingSink;
    for seed in [1u64, 2, 3] {
        for index in 0..40 {
            let case = case_for(seed, index);
            let prog = build(&case.render());
            let vp: VmProgram = match cmm_vm::compile(&prog) {
                Ok(vp) => vp,
                Err(e) => panic!("seed {seed} case {index} failed to compile: {e}"),
            };
            let mut dec = VmThread::with_sink_decoded(&vp, RecordingSink::default());
            let mut fus = VmThread::with_sink_fused(&vp, RecordingSink::default());
            let reference = drive_vm(&mut dec, case.args);
            let fused = drive_vm(&mut fus, case.args);
            assert_eq!(
                fused,
                reference,
                "seed {seed} case {index} diverged:\n{}",
                case.render()
            );
            assert_eq!(
                fus.machine.cost,
                dec.machine.cost,
                "seed {seed} case {index}: fused cost diverged:\n{}",
                case.render()
            );
            let want = dec.into_machine().into_sink().events;
            let got = fus.into_machine().into_sink().events;
            if got != want {
                let i = want
                    .iter()
                    .zip(&got)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| want.len().min(got.len()));
                panic!(
                    "seed {seed} case {index}: trace diverged at event {i}: {:?} vs {:?}\n{}",
                    want.get(i),
                    got.get(i),
                    case.render()
                );
            }
        }
    }
}

/// Replays the shrunk counterexample recorded in
/// `engine_equivalence.proptest-regressions`: a straight-line chain
/// long enough to fuse into wide windows, run at **every** fuel budget
/// from 1 to completion. Fuel exhaustion inside a window must delegate
/// the partial window to the decoded loop, so status, cost, and pc
/// agree with the decoded engine at every boundary — the fused tier's
/// one observable temptation to run ahead of its budget.
#[test]
fn regression_fuel_exhaustion_mid_window() {
    let src = r#"
        f(bits32 a, bits32 b) {
            bits32 c, d;
            c = (a + 1) & 65535;
            d = (c * 3) + b;
            c = (d + c) & 65535;
            d = (c * 5) + a;
            c = (d + c) & 65535;
            return (c + d);
        }
    "#;
    let prog = build(src);
    let vp: VmProgram = cmm_vm::compile(&prog).expect("compiles");
    // The shape must actually fuse, or the regression tests nothing.
    let plain = std::sync::Arc::new(cmm_vm::DecodedCode::decode(&vp));
    let fused_code = cmm_vm::FusedCode::fuse(&vp, plain);
    assert!(
        fused_code.insts.iter().any(|i| i.n > 1),
        "expected at least one fused window"
    );
    let total = {
        let mut m = cmm_vm::VmMachine::new_decoded(&vp);
        m.start("f", &[9, 4], 1);
        assert!(matches!(m.run(1_000_000), VmStatus::Halted(_)));
        m.cost.instructions
    };
    for fuel in 1..=total {
        let mut dec = cmm_vm::VmMachine::new_decoded(&vp);
        dec.start("f", &[9, 4], 1);
        let ds = dec.run(fuel);
        let mut fus = cmm_vm::VmMachine::new_fused(&vp);
        fus.start("f", &[9, 4], 1);
        let fs = fus.run(fuel);
        assert_eq!(fs, ds, "fuel {fuel}: status diverged");
        assert_eq!(fus.cost, dec.cost, "fuel {fuel}: cost diverged");
        assert_eq!(fus.pc, dec.pc, "fuel {fuel}: pc diverged");
    }
}

/// Replays the shrunk counterexample recorded in
/// `engine_equivalence.proptest-regressions`: a `cut to` lands on a
/// continuation whose body sits mid-stream between two otherwise
/// fusable instruction runs. The continuation entry must stay a window
/// boundary — a window absorbing it would teleport the cut into the
/// middle of a superinstruction.
#[test]
fn regression_cut_into_fusable_tail() {
    let src = r#"
        g0(bits32 x, bits32 kk) {
            if x > 9 { cut to kk(x - 1); } else { return (x + 1); }
        }
        f(bits32 a, bits32 b) {
            bits32 c, d, t;
            c = (a + 3) & 65535;
            d = (c * 7) + b;
            t = g0(15, kc) also cuts to kc also aborts;
            c = (c + t) & 65535;
            d = (d + c) * 3;
            return (c + d);
            continuation kc(t):
            c = (c + 100) & 65535;
            d = (d + c) * 5;
            return (c + (d + t));
        }
    "#;
    let prog = build(src);
    let vp: VmProgram = cmm_vm::compile(&prog).expect("compiles");
    let reference = drive_vm(&mut VmThread::new_decoded(&vp), (15, 4));
    let fused = drive_vm(&mut VmThread::new_fused(&vp), (15, 4));
    assert_eq!(fused, reference);
    let stepped = drive_vm(&mut VmThread::new(&vp), (15, 4));
    assert_eq!(fused, stepped);
}

/// A handcrafted nest makes the walk-order observation legible: a yield
/// three frames deep walks `h`, `g`, `f` on both engines, and the
/// dispatcher policy (discard the yielder, resume in `g`) produces the
/// same result.
#[test]
fn nested_walk_order_is_identical_and_correct() {
    let src = r#"
        h(bits32 x) {
            yield(3) also aborts;
            return (x + 1);
        }
        g(bits32 x) {
            bits32 r;
            r = h(x) also aborts;
            return (r + 1);
        }
        f(bits32 a, bits32 b) {
            bits32 r;
            r = g(a) also aborts;
            return (r + b);
        }
    "#;
    let prog = build(src);
    let rp = ResolvedProgram::new(&prog);
    let reference = drive_sem(&mut Thread::new(&prog), (100, 7));
    let resolved = drive_sem(&mut Thread::new_resolved(&rp), (100, 7));
    assert_eq!(resolved, reference);
    let (suspensions, end, _) = reference;
    assert_eq!(suspensions.len(), 1);
    assert_eq!(suspensions[0].walk, vec!["h", "g", "f"]);
    // fill(3) = 46: g returns 47, f returns 47 + 7.
    assert_eq!(
        end,
        SemEnd::Status(Status::Terminated(vec![Value::b32(54)]))
    );
}

/// Machines built from **recycled execution arenas** are observationally
/// fresh: the whole generator sweep runs every engine twice — once on a
/// fresh machine, once drawing its heap containers from a single arena
/// that every prior case in the sweep already ran through — and the two
/// runs must make deeply equal Table 1 observations (suspensions, final
/// status, final memory). One sem arena is deliberately shared between
/// the reference and pre-resolved machines, and one vm arena across all
/// vm cases, so any state leaking through `recycle_into` would cross
/// both case and engine boundaries and diverge loudly.
#[test]
fn recycled_arenas_make_identical_observations() {
    use cmm_obs::NopSink;
    use cmm_sem::{Machine, ResolvedMachine, SemArena};
    use cmm_vm::VmArena;
    use std::sync::Arc;

    let mut sem_arena = SemArena::new();
    let mut vm_arena = VmArena::new();
    for index in 0..SWEEP {
        let case = case_for(0, index);
        let prog = build(&case.render());
        let rp = ResolvedProgram::new(&prog);

        let fresh = drive_sem(&mut Thread::new(&prog), case.args);
        let mut t = Thread::over(Machine::with_sink_in(&prog, NopSink, &mut sem_arena));
        let recycled = drive_sem(&mut t, case.args);
        t.into_machine().recycle_into(&mut sem_arena);
        assert_eq!(
            recycled,
            fresh,
            "case {index}: recycled reference-sem arena diverged:\n{}",
            case.render()
        );

        let fresh = drive_sem(&mut Thread::new_resolved(&rp), case.args);
        let mut t = Thread::over(ResolvedMachine::with_sink_in(&rp, NopSink, &mut sem_arena));
        let recycled = drive_sem(&mut t, case.args);
        t.into_machine().recycle_into(&mut sem_arena);
        assert_eq!(
            recycled,
            fresh,
            "case {index}: recycled resolved-sem arena diverged:\n{}",
            case.render()
        );

        let vp: VmProgram = match cmm_vm::compile(&prog) {
            Ok(vp) => vp,
            Err(e) => panic!("case {index} failed to compile: {e}"),
        };
        let fresh = drive_vm(&mut VmThread::new(&vp), case.args);
        let mut t = VmThread::with_sink_in(&vp, NopSink, &mut vm_arena);
        let recycled = drive_vm(&mut t, case.args);
        t.into_machine().recycle_into(&mut vm_arena);
        assert_eq!(
            recycled,
            fresh,
            "case {index}: recycled vm arena diverged:\n{}",
            case.render()
        );

        let fresh = drive_vm(&mut VmThread::new_fused(&vp), case.args);
        let plain = Arc::new(cmm_vm::DecodedCode::decode(&vp));
        let stream = Arc::new(cmm_vm::FusedCode::fuse(&vp, plain));
        let mut t = VmThread::with_sink_shared_fused_in(&vp, stream, NopSink, &mut vm_arena);
        let recycled = drive_vm(&mut t, case.args);
        t.into_machine().recycle_into(&mut vm_arena);
        assert_eq!(
            recycled,
            fresh,
            "case {index}: recycled fused vm arena diverged:\n{}",
            case.render()
        );
    }
}
