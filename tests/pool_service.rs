//! Cross-crate contract for the `cmm-pool` batch service: the manifest
//! the CLI and CI use, run in-process, with the subsystem's two load-
//! bearing promises asserted from the outside —
//!
//! * the timing-stripped batch report is **byte-identical** at every
//!   worker count (parallelism changes wall-clock time and nothing
//!   else), and
//! * a batch always finishes warm: every distinct compilation happens
//!   once (phase A) and every job then refetches it (phase C), so the
//!   cache hit rate is structurally nonzero.

use cmm_pool::{parse_manifest, run_batch, BatchConfig, PipelineCache};

/// A self-contained manifest in the committed format, over sources that
/// exercise both languages, all four engines, and a distinct pass
/// configuration (its own cache world).
fn specs() -> Vec<cmm_pool::JobSpec> {
    const LOOP: &str = "f(bits32 n) {\n\
         bits32 acc;\n\
         acc = 0;\n\
       loop:\n\
         if n == 0 { return (acc); }\n\
         else { acc = acc + n; n = n - 1; goto loop; }\n\
     }";
    const RAISE: &str = "exception E;\n\
       proc main(n) {\n\
         var r;\n\
         try { raise E(n); r = 0; } except { E(v) => { r = v + 1; } }\n\
         return r;\n\
       }";
    let manifest = "\
        loop.cmm  sem,sem-resolved,vm,vm-decoded  entry=f args=9\n\
        loop.cmm  vm  entry=f args=9 opt=none\n\
        raise.m3  sem,vm  strategy=cutting args=5\n\
        raise.m3  vm  strategy=runtime-unwind args=5\n";
    parse_manifest(manifest, &mut |file| match file {
        "loop.cmm" => Ok(LOOP.to_string()),
        "raise.m3" => Ok(RAISE.to_string()),
        other => Err(format!("unexpected source `{other}`")),
    })
    .expect("manifest parses")
}

#[test]
fn batch_reports_are_byte_identical_at_every_worker_count() {
    let specs = specs();
    let mut reports = Vec::new();
    for workers in [1, 2, 4] {
        let cache = PipelineCache::default();
        let report = run_batch(
            &specs,
            &cache,
            &BatchConfig {
                workers,
                queue_cap: 8,
                ..BatchConfig::default()
            },
        );
        reports.push(report.to_json(false));
    }
    assert_eq!(reports[0], reports[1], "-j1 vs -j2");
    assert_eq!(reports[0], reports[2], "-j1 vs -j4");
    // The jobs actually ran: a C-- halt and both MiniM3 results.
    assert!(reports[0].contains("\"outcome\": \"halt [45]\""));
    assert!(reports[0].contains("\"outcome\": \"result 6\""));
}

#[test]
fn checkpointed_batches_are_deterministic_and_outcome_preserving() {
    // `--snapshot-every` slices each job's fuel budget and runs a full
    // capture → encode → decode → restore cycle at every boundary. Two
    // promises: the timing-stripped report (now carrying snapshot
    // counts, bytes, and blob digests) stays byte-identical at every
    // worker count, and the checkpointing changes *nothing* observable
    // about any job — outcome, yields, instruction count.
    let specs = specs();
    let plain = run_batch(
        &specs,
        &PipelineCache::default(),
        &BatchConfig {
            queue_cap: 8,
            ..BatchConfig::default()
        },
    );
    let mut snapped = Vec::new();
    for workers in [1, 2, 8] {
        let report = run_batch(
            &specs,
            &PipelineCache::default(),
            &BatchConfig {
                workers,
                queue_cap: 8,
                snapshot_every: Some(16),
                ..BatchConfig::default()
            },
        );
        snapped.push(report);
    }
    let json: Vec<String> = snapped.iter().map(|r| r.to_json(false)).collect();
    assert_eq!(json[0], json[1], "-j1 vs -j2");
    assert_eq!(json[0], json[2], "-j1 vs -j8");
    assert!(json[0].contains("\"snapshots\": "), "{}", json[0]);
    for (p, s) in plain.jobs.iter().zip(&snapped[0].jobs) {
        assert_eq!(p.outcome, s.outcome, "job {} `{}`", p.id, p.name);
        assert_eq!(p.yields, s.yields, "job {} `{}`", p.id, p.name);
        assert_eq!(
            p.instructions, s.instructions,
            "job {} `{}`: checkpointing changed the work count",
            p.id, p.name
        );
        assert!(p.snap.is_none(), "plain runs carry no snapshot row");
    }
    let total: u64 = snapped[0]
        .jobs
        .iter()
        .filter_map(|j| j.snap)
        .map(|s| s.count)
        .sum();
    assert!(total > 0, "no job ever crossed a slice boundary at 16 fuel");
}

#[test]
fn a_batch_over_a_fresh_cache_still_finishes_warm() {
    let specs = specs();
    let cache = PipelineCache::default();
    let report = run_batch(
        &specs,
        &cache,
        &BatchConfig {
            workers: 4,
            queue_cap: 8,
            ..BatchConfig::default()
        },
    );
    let snap = report.cache;
    assert!(snap.hits > 0, "phase C must refetch phase A's compiles");
    assert!(snap.misses > 0, "a fresh cache must actually compile");
    assert_eq!(snap.evictions, 0, "no budget pressure in this batch");
    // Counters are scheduling-independent: a -j1 run over its own
    // fresh cache lands on identical totals.
    let cache1 = PipelineCache::default();
    let report1 = run_batch(
        &specs,
        &cache1,
        &BatchConfig {
            workers: 1,
            queue_cap: 8,
            ..BatchConfig::default()
        },
    );
    assert_eq!(report1.cache.hits, snap.hits);
    assert_eq!(report1.cache.misses, snap.misses);
}
