//! The serve determinism wall (ISSUE 10, satellite 1): the execution
//! service schedules on the virtual cost-model clock over a fixed lane
//! count, so the scheduler event log, the deterministic metrics JSON,
//! and every non-wall figure of the load report must be byte-identical
//! no matter how many OS workers actually run the slices.
//!
//! Also here: the acceptance-scale run (≥ 1000 concurrently parked
//! threads over ≤ 8 workers with cross-tier migrations), a five-engine
//! agreement check through the service API, and the per-tenant
//! resource-governor boundary.

use cmm_serve::{
    acceptance_profile, dispatcher_fill, load_config, run_load, LoadProfile, LoadReport,
    MigrationPolicy, ServeConfig, Service, SubmitReq, ThreadState,
};
use cmm_snap::EngineId;

/// Everything in a [`LoadReport`] except the wall-clock rates, which
/// legitimately vary run to run.
fn deterministic_view(r: &LoadReport) -> Vec<(&'static str, u64)> {
    vec![
        ("threads", r.threads),
        ("completed", r.completed),
        ("yields", r.yields),
        ("migrations", r.migrations),
        ("parked_high_water", r.parked_high_water),
        ("quanta", r.quanta),
        ("virtual_ns", r.virtual_ns),
        ("virtual_rps", r.virtual_rps),
        ("queue_wait_p50", r.queue_wait_p50),
        ("queue_wait_p99", r.queue_wait_p99),
        ("turnaround_p50", r.turnaround_p50),
        ("turnaround_p99", r.turnaround_p99),
        ("event_digest", r.event_digest),
    ]
}

#[test]
fn the_event_log_and_metrics_are_byte_identical_across_worker_counts() {
    let profile = LoadProfile {
        tenants: 5,
        threads_per_tenant: 9,
        quanta: 0,
        seed: 41,
    };
    let runs: Vec<_> = [1usize, 4, 8]
        .iter()
        .map(|&workers| {
            let (svc, report) = run_load(load_config(workers), &profile);
            let metrics = svc
                .registry()
                .expect("load_config turns metrics on")
                .to_json(false);
            (svc.events_text(), metrics, report)
        })
        .collect();
    let (ref events1, ref metrics1, ref report1) = runs[0];
    assert!(report1.completed == report1.threads, "all finish");
    assert!(report1.yields > 0, "the mix must exercise the yield path");
    assert!(report1.migrations > 0, "rotation must actually migrate");
    for (events, metrics, report) in &runs[1..] {
        assert_eq!(events1, events, "event logs diverged across -j");
        assert_eq!(metrics1, metrics, "deterministic metrics diverged");
        assert_eq!(deterministic_view(report1), deterministic_view(report));
    }
}

#[test]
fn a_thousand_parked_threads_ride_eight_workers_with_migrations() {
    let profile = acceptance_profile();
    assert!(profile.tenants * profile.threads_per_tenant >= 1000);
    let (svc, report) = run_load(load_config(8), &profile);
    assert_eq!(report.completed, report.threads);
    assert!(
        report.parked_high_water >= 1000,
        "expected >= 1000 concurrently parked threads, saw {}",
        report.parked_high_water
    );
    assert!(report.migrations >= 1, "no cross-tier migration happened");
    let stats = svc.stats();
    assert_eq!(stats.completed, report.completed);
    assert_eq!(stats.migrations, report.migrations);
    assert!(svc.idle(), "the drained service must report idle");
}

/// One yield-bearing program on all five engines: the sequence of yield
/// codes handed to the tenant and the final halt value must agree
/// everywhere, even though each engine counts cost differently.
#[test]
fn all_five_engines_agree_through_the_service_api() {
    const SRC: &str = r#"
        f(bits32 a, bits32 b) {
            bits32 r, i;
            r = a + b;
            i = b;
          loop:
            if i == 0 { return (r); } else {
                r = mid(r + i) also unwinds to k;
                i = i - 1;
                goto loop;
            }
            continuation k(r):
            return (r + 1);
        }
        mid(bits32 x) {
            bits32 r;
            r = g(x) also unwinds to ku;
            return (r);
            continuation ku(r):
            return (r + 100);
        }
        g(bits32 x) { yield(x | 1) also aborts; return (x); }
    "#;
    let mut transcripts: Vec<(EngineId, Vec<u64>, String)> = Vec::new();
    for engine in EngineId::ALL {
        let mut svc = Service::new(ServeConfig {
            workers: 2,
            quantum: 5_000,
            migration: MigrationPolicy::Pinned,
            ..ServeConfig::default()
        });
        let id = svc
            .submit(SubmitReq {
                tenant: "agree".into(),
                name: "five".into(),
                source: SRC.into(),
                entry: "f".into(),
                args: vec![4, 10],
                results: 1,
                engine,
                ..SubmitReq::default()
            })
            .unwrap();
        let mut codes = Vec::new();
        let outcome = loop {
            svc.tick();
            match svc.poll(id).expect("thread exists").state {
                ThreadState::AwaitingTenant { code } => {
                    codes.push(code);
                    svc.resume(id, u64::from(dispatcher_fill(code))).unwrap();
                }
                ThreadState::Done { outcome } => break outcome,
                ThreadState::Runnable => {}
            }
        };
        transcripts.push((engine, codes, outcome));
    }
    let (_, ref codes0, ref outcome0) = transcripts[0];
    assert!(
        !codes0.is_empty(),
        "the program must yield at least once (outcome: {outcome0})"
    );
    assert!(outcome0.starts_with("halt ["), "unexpected: {outcome0}");
    for (engine, codes, outcome) in &transcripts[1..] {
        let name = engine.name();
        assert_eq!(codes0, codes, "yield transcript diverged on {name}");
        assert_eq!(outcome0, outcome, "outcome diverged on {name}");
    }
}

/// A tenant that exhausts its fuel budget is reported as such without
/// disturbing a well-behaved neighbour in the same tick.
#[test]
fn a_fuel_bankrupt_tenant_does_not_disturb_its_neighbour() {
    const SPIN: &str = r#"
        f(bits32 a, bits32 b) {
            bits32 i;
            i = 0;
          loop:
            if i == a { return (i); }
            i = i + 1;
            goto loop;
        }
    "#;
    let mut svc = Service::new(ServeConfig {
        workers: 2,
        quantum: 500,
        ..ServeConfig::default()
    });
    let broke = svc
        .submit(SubmitReq {
            tenant: "broke".into(),
            source: SPIN.into(),
            entry: "f".into(),
            args: vec![1_000_000, 0],
            results: 1,
            fuel: 2_000,
            ..SubmitReq::default()
        })
        .unwrap();
    let fine = svc
        .submit(SubmitReq {
            tenant: "fine".into(),
            source: SPIN.into(),
            entry: "f".into(),
            args: vec![50, 0],
            results: 1,
            ..SubmitReq::default()
        })
        .unwrap();
    while !svc.idle() {
        svc.tick();
    }
    match svc.poll(broke).unwrap().state {
        ThreadState::Done { outcome } => assert_eq!(outcome, "fuel"),
        other => panic!("expected a fuel verdict, got {other:?}"),
    }
    match svc.poll(fine).unwrap().state {
        ThreadState::Done { outcome } => assert_eq!(outcome, "halt [50]"),
        other => panic!("expected a halt, got {other:?}"),
    }
}
