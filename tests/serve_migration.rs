//! Cross-tier work migration through the service (ISSUE 10,
//! satellite 2): a thread parked as a snapshot blob on one engine tier
//! must resume on any other tier of the same family with no observable
//! difference — same yield transcript, same outcome, same injected
//! fault log — and the blob itself must be byte-portable once both
//! runs are back on the same tier.
//!
//! The chaos variant pins the seed search down so the fault schedule
//! *straddles* the migration point: at least one fault fires before
//! the thread first parks and at least one more after it resumes on
//! the other tier, so equivalence is not vacuous.

use cmm_chaos::FaultPlanState;
use cmm_serve::{dispatcher_fill, MigrationPolicy, ServeConfig, Service, SubmitReq, ThreadState};
use cmm_snap::{EngineId, Snapshot};

/// The yield-chain workload: `b` dispatch exchanges through an
/// `also unwinds to` chain (the snapshot-equivalence shape), so every
/// park crosses an activation stack with live continuations.
const SRC: &str = r#"
    f(bits32 a, bits32 b) {
        bits32 r, i;
        r = a + b;
        i = b;
      loop:
        if i == 0 { return (r); } else {
            r = mid(r + i) also unwinds to k;
            i = i - 1;
            goto loop;
        }
        continuation k(r):
        return (r + 1);
    }
    mid(bits32 x) {
        bits32 r;
        r = g(x) also unwinds to ku;
        return (r);
        continuation ku(r):
        return (r + 100);
    }
    g(bits32 x) { yield(x | 1) also aborts; return (x); }
"#;

/// Everything observable about one driven thread.
struct Driven {
    outcome: String,
    yields: Vec<u64>,
    migrations: u64,
    final_chaos: Option<FaultPlanState>,
    /// Parked blobs captured while awaiting the tenant, by yield
    /// ordinal (1-based).
    blobs: Vec<(usize, Vec<u8>)>,
}

/// Submits the workload on `from` and drives it to completion; with
/// `to`, migrates the thread at its `migrate_at`-th yield park. Large
/// quantum so every park is a yield park.
fn drive(from: EngineId, to: Option<(EngineId, usize)>, chaos: Option<u64>) -> Driven {
    let mut svc = Service::new(ServeConfig {
        workers: 2,
        quantum: 50_000,
        migration: MigrationPolicy::Pinned,
        ..ServeConfig::default()
    });
    let id = svc
        .submit(SubmitReq {
            tenant: "mig".into(),
            name: "straddle".into(),
            source: SRC.into(),
            entry: "f".into(),
            args: vec![7, 4],
            results: 1,
            engine: from,
            chaos,
            ..SubmitReq::default()
        })
        .unwrap();
    let mut seen = 0usize;
    let mut blobs = Vec::new();
    let outcome = loop {
        svc.tick();
        match svc.poll(id).expect("thread exists").state {
            ThreadState::AwaitingTenant { code } => {
                seen += 1;
                if let Some((target, migrate_at)) = to {
                    if seen == migrate_at {
                        svc.set_engine(id, target).expect("same-family move");
                    }
                }
                let blob = svc.parked_blob(id).expect("awaiting implies parked");
                blobs.push((seen, blob.to_vec()));
                svc.resume(id, u64::from(dispatcher_fill(code))).unwrap();
            }
            ThreadState::Done { outcome } => break outcome,
            ThreadState::Runnable => {}
        }
    };
    let view = svc.poll(id).unwrap();
    Driven {
        outcome,
        yields: view.yields,
        migrations: view.migrations,
        final_chaos: svc.final_chaos(id).cloned(),
        blobs,
    }
}

/// The tier pairs the acceptance criteria name, both directions.
fn family_pairs() -> Vec<(EngineId, EngineId)> {
    vec![
        (EngineId::VmDecoded, EngineId::VmFused),
        (EngineId::VmFused, EngineId::VmDecoded),
        (EngineId::Sem, EngineId::SemResolved),
        (EngineId::SemResolved, EngineId::Sem),
    ]
}

#[test]
fn a_migrated_thread_is_indistinguishable_from_a_pinned_one() {
    for (from, to) in family_pairs() {
        let pinned = drive(from, None, None);
        let migrated = drive(from, Some((to, 1)), None);
        let label = format!("{} -> {}", from.name(), to.name());
        assert!(migrated.migrations >= 1, "{label}: no migration recorded");
        assert_eq!(pinned.yields, migrated.yields, "{label}: yields");
        assert_eq!(pinned.outcome, migrated.outcome, "{label}: outcome");
        assert!(pinned.yields.len() >= 2, "{label}: migration not straddled");
        assert!(
            pinned.outcome.starts_with("halt ["),
            "{label}: {}",
            pinned.outcome
        );
    }
}

/// Once the migrated run is back on the destination tier, its parked
/// blob at the same yield ordinal is byte-identical to the blob of a
/// run pinned to that tier the whole way: the three VM tiers (and the
/// two sem machines) capture the identical portable state at matching
/// execution points, so the snapshot — digest included — carries no
/// trace of where the early slices ran.
#[test]
fn the_parked_blob_is_byte_portable_once_tiers_converge() {
    for (from, to) in [
        (EngineId::VmDecoded, EngineId::VmFused),
        (EngineId::Sem, EngineId::SemResolved),
    ] {
        let pinned = drive(to, None, None);
        let migrated = drive(from, Some((to, 1)), None);
        let label = format!("{} -> {}", from.name(), to.name());
        // Yield ordinal 2 is the first park taken on `to` in both runs.
        let pb = &pinned.blobs.iter().find(|(n, _)| *n == 2).unwrap().1;
        let mb = &migrated.blobs.iter().find(|(n, _)| *n == 2).unwrap().1;
        assert_eq!(pb, mb, "{label}: post-migration blobs diverge");
        let snap = Snapshot::decode(mb).unwrap();
        assert_eq!(snap.engine, to, "{label}: blob stamped with wrong tier");
        // And the ordinal-1 blobs differ only by the capturing tier:
        // re-stamping the engine makes them byte-equal too.
        let p1 = Snapshot::decode(&pinned.blobs[0].1).unwrap();
        let mut m1 = Snapshot::decode(&migrated.blobs[0].1).unwrap();
        assert_eq!(m1.engine, from, "{label}: first park ran on `from`");
        m1.engine = p1.engine;
        assert_eq!(p1.encode(), m1.encode(), "{label}: state not portable");
    }
}

#[test]
fn fault_logs_agree_under_a_chaos_schedule_that_straddles_the_migration() {
    for (from, to) in family_pairs() {
        let label = format!("{} -> {}", from.name(), to.name());
        // The chaos ops are the Table-1 dispatcher operations, so the
        // first faultable point is the resume after the first park.
        // Migrating at the *second* park therefore lets a schedule
        // straddle the move: find a seed with at least one fault
        // logged in the ordinal-2 blob (pre-migration) and at least
        // one more after it (the resume runs on the new tier).
        let mut found = None;
        for seed in 1..400u64 {
            let probe = drive(from, None, Some(seed));
            if probe.yields.len() < 2 {
                continue;
            }
            let at_park = Snapshot::decode(&probe.blobs[1].1)
                .unwrap()
                .chaos
                .map_or(0, |c| c.log.len());
            let final_len = probe.final_chaos.as_ref().map_or(0, |c| c.log.len());
            if at_park >= 1 && final_len > at_park {
                found = Some((seed, probe));
                break;
            }
        }
        let (seed, pinned) =
            found.unwrap_or_else(|| panic!("{label}: no straddling seed in range"));
        let migrated = drive(from, Some((to, 2)), Some(seed));
        assert!(migrated.migrations >= 1, "{label}: no migration recorded");
        assert_eq!(pinned.yields, migrated.yields, "{label}: yields");
        assert_eq!(pinned.outcome, migrated.outcome, "{label}: outcome");
        assert_eq!(
            pinned.final_chaos, migrated.final_chaos,
            "{label}: fault logs diverged across migration (seed {seed})"
        );
        let faults = migrated.final_chaos.as_ref().unwrap().log.len();
        assert!(faults >= 2, "{label}: vacuous chaos schedule");
    }
}

/// The serve path refuses a cross-family move with the same structured
/// diagnostic `cmm resume --engine` gives: both engines, both
/// families, and the blob digest.
#[test]
fn a_cross_family_move_is_refused_with_the_structured_diagnostic() {
    let mut svc = Service::new(ServeConfig {
        workers: 1,
        quantum: 50_000,
        migration: MigrationPolicy::Pinned,
        ..ServeConfig::default()
    });
    let id = svc
        .submit(SubmitReq {
            tenant: "mig".into(),
            source: SRC.into(),
            entry: "f".into(),
            args: vec![7, 4],
            results: 1,
            engine: EngineId::VmDecoded,
            ..SubmitReq::default()
        })
        .unwrap();
    // Fresh thread, no blob yet: refused on the submitted tier.
    let err = svc.set_engine(id, EngineId::Sem).unwrap_err();
    assert!(err.contains("engine families differ"), "{err}");
    assert!(err.contains("vm-decoded") && err.contains("sem"), "{err}");
    // Parked thread: refused on the blob, digest named.
    while svc.awaiting().is_empty() {
        svc.tick();
    }
    let digest = {
        let snap = Snapshot::decode(svc.parked_blob(id).unwrap()).unwrap();
        cmm_snap::digest_hex(snap.digest)
    };
    let err = svc.set_engine(id, EngineId::SemResolved).unwrap_err();
    assert!(err.contains("engine families differ"), "{err}");
    assert!(err.contains(&digest), "{err} should name digest {digest}");
    // The same-family move still succeeds afterwards.
    svc.set_engine(id, EngineId::VmFused).unwrap();
}
