//! Concurrency suite for the `cmm-pool` scaling work: the sharded
//! single-flight cache and the batched-collection executor, attacked
//! from the outside with racing threads.
//!
//! The cache tests use **synthetic digests** (the cache keys on the
//! digest value, not the source), which buys two things: digests can be
//! aimed at specific shards (`Digest(n)` lands on shard `n % SHARDS`),
//! and every artifact can be the same tiny module so byte costs are
//! known exactly and LRU arithmetic is checkable by hand.
//!
//! Two properties carry the suite:
//!
//! * **Single-flight**: however many threads race `get_or_build` on a
//!   digest, exactly one build runs, and the hit/miss totals are a pure
//!   function of the request multiset — scheduling never shows up in
//!   the counters (eviction-free workloads).
//! * **Global LRU**: eviction order follows the global clock across
//!   shard boundaries, and the byte budget holds at quiescence no
//!   matter how many threads were inserting.

use cmm_pool::{
    run_jobs, run_jobs_ctx, Artifact, CacheConfig, Digest, JobOutcome, PipelineCache, PoolConfig,
    Stage, SHARDS,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

const TINY: &str = "f(bits32 a) { return (a + 1); }";

/// A ready-made artifact with a known, repeatable byte cost.
fn tiny_artifact() -> Artifact {
    let m = cmm_parse::parse_module(TINY).expect("tiny module parses");
    Artifact::Module(Arc::new(m))
}

fn tiny_cost() -> u64 {
    tiny_artifact().cost_bytes()
}

/// `THREADS` threads race `get_or_build` over `DIGESTS` overlapping
/// digests (every thread requests every digest, in a thread-dependent
/// order). Exactly one build per digest, and the totals are exact:
/// `DIGESTS` misses, `THREADS * DIGESTS - DIGESTS` hits, however the
/// scheduler interleaved them.
#[test]
fn racing_threads_compile_each_digest_exactly_once() {
    const THREADS: usize = 8;
    const DIGESTS: u64 = 24; // spans all 16 shards, some twice
    let cache = PipelineCache::default();
    let builds = AtomicUsize::new(0);
    let gate = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let builds = &builds;
            let gate = &gate;
            s.spawn(move || {
                gate.wait();
                for i in 0..DIGESTS {
                    // Each thread walks the digests from a different
                    // starting point so shard locks are contended from
                    // all sides at once.
                    let d = Digest(u128::from((i + t as u64) % DIGESTS));
                    let art = cache
                        .get_or_build(d, Stage::Module, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            Ok(tiny_artifact())
                        })
                        .expect("build succeeds");
                    assert!(matches!(art, Artifact::Module(_)));
                }
            });
        }
    });
    assert_eq!(builds.load(Ordering::Relaxed) as u64, DIGESTS);
    let snap = cache.snapshot();
    assert_eq!(snap.misses, DIGESTS, "one miss per digest");
    assert_eq!(snap.hits, (THREADS as u64) * DIGESTS - DIGESTS);
    assert_eq!(snap.evictions, 0, "default budget never evicts this");
    assert_eq!(snap.resident_bytes, DIGESTS * tiny_cost());
}

/// The per-shard split of the counters is a pure function of the
/// digests (shard = digest mod `SHARDS`), so two independent racing
/// runs of the same workload produce identical per-shard snapshots —
/// and the shards always sum to the aggregate.
#[test]
fn per_shard_stats_are_scheduling_independent_and_sum_to_the_aggregate() {
    const THREADS: usize = 6;
    const DIGESTS: u64 = 40;
    let run = || {
        let cache = PipelineCache::default();
        let gate = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = &cache;
                let gate = &gate;
                s.spawn(move || {
                    gate.wait();
                    for i in 0..DIGESTS {
                        let d = Digest(u128::from((i * 7 + t as u64 * 11) % DIGESTS));
                        cache
                            .get_or_build(d, Stage::Module, || Ok(tiny_artifact()))
                            .expect("build succeeds");
                    }
                });
            }
        });
        (cache.snapshot(), cache.shard_snapshots())
    };
    let (total_a, shards_a) = run();
    let (total_b, shards_b) = run();
    assert_eq!(shards_a.len(), SHARDS);

    // Scheduling independence: everything except `inflight_waits`
    // (which genuinely depends on who lost each race) is identical
    // across runs, shard by shard.
    for (i, (a, b)) in shards_a.iter().zip(&shards_b).enumerate() {
        assert_eq!((a.hits, a.misses), (b.hits, b.misses), "shard {i}");
        assert_eq!(a.evictions, b.evictions, "shard {i}");
        assert_eq!(a.resident_bytes, b.resident_bytes, "shard {i}");
    }

    // The shards sum to the aggregate exactly.
    let sum = |f: fn(&cmm_obs::CacheSnapshot) -> u64| shards_a.iter().map(f).sum::<u64>();
    assert_eq!(sum(|s| s.hits), total_a.hits);
    assert_eq!(sum(|s| s.misses), total_a.misses);
    assert_eq!(sum(|s| s.evictions), total_a.evictions);
    assert_eq!(sum(|s| s.inflight_waits), total_a.inflight_waits);
    assert_eq!(sum(|s| s.resident_bytes), total_a.resident_bytes);
    assert_eq!(total_a.misses, total_b.misses);
    assert_eq!(total_a.hits, total_b.hits);
}

/// Eviction follows the **global** LRU clock across shard boundaries.
/// Digests 1..=4 land on four different shards; with a budget of three
/// artifacts, refreshing digest 1 before inserting digest 4 must send
/// digest 2 — on another shard — out, and keep digest 1 in.
#[test]
fn lru_eviction_crosses_shard_boundaries_in_clock_order() {
    let cost = tiny_cost();
    let cache = PipelineCache::new(CacheConfig {
        max_bytes: 3 * cost,
    });
    let build = || Ok(tiny_artifact());
    let get = |n: u128| {
        cache
            .get_or_build(Digest(n), Stage::Module, build)
            .expect("build succeeds")
    };
    get(1);
    get(2);
    get(3); // full: 1, 2, 3 in clock order
    get(1); // refresh 1: now 2 is globally oldest
    get(4); // over budget: 2 must go, though it lives on its own shard
    let snap = cache.snapshot();
    assert_eq!(snap.evictions, 1);
    assert_eq!(snap.resident_bytes, 3 * cost);

    let before = cache.snapshot();
    get(1); // still resident: hit
    get(3); // still resident: hit
    let snap = cache.snapshot();
    assert_eq!(snap.hits, before.hits + 2, "1 and 3 survived");
    get(2); // evicted: rebuilt
    assert_eq!(cache.snapshot().misses, before.misses + 1, "2 was evicted");
}

/// Racing inserts against a tight byte budget: at quiescence the
/// resident estimate fits the budget, the counters balance (entries
/// in = entries out + entries resident), and the cache still serves
/// correct artifacts.
#[test]
fn byte_budget_holds_under_concurrent_insertion_pressure() {
    const THREADS: usize = 8;
    const DIGESTS: u64 = 32;
    const ROUNDS: u64 = 3;
    let cost = tiny_cost();
    let budget_entries = 5u64;
    let cache = PipelineCache::new(CacheConfig {
        max_bytes: budget_entries * cost,
    });
    let gate = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let gate = &gate;
            s.spawn(move || {
                gate.wait();
                for round in 0..ROUNDS {
                    for i in 0..DIGESTS {
                        let d = Digest(u128::from((i + t as u64 + round * 5) % DIGESTS));
                        cache
                            .get_or_build(d, Stage::Module, || Ok(tiny_artifact()))
                            .expect("build succeeds");
                    }
                }
            });
        }
    });
    let snap = cache.snapshot();
    assert!(
        snap.resident_bytes <= budget_entries * cost,
        "over budget at quiescence: {} > {}",
        snap.resident_bytes,
        budget_entries * cost
    );
    assert!(snap.evictions > 0, "32 digests through 5 slots must evict");
    // Each miss inserted one entry; each eviction removed one; what's
    // left is exactly the resident byte count.
    assert_eq!(
        (snap.misses - snap.evictions) * cost,
        snap.resident_bytes,
        "entry bookkeeping balances"
    );
    assert_eq!(
        snap.hits + snap.misses,
        (THREADS as u64) * ROUNDS * DIGESTS,
        "every request was counted exactly once"
    );
}

/// Backpressure: with a tiny queue and more jobs than slots, the
/// injector's high-water mark never exceeds the configured bound —
/// submission genuinely blocks instead of buffering.
#[test]
fn submission_backpressure_bounds_the_queue() {
    let config = PoolConfig {
        workers: 2,
        queue_cap: 4,
    };
    let (outcomes, stats) = run_jobs_ctx(
        &config,
        (0..64u64).collect(),
        |_| (),
        |(), _, n| {
            // Slow consumers so the submitter actually hits the cap.
            std::thread::sleep(std::time::Duration::from_micros(200));
            n * 2
        },
    );
    assert!(
        stats.queue_high_water <= 4,
        "queue grew past its cap: {}",
        stats.queue_high_water
    );
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o, &JobOutcome::Done(i as u64 * 2), "job {i}");
    }
}

/// A panicking job at `-j8` is isolated: its slot reports `Panicked`
/// with the payload text, every other job completes normally, and the
/// worker that caught the panic rebuilt its context rather than
/// carrying a half-mutated one forward.
#[test]
fn a_panicking_job_at_j8_poisons_nothing_else() {
    const JOBS: usize = 200;
    const CULPRIT: usize = 77;
    let config = PoolConfig {
        workers: 8,
        queue_cap: 16,
    };
    let (outcomes, stats) = run_jobs_ctx(
        &config,
        (0..JOBS).collect(),
        |_| 0u64, // per-worker tally, rebuilt after a panic
        |tally, _, n| {
            if n == CULPRIT {
                panic!("job {n} exploded");
            }
            *tally += 1;
            n * n
        },
    );
    assert_eq!(outcomes.len(), JOBS);
    for (i, o) in outcomes.iter().enumerate() {
        if i == CULPRIT {
            match o {
                JobOutcome::Panicked(msg) => {
                    assert!(msg.contains("job 77 exploded"), "unexpected payload: {msg}")
                }
                other => panic!("culprit slot holds {other:?}"),
            }
        } else {
            assert_eq!(o, &JobOutcome::Done(i * i), "job {i}");
        }
    }
    assert_eq!(stats.ctx_rebuilds, 1, "one panic, one context rebuild");
}

/// Result order equals submission order at every worker count: a
/// 200-job batch produces the same outcome vector at `-j1`, `-j3`, and
/// `-j8`, element for element.
#[test]
fn two_hundred_jobs_come_back_in_submission_order_at_every_j() {
    const JOBS: u64 = 200;
    let run = |workers: usize| {
        let config = PoolConfig {
            workers,
            queue_cap: 8,
        };
        run_jobs(&config, (0..JOBS).collect(), |i, n| {
            assert_eq!(i as u64, n, "index/item pairing is preserved");
            n.wrapping_mul(2654435761) >> 7
        })
    };
    let j1 = run(1);
    let j3 = run(3);
    let j8 = run(8);
    assert_eq!(j1.len(), JOBS as usize);
    assert_eq!(j1, j3, "-j1 vs -j3");
    assert_eq!(j1, j8, "-j1 vs -j8");
}

/// The full stack under racing workers: jobs funnel through the real
/// executor into the real sharded cache, and single-flight still holds
/// — 64 jobs over 8 digests build each digest exactly once.
#[test]
fn executor_plus_cache_still_single_flights() {
    let cache = PipelineCache::default();
    let builds = AtomicUsize::new(0);
    let config = PoolConfig {
        workers: 8,
        queue_cap: 16,
    };
    let outcomes = run_jobs(&config, (0..64u64).collect(), |_, n| {
        let art = cache
            .get_or_build(Digest(u128::from(n % 8)), Stage::Module, || {
                builds.fetch_add(1, Ordering::Relaxed);
                Ok(tiny_artifact())
            })
            .expect("build succeeds");
        matches!(art, Artifact::Module(_))
    });
    assert!(outcomes.iter().all(|o| o == &JobOutcome::Done(true)));
    assert_eq!(builds.load(Ordering::Relaxed), 8, "one build per digest");
    let snap = cache.snapshot();
    assert_eq!((snap.hits, snap.misses), (56, 8));
}
