//! Golden tests for the paper's figures: the exact programs of
//! Figures 1, 5/6, and the Appendix A shapes, run end to end.

use cmm_core::sem::{Machine, Status, Value};
use cmm_core::Compiler;
use cmm_opt::ssa::{ssa_to_string, Ssa};

const FIGURE_1: &str = r#"
    /* Ordinary recursion */
    export sp1;
    sp1(bits32 n) {
        bits32 s, p;
        if n == 1 {
            return (1, 1);
        } else {
            s, p = sp1(n - 1);
            return (s + n, p * n);
        }
    }

    /* Tail recursion */
    export sp2;
    sp2(bits32 n) {
        jump sp2_help(n, 1, 1);
    }
    sp2_help(bits32 n, bits32 s, bits32 p) {
        if n == 1 {
            return (s, p);
        } else {
            jump sp2_help(n - 1, s + n, p * n);
        }
    }

    /* Loops */
    export sp3;
    sp3(bits32 n) {
        bits32 s, p;
        s = 1; p = 1;
      loop:
        if n == 1 {
            return (s, p);
        } else {
            s = s + n;
            p = p * n;
            n = n - 1;
            goto loop;
        }
    }
"#;

#[test]
fn figure1_sum_and_product() {
    let c = Compiler::new().source(FIGURE_1).unwrap();
    for proc in ["sp1", "sp2", "sp3"] {
        for n in [1u32, 2, 5, 12] {
            let expect_sum: u32 = (1..=n).sum();
            let expect_prod: u32 = (1..=n).product();
            let vals = c.interpret(proc, vec![Value::b32(n)]).unwrap();
            assert_eq!(
                vals,
                vec![Value::b32(expect_sum), Value::b32(expect_prod)],
                "{proc}({n}) on the abstract machine"
            );
            let (vm, _) = c.execute(proc, &[u64::from(n)], 2).unwrap();
            assert_eq!(
                vm,
                vec![u64::from(expect_sum), u64::from(expect_prod)],
                "{proc}({n}) on the simulated target"
            );
        }
    }
}

#[test]
fn figure1_unoptimized_matches_optimized() {
    let plain = Compiler::new()
        .options(cmm_opt::OptOptions::none())
        .source(FIGURE_1)
        .unwrap();
    let opt = Compiler::new().source(FIGURE_1).unwrap();
    for proc in ["sp1", "sp2", "sp3"] {
        assert_eq!(
            plain.interpret(proc, vec![Value::b32(9)]).unwrap(),
            opt.interpret(proc, vec![Value::b32(9)]).unwrap()
        );
    }
}

/// Figure 5's example procedure and its Figure 6 SSA form.
const FIGURE_5: &str = r#"
    f(bits32 a) {
        bits32 b, c, d;
        b = a;
        c = a;
        b, c = g() also unwinds to k;
        c = b + c + a;
        return (c);
        continuation k(d):
        return (b + d);
    }
    g() { return (1, 2); }
"#;

#[test]
fn figure6_ssa_numbering() {
    let prog = cmm_cfg::build_program(&cmm_parse::parse_module(FIGURE_5).unwrap()).unwrap();
    let g = prog.proc("f").unwrap();
    let ssa = Ssa::build(g);
    assert!(ssa.verify(g).is_empty());
    let rendered = ssa_to_string(g, &ssa);
    // The figure's essence: b and c each have multiple SSA versions
    // (the parameters copied in, the assignments, the call results).
    for needle in ["b.1", "b.2", "c.1", "c.2"] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
    // The continuation is reachable only through the call's unwind
    // edge, and its use of b resolves to a version that dominates the
    // call — checked by verify() above.
    let normal = c_runs_figure5(&prog);
    assert_eq!(normal, vec![Value::b32(1 + 2 + 7)]);
}

fn c_runs_figure5(prog: &cmm_cfg::Program) -> Vec<Value> {
    let mut m = Machine::new(prog);
    m.start("f", vec![Value::b32(7)]).unwrap();
    match m.run(100_000) {
        Status::Terminated(vals) => vals,
        other => panic!("figure 5 did not terminate: {other:?}"),
    }
}

/// The paper's §4.1 example shape: passing a continuation to a callee
/// that cuts to it.
const SECTION_4_1: &str = r#"
        f(bits32 x) {
            bits32 y, r;
            float64 w;
            y = x + 1;
            r = g(x, k) also cuts to k;
            return (r);
            continuation k(x):
            return (x + y);
        }
        g(bits32 x, bits32 kk) {
            if x > 10 { cut to kk(100); }
            return (x);
        }
    "#;

#[test]
fn section41_cut_example() {
    let c = Compiler::new().source(SECTION_4_1).unwrap();
    assert_eq!(
        c.interpret("f", vec![Value::b32(3)]).unwrap(),
        vec![Value::b32(3)]
    );
    assert_eq!(
        c.interpret("f", vec![Value::b32(20)]).unwrap(),
        vec![Value::b32(121)]
    );
    let (vm, _) = c.execute("f", &[20], 1).unwrap();
    assert_eq!(vm, vec![121]);
}

/// Figure 10's shape in raw C--: a dynamic exception stack of
/// continuations with `cut to` dispatch.
const FIGURE_10: &str = r#"
        register bits32 exn_top;
        data exn_stack { space 256; }
        data BadMove { string "BadMove"; }
        data Other   { string "Other"; }

        raise_exn(bits32 tag, bits32 val) {
            bits32 k1;
            k1 = bits32[exn_top];
            exn_top = exn_top - 4;
            cut to k1(tag, val);
            return (0);
        }

        tryAMove(bits32 n) {
            bits32 t, exn_tag, arg;
            exn_top = exn_top + 4;
            bits32[exn_top] = k;
            t = mayRaise(n) also cuts to k also aborts;
            exn_top = exn_top - 4;
            return (t);
            continuation k(exn_tag, arg):
            if exn_tag == BadMove {
                return (arg + 1000);
            } else {
                return (7777);
            }
        }

        mayRaise(bits32 n) {
            bits32 r;
            if n > 10 {
                r = raise_exn(BadMove, n) also aborts;
            }
            return (n);
        }

        main(bits32 n) {
            bits32 r;
            exn_top = exn_stack;
            r = tryAMove(n) also aborts;
            return (r);
        }
    "#;

#[test]
fn figure10_shape_in_raw_cmm() {
    let c = Compiler::new().source(FIGURE_10).unwrap();
    assert_eq!(
        c.interpret("main", vec![Value::b32(5)]).unwrap(),
        vec![Value::b32(5)]
    );
    assert_eq!(
        c.interpret("main", vec![Value::b32(50)]).unwrap(),
        vec![Value::b32(1050)]
    );
    let (vm, _) = c.execute("main", &[50], 1).unwrap();
    assert_eq!(vm, vec![1050]);
}

/// Pretty-print ∘ re-parse is the identity (up to AST equality) on
/// every figure program above — the same round-trip invariant
/// `cmm-difftest` enforces on each generated case.
#[test]
fn figure_programs_round_trip_through_the_pretty_printer() {
    let figures = [
        ("figure 1", FIGURE_1),
        ("figure 5", FIGURE_5),
        ("section 4.1", SECTION_4_1),
        ("figure 10", FIGURE_10),
    ];
    for (name, src) in figures {
        let module = cmm_parse::parse_module(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let errors = cmm_ir::verify_module(&module);
        assert!(
            errors.is_empty(),
            "{name}: verifier rejects the figure: {errors:?}"
        );
        let printed = cmm_ir::pretty::module_to_string(&module);
        let reparsed = cmm_parse::parse_module(&printed)
            .unwrap_or_else(|e| panic!("{name}: pretty output does not re-parse: {e}\n{printed}"));
        assert_eq!(
            reparsed, module,
            "{name}: round trip changed the AST\n{printed}"
        );
    }
}
