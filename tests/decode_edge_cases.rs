//! Edge cases for the pre-decoded/pre-resolved/fused engines' *decode
//! time*: shapes that stress index resolution and window formation
//! rather than execution — empty procedures, continuations nothing
//! ever targets, programs pushed past the small-index boundaries,
//! fusable sequences split by control-flow boundaries — plus the
//! checked-in corpus reproducers replayed on the new engines, and a
//! golden disassembly table covering every fused opcode.
//!
//! Each case asserts the new engine's observation equals the reference
//! engine's, using the `cmm-difftest` oracle observers.

use cmm_cfg::Program;
use cmm_difftest::{
    observe_sem, observe_sem_resolved, observe_vm, observe_vm_decoded, observe_vm_fused, Limits,
};
use cmm_vm::{DInst, DOp, DecodedCode, FInst, FOp, FusedCode, VmProgram};
use std::fmt::Write as _;
use std::sync::Arc;

fn build(src: &str) -> Program {
    let module = cmm_parse::parse_module(src).expect("program parses");
    cmm_cfg::build_program(&module).expect("program builds")
}

/// Asserts both new engines observe exactly what their reference
/// engines observe on `src` at entry `f(args)`.
fn engines_agree(src: &str, args: (u32, u32)) {
    let limits = Limits::default();
    let prog = build(src);
    let (reference, ref_detail) = observe_sem(&prog, args, &limits);
    let (resolved, detail) = observe_sem_resolved(&prog, args, &limits);
    assert_eq!(
        resolved,
        reference,
        "resolved sem diverged: reference {}, observed {}",
        reference.describe(&ref_detail),
        resolved.describe(&detail)
    );
    let vp = cmm_vm::compile(&prog).expect("program compiles");
    let (vm_ref, vm_ref_detail) = observe_vm(&vp, args, &limits);
    let (decoded, detail) = observe_vm_decoded(&vp, args, &limits);
    assert_eq!(
        decoded,
        vm_ref,
        "decoded vm diverged: reference {}, observed {}",
        vm_ref.describe(&vm_ref_detail),
        decoded.describe(&detail)
    );
    let (fused, detail) = observe_vm_fused(&vp, args, &limits);
    assert_eq!(
        fused,
        vm_ref,
        "fused vm diverged: reference {}, observed {}",
        vm_ref.describe(&vm_ref_detail),
        fused.describe(&detail)
    );
}

/// Compiles `src` and returns its decoded and fused streams for
/// structural assertions on window formation.
fn streams(src: &str) -> (VmProgram, Arc<DecodedCode>, FusedCode) {
    let prog = build(src);
    let vp = cmm_vm::compile(&prog).expect("program compiles");
    let plain = Arc::new(DecodedCode::decode(&vp));
    let fused = FusedCode::fuse(&vp, plain.clone());
    (vp, plain, fused)
}

/// Every statically-visible control transfer target (branch, jump,
/// call) in `plain`.
fn static_targets(plain: &DecodedCode) -> Vec<u32> {
    plain
        .insts
        .iter()
        .filter_map(|i: &DInst| match i.op {
            DOp::Bz | DOp::Bnz | DOp::Jmp | DOp::Call => Some(i.imm),
            _ => None,
        })
        .collect()
}

/// Asserts no fused window absorbs any of `targets` as an interior:
/// a transfer must always land on a window head, or execution would
/// teleport into the middle of a superinstruction.
fn assert_targets_are_window_heads(fused: &FusedCode, targets: &[u32]) {
    for (pc, fi) in fused.insts.iter().enumerate() {
        if fi.n <= 1 {
            continue;
        }
        for &t in targets {
            let t = t as usize;
            assert!(
                !(pc < t && t < pc + fi.n as usize),
                "target {t} is an interior of the window at {pc} (width {})",
                fi.n
            );
        }
    }
}

/// Procedures whose bodies are a bare `return;` decode to the minimal
/// node/instruction stream and still run.
#[test]
fn empty_procs_decode_and_run() {
    engines_agree(
        r#"
            e() { return; }
            e2(bits32 x) { return; }
            f(bits32 a, bits32 b) {
                e();
                e2(a);
                return (a + b);
            }
        "#,
        (31, 11),
    );
}

/// A continuation only ever named by a call annotation in a branch that
/// never executes: the decoder must still resolve it (it is part of the
/// entry's continuation environment) even though no execution reaches
/// it. This is the shape of the `dead-cont-value` corpus regression,
/// before any optimizer involvement.
#[test]
fn unreachable_continuations_decode() {
    engines_agree(
        r#"
            g0(bits32 x, bits32 kk) {
                if x > 9 { cut to kk(x - 1); } else { return (x + 1); }
            }
            f(bits32 a, bits32 b) {
                bits32 c, t;
                c = 0;
                if 0 {
                    c = g0(0, kc) also cuts to kc also aborts;
                } else {
                }
                return ((a + b) + c);
                continuation kc(t):
                return (t + 1000);
            }
        "#,
        (5, 6),
    );
}

/// A procedure pushed past the one-byte index boundaries: more than 256
/// CFG nodes, 80 local variables (slots), and 40 continuations, each of
/// which is genuinely cut to once. Exercises the dense index arrays the
/// decoders build.
#[test]
fn max_index_programs_decode() {
    let mut src = String::new();
    // 40 target procs, one per continuation.
    let _ = writeln!(
        src,
        "g0(bits32 x, bits32 kk) {{ if x > 9 {{ cut to kk(x - 1); }} else {{ return (x + 1); }} }}"
    );
    let _ = writeln!(src, "f(bits32 a, bits32 b) {{");
    // 80 locals.
    for i in 0..80 {
        let _ = writeln!(src, "    bits32 v{i};");
    }
    let _ = writeln!(src, "    bits32 acc;");
    for k in 0..40 {
        let _ = writeln!(src, "    bits32 t{k};");
    }
    for i in 0..80 {
        let _ = writeln!(src, "    v{i} = a + {i};");
    }
    // > 256 nodes of straight-line arithmetic.
    let _ = writeln!(src, "    acc = 0;");
    for i in 0..300 {
        let _ = writeln!(src, "    acc = (acc + v{}) & 65535;", i % 80);
    }
    // 40 continuations, each reached by one cut.
    for k in 0..40 {
        let _ = writeln!(src, "    acc = g0(15, k{k}) also cuts to k{k} also aborts;");
    }
    let _ = writeln!(src, "    return (acc + b);");
    for k in 0..40 {
        let _ = writeln!(src, "    continuation k{k}(t{k}):");
        let _ = writeln!(src, "    acc = acc + t{k};");
    }
    let _ = writeln!(src, "}}");
    engines_agree(&src, (2, 3));
}

/// The checked-in corpus reproducers (the two shrunk regressions from
/// the fuzzing subsystem's first sweep) replay cleanly on the new
/// engines.
#[test]
fn corpus_reproducers_agree_on_new_engines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "cmm") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        engines_agree(&text, (0, 0));
        replayed += 1;
    }
    assert!(
        replayed >= 2,
        "expected both corpus reproducers, got {replayed}"
    );
}

/// And the full oracle stack over the corpus — the same check `cmm fuzz
/// --replay corpus` performs in CI.
#[test]
fn corpus_replay_is_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let report = cmm_difftest::replay_corpus(&dir, &Limits::default()).unwrap();
    assert!(report.files_run >= 2);
    assert!(
        report.ok(),
        "{}: {}",
        report.failures[0].path.display(),
        report.failures[0].failure
    );
}

/// A fusable `li`/`mov` pair whose second half is also a `goto` target:
/// the basic-block boundary must split the pair — the loop-head target
/// keeps its own dispatch slot — while the engines still agree
/// observation-for-observation.
#[test]
fn fusable_pairs_split_across_block_boundaries() {
    let src = r#"
        f(bits32 a, bits32 b) {
            bits32 c, i;
            c = 1;
            i = a;
          loop:
            c = (c + 3) & 65535;
            i = i - 1;
            if i > 0 { goto loop; }
            return (c + b);
        }
    "#;
    let (_vp, plain, fused) = streams(src);
    let targets = static_targets(&plain);
    assert!(!targets.is_empty(), "expected a backward branch");
    assert!(
        fused.insts.iter().any(|i| i.n > 1),
        "expected the loop body to fuse"
    );
    assert_targets_are_window_heads(&fused, &targets);
    engines_agree(src, (9, 4));
}

/// Branch targets landing mid-pattern suppress fusion on a shape the
/// fuser would otherwise collapse greedily: straight-line arithmetic
/// whose middle instruction is a branch target. Observed behaviour
/// must match the reference on both the fall-through and the taken
/// path.
#[test]
fn branch_targets_mid_pattern_suppress_fusion() {
    let src = r#"
        f(bits32 a, bits32 b) {
            bits32 c, d;
            c = (a + 1) & 65535;
            if b > 2 { goto mid; }
            c = (c * 3) & 65535;
          mid:
            d = (c + 5) & 65535;
            c = (d * 7) & 65535;
            return (c + d);
        }
    "#;
    let (_vp, plain, fused) = streams(src);
    assert_targets_are_window_heads(&fused, &static_targets(&plain));
    engines_agree(src, (9, 1));
    engines_agree(src, (9, 4));
}

/// A continuation parameter filled through `FindContParam` stays live
/// across a fused window in the continuation body: the first thing the
/// body does with the filled value is fusable arithmetic.
#[test]
fn continuation_params_live_across_fused_window() {
    let src = r#"
        g0(bits32 x, bits32 kk) {
            if x > 9 { cut to kk(x - 1); } else { return (x + 1); }
        }
        f(bits32 a, bits32 b) {
            bits32 c, t;
            c = (a + 3) & 65535;
            yield(2) also aborts;
            t = g0(15, kc) also cuts to kc also aborts;
            return (c + t);
            continuation kc(t):
            c = (t + 1) & 65535;
            c = (c * 3) + t;
            c = (c + t) & 65535;
            return (c + b);
        }
    "#;
    let (_vp, _plain, fused) = streams(src);
    assert!(
        fused.insts.iter().any(|i| i.n > 1),
        "expected the continuation body to fuse"
    );
    engines_agree(src, (15, 4));
}

/// Golden disassembly for **every** fused opcode: one representative
/// `FInst` per window-forming `FOp` variant, rendered through
/// `fused_inst_to_string`. Plain mirrors fall through to the original
/// instruction's rendering and are covered by the final case. Registers
/// 1..=8 render as t0..t6 and a0.
#[test]
fn disasm_goldens_cover_every_fused_opcode() {
    use cmm_vm::disasm::fused_inst_to_string;
    let fi = |op, sel, a, b, c, d, n, imm, imm2| FInst {
        op,
        sel,
        a,
        b,
        c,
        d,
        n,
        imm,
        imm2,
    };
    let add = DOp::Add32;
    let eq = DOp::Eq32;
    #[rustfmt::skip]
    let goldens: Vec<(FInst, &str)> = vec![
        (fi(FOp::CmpBz, eq, 1, 2, 3, 0, 2, 0, 7), "eq.bz t0, t1, t2, 7"),
        (fi(FOp::CmpBnz, eq, 1, 2, 3, 0, 2, 0, 7), "eq.bnz t0, t1, t2, 7"),
        (fi(FOp::LiCmpBz, eq, 1, 2, 0, 0, 3, 0x2a, 7), "li.eq.bz t0, t1, 0x2a, 7"),
        (fi(FOp::LiCmpBnz, eq, 1, 2, 0, 0, 3, 0x2a, 7), "li.eq.bnz t0, t1, 0x2a, 7"),
        (fi(FOp::AluJmp, add, 1, 2, 3, 0, 2, 0, 7), "add.jmp t0, t1, t2, 7"),
        (fi(FOp::AddiStore32, DOp::Addi, 1, 2, 0, 4, 2, 5, 12), "addi.st32 t0, t1, 5, 12(t3)"),
        (fi(FOp::MovCall, DOp::Mov, 1, 2, 0, 0, 2, 0, 9), "mov.call t0, t1, 9"),
        (fi(FOp::RetJr, DOp::Jr, 1, 2, 0, 4, 3, 8, 4), "ld32.addi.jr t0, 8(t1), 4, +4"),
        (fi(FOp::CutJr, DOp::Jr, 1, 2, 0, 0, 2, 0, 0), "cutjr t0, (t1)"),
        (fi(FOp::MovMov, DOp::Mov, 1, 2, 3, 4, 2, 0, 0), "mov.mov t0, t1; t2, t3"),
        (fi(FOp::MovLi, DOp::Mov, 1, 2, 3, 0, 2, 0, 0x2a), "mov.li t0, t1; t2, 0x2a"),
        (fi(FOp::MovLoad32, DOp::Mov, 1, 2, 3, 4, 2, 0, 12), "mov.ld32 t0, t1; t2, 12(t3)"),
        (fi(FOp::MovStore32, DOp::Mov, 1, 2, 3, 4, 2, 0, 12), "mov.st32 t0, t1; t2, 12(t3)"),
        (fi(FOp::LiMov, DOp::Li, 1, 0, 3, 4, 2, 0x2a, 0), "li.mov t0, 0x2a; t2, t3"),
        (fi(FOp::LiStore32, DOp::Li, 1, 0, 3, 4, 2, 0x2a, 12), "li.st32 t0, 0x2a; t2, 12(t3)"),
        (fi(FOp::LiBin32, add, 1, 2, 3, 4, 2, 0x2a, 0), "li.add t0, 0x2a; t3, t1, t2"),
        (fi(FOp::Load32Mov, DOp::Load32, 1, 2, 3, 4, 2, 8, 0), "ld32.mov t0, 8(t1); t2, t3"),
        (fi(FOp::Load32Li, DOp::Load32, 1, 2, 3, 0, 2, 8, 0x2a), "ld32.li t0, 8(t1); t2, 0x2a"),
        (fi(FOp::Load32Load32, DOp::Load32, 1, 2, 3, 4, 2, 8, 12), "ld32.ld32 t0, 8(t1); t2, 12(t3)"),
        (fi(FOp::Load32Addi, DOp::Load32, 1, 2, 3, 4, 2, 8, 5), "ld32.addi t0, 8(t1); t2, t3, 5"),
        (fi(FOp::Load32Store32, DOp::Load32, 1, 2, 3, 4, 2, 8, 12), "ld32.st32 t0, 8(t1); t2, 12(t3)"),
        (fi(FOp::Store32Mov, DOp::Store32, 1, 2, 3, 4, 2, 8, 0), "st32.mov t0, 8(t1); t2, t3"),
        (fi(FOp::Store32Li, DOp::Store32, 1, 2, 3, 0, 2, 8, 0x2a), "st32.li t0, 8(t1); t2, 0x2a"),
        (fi(FOp::Store32Store32, DOp::Store32, 1, 2, 3, 4, 2, 8, 12), "st32.st32 t0, 8(t1); t2, 12(t3)"),
        (fi(FOp::Bin32Store32, add, 1, 2, 3, 4, 2, 0, 12), "add.st32 t0, t1, t2; 12(t3)"),
        (fi(FOp::Bin32Load32, add, 1, 2, 3, 4, 2, 0, 12), "add.ld32 t0, t1, t2; t3, 12(t0)"),
        (fi(FOp::Bin32Mov, add, 1, 2, 3, 4, 2, 0, 0), "add.mov t0, t1, t2; t3"),
        (fi(FOp::MovAddi, DOp::Mov, 1, 2, 3, 4, 2, 0, 5), "mov.addi t0, t1; t2, t3, 5"),
        (fi(FOp::Store32Load32, DOp::Store32, 1, 2, 3, 4, 2, 8, 12), "st32.ld32 t0, 8(t1); t2, 12(t3)"),
        (fi(FOp::AddiJr, DOp::Addi, 1, 2, 3, 4, 2, 5, 0), "addi.jr t0, t1, 5; t2+4"),
        (fi(FOp::Mov3, DOp::Mov, 1, 2, 3, 4, 3, 5 | 6 << 8, 0), "mov.mov.mov t0, t1; t2, t3; t4, t5"),
        (fi(FOp::Mov4, DOp::Mov, 1, 2, 3, 4, 4, 5 | 6 << 8, 7 | 8 << 8), "mov.mov.mov.mov t0, t1; t2, t3; t4, t5; t6, a0"),
        (fi(FOp::Load32LiBin32, add, 1, 2, 3, 4, 3, 8, 0x2a), "ld32.li.add t0, 8(t1); t2, 0x2a; t3"),
        (fi(FOp::MovMovCall, DOp::Call, 1, 2, 3, 4, 3, 0, 9), "mov.mov.call t0, t1; t2, t3; 9"),
        (fi(FOp::Load32MovCall, DOp::Call, 1, 2, 3, 4, 3, 8, 9), "ld32.mov.call t0, 8(t1); t2, t3; 9"),
        (fi(FOp::Load32LiBin32Store32Mov, add, 1, 2, 3, 4, 5, 8 | 12 << 16, 0x2a | 5 << 16 | 6 << 24), "ld32.li.add.st32.mov t0, 8(t1); t2, 0x2a; t3; 12(t1); t4, t5"),
        (fi(FOp::MovRun, DOp::Mov, 0, 0, 0, 0, 3, 2, 0), "mov.run x3, [2..5]"),
        (fi(FOp::Store32MovLoad32LiBin32, add, 1, 2, 3, 4, 5, 8 | 12 << 16, 0x2a | 5 << 8 | 6 << 16 | 7 << 24), "st32.mov.ld32.li.add t0, 8(t1); t0, t2; t4, 12(t3); t5, 0x2a; t6"),
        (fi(FOp::LiBin32Load32Mov, add, 1, 2, 3, 4, 4, 0x2a, 12 | 5 << 16 | 6 << 24), "li.add.ld32.mov t0, 0x2a; t3, t1, t2; t4, 12(t3); t5"),
        (fi(FOp::LiBin32Mov, add, 1, 2, 3, 4, 3, 0x2a, 5), "li.add.mov t0, 0x2a; t3, t1, t2; t4"),
        (fi(FOp::LiBin32MovJmp, add, 1, 2, 3, 4, 4, 0x2a, 9 | 5 << 24), "li.add.mov.jmp t0, 0x2a; t3, t1, t2; t4; 9"),
        (fi(FOp::Load32Load32CmpBz, eq, 1, 2, 3, 4, 4, 8 | 12 << 16, 9 | 5 << 24), "ld32.ld32.eq.bz t0, 8(t1); t2, 12(t3); t4; 9"),
        (fi(FOp::Load32LiBin32Store32Jmp, add, 1, 2, 3, 4, 5, 8 | 12 << 16, 9 | 0x2a << 24), "ld32.li.add.st32.jmp t0, 8(t1); t2, 0x2a; t3; 12(t1); 9"),
        (fi(FOp::Load32MovLoad32MovCall, DOp::Call, 1, 2, 3, 4, 5, 8 | 12 << 16, 9 | 5 << 16 | 6 << 24), "ld32.mov.ld32.mov.call t0, 8(t1); t4; t2, 12(t3); t5; 9"),
        (fi(FOp::Bin32Li, add, 1, 2, 3, 4, 2, 0, 0x2a), "add.li t0, t1, t2; t3, 0x2a"),
        (fi(FOp::Load32AddiJmp, DOp::Addi, 1, 2, 3, 4, 3, 8 | 9 << 16, 5), "ld32.addi.jmp t0, 8(t1); t2, t3, 5; 9"),
        (fi(FOp::WriteRun, DOp::Store32, 0, 0, 0, 3, 15, 2, 0), "write.run x3, [2..5]"),
        (fi(FOp::ReadRun, DOp::Li, 0, 0, 0, 2, 8, 0, 0), "read.run x2, [0..2]"),
        (fi(FOp::MovBin32Mov, add, 1, 2, 3, 4, 3, 5, 6), "mov.add.mov t0, t1; t3, t2, t4; t5"),
    ];
    assert_eq!(goldens.len(), 49, "one golden per fused opcode");
    let original = cmm_vm::Inst::Halt;
    for (f, want) in &goldens {
        assert_eq!(
            &fused_inst_to_string(f, &original),
            want,
            "golden mismatch for {:?}",
            f.op
        );
    }
    // Distinct opcodes — no variant is golden-tested twice in place of
    // a missed one.
    let mut ops: Vec<String> = goldens.iter().map(|(f, _)| format!("{:?}", f.op)).collect();
    ops.sort();
    ops.dedup();
    assert_eq!(ops.len(), 49, "every golden names a distinct opcode");
    // Plain slots fall through to the original instruction's rendering.
    let plain_slot = fi(FOp::Halt, DOp::Halt, 0, 0, 0, 0, 1, 0, 0);
    assert_eq!(fused_inst_to_string(&plain_slot, &original), "halt");
}
