//! Edge cases for the pre-decoded/pre-resolved engines' *decode time*:
//! shapes that stress index resolution rather than execution — empty
//! procedures, continuations nothing ever targets, programs pushed past
//! the small-index boundaries — plus the checked-in corpus reproducers
//! replayed on the new engines.
//!
//! Each case asserts the new engine's observation equals the reference
//! engine's, using the `cmm-difftest` oracle observers.

use cmm_cfg::Program;
use cmm_difftest::{observe_sem, observe_sem_resolved, observe_vm, observe_vm_decoded, Limits};
use std::fmt::Write as _;

fn build(src: &str) -> Program {
    let module = cmm_parse::parse_module(src).expect("program parses");
    cmm_cfg::build_program(&module).expect("program builds")
}

/// Asserts both new engines observe exactly what their reference
/// engines observe on `src` at entry `f(args)`.
fn engines_agree(src: &str, args: (u32, u32)) {
    let limits = Limits::default();
    let prog = build(src);
    let (reference, ref_detail) = observe_sem(&prog, args, &limits);
    let (resolved, detail) = observe_sem_resolved(&prog, args, &limits);
    assert_eq!(
        resolved,
        reference,
        "resolved sem diverged: reference {}, observed {}",
        reference.describe(&ref_detail),
        resolved.describe(&detail)
    );
    let vp = cmm_vm::compile(&prog).expect("program compiles");
    let (vm_ref, vm_ref_detail) = observe_vm(&vp, args, &limits);
    let (decoded, detail) = observe_vm_decoded(&vp, args, &limits);
    assert_eq!(
        decoded,
        vm_ref,
        "decoded vm diverged: reference {}, observed {}",
        vm_ref.describe(&vm_ref_detail),
        decoded.describe(&detail)
    );
}

/// Procedures whose bodies are a bare `return;` decode to the minimal
/// node/instruction stream and still run.
#[test]
fn empty_procs_decode_and_run() {
    engines_agree(
        r#"
            e() { return; }
            e2(bits32 x) { return; }
            f(bits32 a, bits32 b) {
                e();
                e2(a);
                return (a + b);
            }
        "#,
        (31, 11),
    );
}

/// A continuation only ever named by a call annotation in a branch that
/// never executes: the decoder must still resolve it (it is part of the
/// entry's continuation environment) even though no execution reaches
/// it. This is the shape of the `dead-cont-value` corpus regression,
/// before any optimizer involvement.
#[test]
fn unreachable_continuations_decode() {
    engines_agree(
        r#"
            g0(bits32 x, bits32 kk) {
                if x > 9 { cut to kk(x - 1); } else { return (x + 1); }
            }
            f(bits32 a, bits32 b) {
                bits32 c, t;
                c = 0;
                if 0 {
                    c = g0(0, kc) also cuts to kc also aborts;
                } else {
                }
                return ((a + b) + c);
                continuation kc(t):
                return (t + 1000);
            }
        "#,
        (5, 6),
    );
}

/// A procedure pushed past the one-byte index boundaries: more than 256
/// CFG nodes, 80 local variables (slots), and 40 continuations, each of
/// which is genuinely cut to once. Exercises the dense index arrays the
/// decoders build.
#[test]
fn max_index_programs_decode() {
    let mut src = String::new();
    // 40 target procs, one per continuation.
    let _ = writeln!(
        src,
        "g0(bits32 x, bits32 kk) {{ if x > 9 {{ cut to kk(x - 1); }} else {{ return (x + 1); }} }}"
    );
    let _ = writeln!(src, "f(bits32 a, bits32 b) {{");
    // 80 locals.
    for i in 0..80 {
        let _ = writeln!(src, "    bits32 v{i};");
    }
    let _ = writeln!(src, "    bits32 acc;");
    for k in 0..40 {
        let _ = writeln!(src, "    bits32 t{k};");
    }
    for i in 0..80 {
        let _ = writeln!(src, "    v{i} = a + {i};");
    }
    // > 256 nodes of straight-line arithmetic.
    let _ = writeln!(src, "    acc = 0;");
    for i in 0..300 {
        let _ = writeln!(src, "    acc = (acc + v{}) & 65535;", i % 80);
    }
    // 40 continuations, each reached by one cut.
    for k in 0..40 {
        let _ = writeln!(src, "    acc = g0(15, k{k}) also cuts to k{k} also aborts;");
    }
    let _ = writeln!(src, "    return (acc + b);");
    for k in 0..40 {
        let _ = writeln!(src, "    continuation k{k}(t{k}):");
        let _ = writeln!(src, "    acc = acc + t{k};");
    }
    let _ = writeln!(src, "}}");
    engines_agree(&src, (2, 3));
}

/// The checked-in corpus reproducers (the two shrunk regressions from
/// the fuzzing subsystem's first sweep) replay cleanly on the new
/// engines.
#[test]
fn corpus_reproducers_agree_on_new_engines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "cmm") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        engines_agree(&text, (0, 0));
        replayed += 1;
    }
    assert!(
        replayed >= 2,
        "expected both corpus reproducers, got {replayed}"
    );
}

/// And the full oracle stack over the corpus — the same check `cmm fuzz
/// --replay corpus` performs in CI.
#[test]
fn corpus_replay_is_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let report = cmm_difftest::replay_corpus(&dir, &Limits::default()).unwrap();
    assert!(report.files_run >= 2);
    assert!(
        report.ok(),
        "{}: {}",
        report.failures[0].path.display(),
        report.failures[0].failure
    );
}
