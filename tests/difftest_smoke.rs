//! Bounded, deterministic smoke suite for the differential fuzzer.
//!
//! Full-scale runs (`cmm fuzz --cases 2000 --seed 0` and up) are for the
//! command line and CI; these tests keep a fixed, small case budget so
//! `cargo test` stays fast while still executing every stage of the
//! pipeline: generation, the verifier post-condition, the
//! pretty-print/re-parse round trip, all oracles, the minimizer, and the
//! corpus writer.

use cmm_cfg::{Node, NodeId, Program};
use cmm_difftest::{
    case_for, observe_sem, observe_sem_resolved, observe_vm, observe_vm_decoded, run_fuzz,
    run_fuzz_with, Failure, FuzzConfig, Limits,
};

fn smoke_config(cases: usize) -> FuzzConfig {
    FuzzConfig {
        cases,
        seed: 0,
        shrink: true,
        ..FuzzConfig::default()
    }
}

/// The oracles agree on a fixed budget of generated programs.
#[test]
fn fuzz_smoke_all_oracles_agree() {
    let report = run_fuzz(&smoke_config(120));
    assert_eq!(report.cases_run, 120);
    assert!(
        report.ok(),
        "case {} failed: {}",
        report.failures[0].index,
        report.failures[0].failure
    );
}

/// The pre-resolved `cmm-sem` engine and the pre-decoded `cmm-vm`
/// engine agree with their reference step loops — on results, on
/// goes-wrong states, and on the full yield sequence — across 200
/// generated programs. This is the direct old-vs-new cross-check; the
/// full oracle matrix (per-pass, O2) runs in
/// [`fuzz_smoke_all_oracles_agree`].
#[test]
fn generated_programs_agree_across_engines() {
    let limits = Limits::default();
    let mut checked = 0;
    for index in 0..200u64 {
        let case = case_for(0, index);
        let module = cmm_parse::parse_module(&case.render()).expect("generated program parses");
        let prog = cmm_cfg::build_program(&module).expect("generated program builds");
        let (reference, ref_detail) = observe_sem(&prog, case.args, &limits);
        let (resolved, detail) = observe_sem_resolved(&prog, case.args, &limits);
        assert_eq!(
            resolved,
            reference,
            "case {index}: resolved sem engine diverged: reference {}, observed {}\n{}",
            reference.describe(&ref_detail),
            resolved.describe(&detail),
            case.render()
        );
        let vp = cmm_vm::compile(&prog).expect("generated program compiles");
        let (vm_ref, vm_ref_detail) = observe_vm(&vp, case.args, &limits);
        let (decoded, detail) = observe_vm_decoded(&vp, case.args, &limits);
        assert_eq!(
            decoded,
            vm_ref,
            "case {index}: decoded vm engine diverged: reference {}, observed {}\n{}",
            vm_ref.describe(&vm_ref_detail),
            decoded.describe(&detail),
            case.render()
        );
        checked += 1;
    }
    assert_eq!(checked, 200);
}

/// Case derivation is pure in (seed, index): re-running a slice of the
/// space reproduces it exactly.
#[test]
fn fuzz_is_deterministic() {
    for index in [0u64, 5, 63] {
        assert_eq!(case_for(0, index).render(), case_for(0, index).render());
    }
    assert_ne!(case_for(0, 1).render(), case_for(0, 2).render());
}

/// A deliberately broken "optimization" that forces every branch to its
/// true arm — a miscompilation the fuzzer must catch.
fn force_branches_true(p: &mut Program) {
    for g in p.procs.values_mut() {
        for i in 0..g.nodes.len() {
            let id = NodeId(i as u32);
            if let Node::Branch { t, .. } = g.node(id) {
                let t = *t;
                *g.node_mut(id) = Node::Branch {
                    cond: cmm_ir::Expr::b32(1),
                    t,
                    f: t,
                };
            }
        }
    }
}

/// The minimizer turns whatever case first exposes the bad pass into a
/// reproducer of at most 10 IR statements.
#[test]
fn injected_bad_pass_is_caught_and_shrunk_small() {
    let cfg = smoke_config(60);
    let report = run_fuzz_with(&cfg, &[("force-true", &force_branches_true)]);
    let failure = report
        .failures
        .first()
        .expect("the bad pass must be caught within 60 cases");
    assert!(
        matches!(failure.failure, Failure::Diverged { .. }),
        "{}",
        failure.failure
    );
    let shrunk = failure.shrunk.as_ref().expect("shrinking was enabled");
    assert!(
        shrunk.stmt_count() <= 10,
        "reproducer should be tiny, got {} statements:\n{}",
        shrunk.stmt_count(),
        shrunk.render()
    );
    // The shrunk case still exposes the bug on its own.
    let r =
        cmm_difftest::run_case_with(shrunk, &cfg.limits, &[("force-true", &force_branches_true)]);
    assert!(matches!(r, Err(Failure::Diverged { .. })));
}

/// Failing cases are written to the corpus directory as standalone,
/// parseable C-- files with a reproduction header.
#[test]
fn corpus_reproducers_are_written() {
    let dir = std::env::temp_dir().join("cmm-difftest-corpus-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FuzzConfig {
        corpus_dir: Some(dir.clone()),
        ..smoke_config(60)
    };
    let report = run_fuzz_with(&cfg, &[("force-true", &force_branches_true)]);
    let failure = report
        .failures
        .first()
        .expect("the bad pass must be caught");
    let path = failure.corpus_path.as_ref().expect("corpus path recorded");
    let text = std::fs::read_to_string(path).unwrap();
    assert!(text.starts_with("/* cmm-difftest reproducer"));
    assert!(text.contains("Reproduce with"));
    cmm_parse::parse_module(&text).expect("reproducer parses");
    let _ = std::fs::remove_dir_all(&dir);
}
