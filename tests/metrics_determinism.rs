//! Cross-crate contract for the `cmm-metrics` runtime: the batch
//! service's metrics registry, threaded through the cache, the pool,
//! and every engine, with the layer's three load-bearing promises
//! asserted from the outside —
//!
//! * every `Deterministic`-class metric is **byte-identical** at every
//!   worker count (parallelism changes wall-clock time and nothing
//!   else, including in the observability plane),
//! * the log₂ latency histograms put every value in the right
//!   power-of-two bucket and bound quantile error by 2×, and
//! * a job that ends in an injected chaos fault produces a
//!   flight-recorder post-mortem whose ring wraps (drops old events)
//!   rather than grows.

use cmm_obs::registry::{bucket_index, bucket_upper};
use cmm_obs::Histogram;
use cmm_pool::{parse_manifest, run_batch, BatchConfig, PipelineCache};

const LOOP: &str = "f(bits32 n) {\n\
     bits32 acc;\n\
     acc = 0;\n\
   loop:\n\
     if n == 0 { return (acc); }\n\
     else { acc = acc + n; n = n - 1; goto loop; }\n\
   }";
const RAISE: &str = "exception E;\n\
   proc main(n) {\n\
     var r;\n\
     try { raise E(n); r = 0; } except { E(v) => { r = v + 1; } }\n\
     return r;\n\
   }";

fn specs_from(manifest: &str) -> Vec<cmm_pool::JobSpec> {
    parse_manifest(manifest, &mut |file| match file {
        "loop.cmm" => Ok(LOOP.to_string()),
        "raise.m3" => Ok(RAISE.to_string()),
        other => Err(format!("unexpected source `{other}`")),
    })
    .expect("manifest parses")
}

/// The pool-service manifest, all five engines and both strategies,
/// with metrics on.
fn mixed_specs() -> Vec<cmm_pool::JobSpec> {
    specs_from(
        "loop.cmm  sem,sem-resolved,vm,vm-decoded,vm-fused  entry=f args=9\n\
         raise.m3  sem,vm  strategy=cutting args=5\n\
         raise.m3  vm  strategy=runtime-unwind args=5\n",
    )
}

#[test]
fn deterministic_metrics_are_byte_identical_at_every_worker_count() {
    let specs = mixed_specs();
    let mut metrics = Vec::new();
    let mut reports = Vec::new();
    for workers in [1, 2, 8] {
        let cache = PipelineCache::default();
        let report = run_batch(
            &specs,
            &cache,
            &BatchConfig {
                workers,
                queue_cap: 8,
                metrics: true,
                ..BatchConfig::default()
            },
        );
        let reg = report.registry.as_ref().expect("metrics were requested");
        metrics.push(reg.to_json(false));
        reports.push(report.to_json(false));
    }
    assert_eq!(metrics[0], metrics[1], "-j1 vs -j2 metrics");
    assert_eq!(metrics[0], metrics[2], "-j1 vs -j8 metrics");
    assert_eq!(reports[0], reports[1], "-j1 vs -j2 report");
    assert_eq!(reports[0], reports[2], "-j1 vs -j8 report");

    // The deterministic export really covers every layer: engines,
    // Table 1, strategy dispatch, cache shards, jobs, and the virtual
    // per-phase latency histogram.
    for key in [
        "cmm_engine_events_total{engine='vm-fused',kind='call',technique='raw'}",
        "cmm_rts_ops_total{engine='vm',op='SetUnwindCont',technique='runtime-unwind'}",
        "cmm_strategy_dispatch_total{mech='unwind-hop',technique='runtime-unwind'}",
        "cmm_cache_hits_total{shard=",
        "cmm_jobs_total{engine='sem',outcome='halt'}",
        "\"cmm_job_virtual_ns{engine='vm',phase='run'}\": { \"count\":",
    ] {
        assert!(
            metrics[0].contains(key),
            "missing {key} in:\n{}",
            metrics[0]
        );
    }
    // And it excludes everything wall-clock: the timing-class pool
    // meters and cache gauges only appear in the timing export.
    for absent in ["cmm_pool_job_wall_ns", "cmm_pool_queue_wait_ns", "resident"] {
        assert!(
            !metrics[0].contains(absent),
            "{absent} leaked into the deterministic export"
        );
    }
    let with_timing = {
        let cache = PipelineCache::default();
        let report = run_batch(
            &specs,
            &cache,
            &BatchConfig {
                metrics: true,
                ..BatchConfig::default()
            },
        );
        report.registry.as_ref().unwrap().to_json(true)
    };
    assert!(with_timing.contains("cmm_pool_job_wall_ns"));
    assert!(with_timing.contains("cmm_cache_resident_bytes"));
}

#[test]
fn batch_report_embeds_the_metrics_section_and_nop_path_omits_it() {
    let specs = mixed_specs();
    let cache = PipelineCache::default();
    let on = run_batch(
        &specs,
        &cache,
        &BatchConfig {
            metrics: true,
            ..BatchConfig::default()
        },
    );
    let json = on.to_json(false);
    assert!(json.contains("\"metrics\": {"), "{json}");
    assert!(json.contains("cmm_jobs_total"), "{json}");

    // Metrics off: the NopSink path — no registry, no postmortems, no
    // metrics section, and the per-job deterministic figures are
    // unchanged (the zero-cost-disable property, observed end to end).
    let cache = PipelineCache::default();
    let off = run_batch(&specs, &cache, &BatchConfig::default());
    assert!(off.registry.is_none());
    assert!(off.postmortems.is_empty());
    assert!(!off.to_json(false).contains("\"metrics\""));
    let strip = |r: &cmm_pool::BatchReport| {
        r.jobs
            .iter()
            .map(|j| (j.id, j.outcome.clone(), j.instructions, j.yields.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&on), strip(&off), "tracing changed a job's figures");
}

#[test]
fn histogram_buckets_respect_power_of_two_boundaries() {
    // Bucket 0 is the exact-zero bucket; bucket i (1..=63) covers
    // [2^(i-1), 2^i - 1]; bucket 64 tops out at u64::MAX.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for k in 1..63u32 {
        let p = 1u64 << k;
        assert_eq!(bucket_index(p - 1), k as usize, "2^{k}-1");
        assert_eq!(bucket_index(p), k as usize + 1, "2^{k}");
        assert_eq!(bucket_upper(k as usize), p - 1);
    }
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_upper(64), u64::MAX);

    // Extremes round-trip through a real histogram.
    let h = Histogram::new();
    h.observe(0);
    h.observe(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.count, 2);
    assert_eq!(s.buckets[0], 1);
    assert_eq!(s.buckets[64], 1);

    // The quantile bound: a reported quantile is the upper edge of the
    // bucket holding the true rank, so it never underestimates and
    // never exceeds 2x the true value.
    for v in [1u64, 3, 7, 100, 700, 4096, 1_000_000, u64::MAX / 2] {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(v);
        }
        let (p50, p90, p99) = h.snapshot().p50_p90_p99();
        for q in [p50, p90, p99] {
            assert!(q >= v, "quantile underestimates: {q} < {v}");
            assert!(q / 2 < v, "quantile error above 2x: {q} vs {v}");
        }
    }
}

#[test]
fn a_chaos_failed_job_writes_a_postmortem_with_its_final_events() {
    // Seed 4's fault plan trips `first-activation` within the batch
    // horizon on this workload (deterministic: the plan is a pure
    // function of the seed).
    let specs = specs_from("raise.m3 sem,vm strategy=runtime-unwind args=5 chaos=4\n");
    let mut dumps = Vec::new();
    for workers in [1, 2] {
        let cache = PipelineCache::default();
        let report = run_batch(
            &specs,
            &cache,
            &BatchConfig {
                workers,
                queue_cap: 8,
                metrics: true,
                flight_cap: 4,
                ..BatchConfig::default()
            },
        );
        assert_eq!(report.postmortems.len(), 2, "both engines faulted");
        for pm in &report.postmortems {
            assert_eq!(pm.outcome, "error");
            assert!(
                pm.text.contains("=== flight recorder post-mortem ==="),
                "{}",
                pm.text
            );
            assert!(
                pm.text.contains("chaos: fault first-activation x1"),
                "{}",
                pm.text
            );
            assert!(pm.text.contains("--- final 4 event(s) ---"), "{}", pm.text);
            assert!(
                pm.text.contains("chaos fault first-activation #1"),
                "{}",
                pm.text
            );
        }
        // The ring is bounded: the sem engine's run emits more events
        // than `flight_cap`, so the recorder wrapped and says so
        // instead of growing.
        let sem = &report.postmortems[0];
        assert_eq!(sem.engine, "sem");
        assert!(sem.text.contains("(4 retained, 1 dropped)"), "{}", sem.text);
        // The whole-stream tallies still cover the dropped prefix.
        assert!(sem.text.contains("events: 5 total"), "{}", sem.text);
        dumps.push(report.postmortems.clone());
        // The fault also lands in the registry.
        let reg = report.registry.as_ref().unwrap().to_json(false);
        assert!(
            reg.contains("\"cmm_chaos_faults_total{op='first-activation'}\": 2"),
            "{reg}"
        );
    }
    assert_eq!(dumps[0], dumps[1], "post-mortems differ across -j");
}

#[test]
fn a_quiet_chaos_seed_produces_no_postmortem() {
    // Seed 0 schedules no reachable fault on this workload: the jobs
    // succeed and nothing is dumped — post-mortems are for failures,
    // not for every traced job.
    let specs = specs_from("raise.m3 sem,vm strategy=runtime-unwind args=5 chaos=0\n");
    let cache = PipelineCache::default();
    let report = run_batch(
        &specs,
        &cache,
        &BatchConfig {
            metrics: true,
            ..BatchConfig::default()
        },
    );
    assert!(report.postmortems.is_empty());
    assert!(
        report.jobs.iter().all(|j| j.outcome == "result 6"),
        "{:?}",
        report.jobs
    );
}
