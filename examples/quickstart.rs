//! Quickstart: the paper's Figure 1, verbatim.
//!
//! Parses the three sum-and-product procedures (ordinary recursion, tail
//! recursion, and a loop), runs them on both the formal semantics and
//! the simulated native target, and shows the costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cmm_core::sem::Value;
use cmm_core::Compiler;

/// Figure 1 of the paper: "Three procedures that compute the sum
/// Σ 1..n and product Π 1..n, written in C--."
const FIGURE_1: &str = r#"
    /* Ordinary recursion */
    export sp1;
    sp1(bits32 n) {
        bits32 s, p;
        if n == 1 {
            return (1, 1);
        } else {
            s, p = sp1(n - 1);
            return (s + n, p * n);
        }
    }

    /* Tail recursion */
    export sp2;
    sp2(bits32 n) {
        jump sp2_help(n, 1, 1);
    }
    sp2_help(bits32 n, bits32 s, bits32 p) {
        if n == 1 {
            return (s, p);
        } else {
            jump sp2_help(n - 1, s + n, p * n);
        }
    }

    /* Loops */
    export sp3;
    sp3(bits32 n) {
        bits32 s, p;
        s = 1; p = 1;
      loop:
        if n == 1 {
            return (s, p);
        } else {
            s = s + n;
            p = p * n;
            n = n - 1;
            goto loop;
        }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10u32;
    let compiler = Compiler::new().source(FIGURE_1)?;

    println!("Figure 1: sum and product of 1..{n}\n");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>8} {:>8}",
        "proc", "sum", "product", "instructions", "loads", "stores"
    );
    for proc in ["sp1", "sp2", "sp3"] {
        // The formal semantics (cmm-sem)...
        let vals = compiler.interpret(proc, vec![Value::b32(n)])?;
        // ...and the simulated native target (cmm-vm) must agree.
        let (vm_vals, cost) = compiler.execute(proc, &[u64::from(n)], 2)?;
        assert_eq!(
            vals.iter().filter_map(Value::bits).collect::<Vec<_>>(),
            vm_vals,
            "semantics and generated code must agree"
        );
        println!(
            "{:<10} {:>10} {:>12} {:>14} {:>8} {:>8}",
            proc, vm_vals[0], vm_vals[1], cost.instructions, cost.loads, cost.stores
        );
    }

    println!("\nAll three agree on both the abstract machine and the simulated target.");
    println!("Note the loop (sp3) and the tail call (sp2) avoid sp1's call overhead.");
    Ok(())
}
