//! Figure 2's design space, measured: the four mechanisms for
//! transferring control to a handler, on one workload, as the stack
//! depth between `raise` and handler grows.
//!
//! The paper's claims, reproduced as numbers:
//! * stack cutting and CPS raise in **constant time**;
//! * the unwinding techniques raise in **time linear in the depth**,
//!   the interpretive (run-time system) walk with a larger constant
//!   than the native-code (branch-table) walk;
//! * in exchange, the unwinding techniques pay **nothing** to enter a
//!   handler scope, while cutting pays per entry.
//!
//! ```sh
//! cargo run --example four_techniques
//! ```

use cmm_frontend::workloads::deep_raise;
use cmm_frontend::{compile_minim3, run_vm, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let depths = [5u32, 50, 200];
    println!("Total work (instructions + runtime-system equivalents) to raise an");
    println!("exception caught `depth` frames above, per strategy:\n");
    print!("{:<18}", "strategy");
    for d in depths {
        print!("{:>12}", format!("depth {d}"));
    }
    println!("{:>16}", "growth/frame");

    for strategy in Strategy::CORE {
        let module = compile_minim3(&deep_raise(true), strategy)?;
        let mut totals = Vec::new();
        for d in depths {
            let (r, cost) = run_vm(&module, strategy, &[d])?;
            assert_eq!(r, 43);
            totals.push(cost.total());
        }
        let growth = (totals[2] as f64 - totals[1] as f64) / f64::from(depths[2] - depths[1]);
        print!("{:<18}", strategy.label());
        for t in &totals {
            print!("{:>12}", t);
        }
        println!("{:>16.1}", growth);
    }

    println!("\nReading the last column: the cost *of the whole program* necessarily");
    println!("grows with depth (the calls themselves), but the unwinding strategies");
    println!("add extra per-frame dispatch work on top — compare their growth rates");
    println!("with cutting/cps, which dispatch in O(1).");
    Ok(())
}
