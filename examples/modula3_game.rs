//! The paper's Appendix A, end to end: the Modula-3 game fragment
//! (Figure 7) compiled with every exception-implementation strategy and
//! run on both substrates.
//!
//! * `runtime-unwind` is Figure 8's translation plus Figure 9's
//!   dispatcher (re-written in Rust over the Table 1 interface);
//! * `cutting` is Figure 10's translation (dynamic handler stack +
//!   `cut to`);
//! * `native-unwind` and `cps` are the other two techniques of §2;
//! * `sjlj(...)` shows the §2 `setjmp` cost on three architectures.
//!
//! ```sh
//! cargo run --example modula3_game
//! ```

use cmm_frontend::workloads::{GAME, GAME_CASES};
use cmm_frontend::{compile_minim3, run_sem, run_vm, Strategy};
use cmm_vm::arch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut strategies = Strategy::CORE.to_vec();
    strategies.push(Strategy::Sjlj(arch::PENTIUM_LINUX));
    strategies.push(Strategy::Sjlj(arch::SPARC_SOLARIS));
    strategies.push(Strategy::Sjlj(arch::ALPHA_DIGITAL_UNIX));

    println!(
        "Figure 7's TryAMove, all strategies, seeds {:?}\n",
        GAME_CASES.map(|(s, _)| s)
    );
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8}   {:>12} {:>8} {:>8}",
        "strategy", "seed3", "seed0", "seed50", "seed9", "instructions", "loads", "stores"
    );

    for strategy in strategies {
        let module = compile_minim3(GAME, strategy)?;
        let mut results = Vec::new();
        let mut total = cmm_vm::Cost::default();
        for (seed, expected) in GAME_CASES {
            // Check against the formal semantics...
            let sem = run_sem(&module, strategy, &[seed])?;
            assert_eq!(sem, expected, "{strategy} seed {seed}");
            // ...and measure on the simulated target.
            let (vm, cost) = run_vm(&module, strategy, &[seed])?;
            assert_eq!(vm, expected, "{strategy} seed {seed}");
            results.push(vm);
            total.instructions += cost.instructions + cost.runtime_instructions;
            total.loads += cost.loads;
            total.stores += cost.stores;
        }
        println!(
            "{:<26} {:>8} {:>8} {:>8} {:>8}   {:>12} {:>8} {:>8}",
            strategy.label(),
            results[0],
            results[1],
            results[2],
            results[3],
            total.instructions,
            total.loads,
            total.stores
        );
    }

    println!("\nEvery strategy computes the same results; they differ only in cost —");
    println!("which is the paper's point: the policy belongs to the front end.");
    Ok(())
}
