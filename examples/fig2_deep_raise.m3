// The Figure 2 deep-raise workload: an exception raised `depth` call
// frames below its handler, measuring how dispatch cost scales with
// stack depth. Run under the interpretive unwinder — the
// dispatch-heaviest strategy — with
//
//     cmm trace examples/fig2_deep_raise.m3 runtime-unwind 100
//     cmm profile examples/fig2_deep_raise.m3 runtime-unwind 100
//
// The profile's unwind-hop count is depth + 1: the Table 1 walk visits
// every recurse frame plus main before finding the handler.
exception Deep;

proc recurse(n) {
    var r;
    if n == 0 { raise Deep(42); }
    r = recurse(n - 1);
    return r + 0;
}

proc main(depth) {
    var r;
    try { r = recurse(depth); } except { Deep(v) => { r = v + 1; } }
    return r;
}
