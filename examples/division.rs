//! §4.3's fallible primitives: `%divu` (fast but dangerous) versus
//! `%%divu` (slow but solid).
//!
//! The fast variant's behaviour on a zero divisor is *unspecified* — the
//! abstract machine goes wrong, the simulated target faults. The checked
//! variant "maps failure into a yield", which a front-end run-time
//! system turns into whatever the source language wants — here, a report.
//!
//! ```sh
//! cargo run --example division
//! ```

use cmm_cfg::build_program;
use cmm_parse::parse_module;
use cmm_rt::Thread;
use cmm_sem::{Status, Value};

const SRC: &str = r#"
    export fast, checked;

    fast(bits32 a, bits32 b) {
        return (a / b);                      /* %divu: unspecified on 0 */
    }

    checked(bits32 a, bits32 b) {
        bits32 r;
        r = %%divu(a, b) also aborts;        /* failure becomes a yield */
        return (r);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(SRC)?;
    let program = build_program(&module)?;

    for (proc, a, b) in [
        ("fast", 42, 6),
        ("fast", 1, 0),
        ("checked", 42, 6),
        ("checked", 1, 0),
    ] {
        let mut t = Thread::new(&program);
        t.start(proc, vec![Value::b32(a), Value::b32(b)])?;
        match t.run(100_000) {
            Status::Terminated(vals) => {
                println!("{proc}({a}, {b})  = {}", vals[0]);
            }
            Status::Wrong(w) => {
                println!("{proc}({a}, {b})  went wrong: {w}");
            }
            Status::Suspended => {
                let code = t.yield_code().unwrap_or(0);
                println!(
                    "{proc}({a}, {b})  yielded to the run-time system (code {code}: \
                     division fault) — the front end decides what that means"
                );
            }
            other => println!("{proc}({a}, {b})  unexpected: {other:?}"),
        }
    }
    Ok(())
}
