//! Figures 5 and 6 of the paper: the example procedure and its
//! translation into Abstract C-- with an SSA numbering of the variables.
//!
//! Figure 5's procedure calls `g` with an `also unwinds to` annotation;
//! the exceptional edge to the continuation `k` appears in the dataflow
//! like any other edge, so the SSA numbering handles exception handlers
//! with no special cases.
//!
//! ```sh
//! cargo run --example ssa_figure6
//! ```

use cmm_cfg::{build_program, display};
use cmm_opt::ssa::{ssa_to_string, Ssa};
use cmm_parse::parse_module;

/// Figure 5, in this reproduction's concrete syntax (the paper writes
/// `b, c = g() also unwinds to k`).
const FIGURE_5: &str = r#"
    f(bits32 a) {
        bits32 b, c, d;
        b = a;
        c = a;
        b, c = g() also unwinds to k;
        c = b + c + a;
        return (c);
        continuation k(d):
        return (b + d);
    }
    g() { return (1, 2); }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(FIGURE_5)?;
    let program = build_program(&module)?;
    let g = program.proc("f").expect("f exists");

    println!("=== Figure 5's procedure as Abstract C-- (Table 2 nodes) ===\n");
    print!("{}", display::graph_to_string(g));

    println!("\n=== Figure 6: the SSA numbering ===\n");
    let ssa = Ssa::build(g);
    print!("{}", ssa_to_string(g, &ssa));

    let bad = ssa.verify(g);
    assert!(bad.is_empty(), "SSA invariant violated at {bad:?}");
    println!("\nSSA invariant verified: every use is dominated by its definition,");
    println!("including uses reached through the `also unwinds to` edge.");

    println!("\n=== Graphviz (pipe into `dot -Tpng`) ===\n");
    print!("{}", display::graph_to_dot(g));
    Ok(())
}
