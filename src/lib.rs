//! Umbrella crate for the `cmm` workspace.
//!
//! This package exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The library surface is
//! a re-export of [`cmm_core`], the facade crate; see the README for the
//! architecture overview.

pub use cmm_core::*;
